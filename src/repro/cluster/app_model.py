"""The streaming-PCA application expressed as simulator processes.

This is the model behind Figures 6 and 7: a source with unbounded supply
(the paper verified "the maximum rate of data generated was ... higher
than processing rate"), a multithreaded split on the splitter node, one
PCA engine process per thread, ring synchronization with the 1.5·N
data-driven gate, all mapped onto nodes by a
:class:`~repro.cluster.placement.Placement` and costed by a
:class:`~repro.cluster.costmodel.PCACostModel`.

Modeling choices (documented per DESIGN.md):

* The multithreaded split is one sender process per engine channel in a
  closed loop with bounded per-engine buffers — work-conserving, so
  "faster nodes get more data", exactly the paper's load-balancer
  semantics.  All senders share the splitter node's cores.
* Fused (co-located) edges cost nothing on the wire and skip
  serialization CPU; remote edges pay sender CPU + NIC occupancy +
  latency + receiver CPU.  An optional relay hop models default
  unoptimized placement.
* Synchronization ships the eigensystem to the ring successor and pays a
  merge eigensolve on the receiver's node, competing with its engine for
  cores.
* ``batch_size`` coarsens the event granularity (one simulated message =
  ``batch_size`` observations with proportional costs) to keep large
  sweeps fast; rates are unchanged, only queueing granularity coarsens.

Throughput is measured exactly as in the paper: tuples leaving the split
per second, averaged over a window after a warm-up period.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .costmodel import PCACostModel
from .events import Simulator
from .network import Network
from .placement import Placement
from .resources import Resource, Store
from .topology import ClusterSpec

__all__ = ["SimConfig", "SimReport", "simulate_streaming_pca"]


@dataclass(frozen=True)
class SimConfig:
    """Full description of one simulated run.

    Attributes mirror the paper's §III-D settings: ``dim=250``, ``p=8``,
    ``sync_window=5000`` (their N), gate factor 1.5.

    ``offered_rate_per_engine`` switches the source from the paper's
    closed loop ("generation rate higher than processing rate": measures
    *capacity*) to an open loop pacing each channel at the given
    observations/second — the right regime for *latency* comparisons,
    where queues must not be saturated by construction.

    ``node_speed_factors`` makes the cluster heterogeneous: a node with
    factor ``f`` runs CPU work ``f×`` faster.  Under the work-conserving
    split this realizes the paper's "faster nodes will get more data than
    slower ones in a period of time".
    """

    spec: ClusterSpec
    placement: Placement
    cost: PCACostModel
    dim: int = 250
    n_components: int = 8
    sync_window: int = 5000
    sync_gate_factor: float = 1.5
    sync_enabled: bool = True
    offered_rate_per_engine: float | None = None
    node_speed_factors: tuple[float, ...] | None = None
    queue_capacity: int = 8
    batch_size: int = 1
    warmup_s: float = 0.5
    window_s: float = 2.0

    def __post_init__(self) -> None:
        if self.placement.max_node() >= self.spec.n_nodes:
            raise ValueError(
                f"placement references node {self.placement.max_node()} but "
                f"the cluster has only {self.spec.n_nodes} nodes"
            )
        if self.dim < 1 or self.n_components < 1:
            raise ValueError("dim and n_components must be >= 1")
        if self.sync_window < 1:
            raise ValueError("sync_window must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if (
            self.offered_rate_per_engine is not None
            and self.offered_rate_per_engine <= 0
        ):
            raise ValueError("offered_rate_per_engine must be positive")
        if self.node_speed_factors is not None:
            if len(self.node_speed_factors) != self.spec.n_nodes:
                raise ValueError(
                    "node_speed_factors needs one entry per node "
                    f"({self.spec.n_nodes}), got {len(self.node_speed_factors)}"
                )
            if any(f <= 0 for f in self.node_speed_factors):
                raise ValueError("node speed factors must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.warmup_s < 0 or self.window_s <= 0:
            raise ValueError("warmup_s >= 0 and window_s > 0 required")


@dataclass
class SimReport:
    """Measured outcome of one simulated run.

    ``throughput`` is observations/second over the measurement window
    (the paper's y-axis in Fig. 6); ``per_thread`` divides by the engine
    count (Fig. 7's y-axis).  ``latency_*`` summarize the end-to-end
    per-tuple sojourn (splitter pickup → engine completion, including
    queueing) over the window — the quantity InfoSphere fusion exists to
    shrink ("significant decrease of latency", §III-D).
    """

    config: SimConfig
    tuples_processed: int
    throughput: float
    per_engine: list[float] = field(default_factory=list)
    latency_mean_s: float = 0.0
    latency_p50_s: float = 0.0
    latency_p95_s: float = 0.0
    n_syncs: int = 0
    splitter_cpu_utilization: float = 0.0
    splitter_nic_utilization: float = 0.0
    node_cpu_utilization: list[float] = field(default_factory=list)
    n_events: int = 0

    @property
    def per_thread(self) -> float:
        """Observations/second/engine (Fig. 7's metric)."""
        return self.throughput / max(self.config.placement.n_engines, 1)


class _AppState:
    """Mutable counters shared by the simulation processes."""

    def __init__(self, n_engines: int) -> None:
        self.processed = [0] * n_engines  # observations, cumulative
        self.window_counts = [0] * n_engines
        self.in_window = False
        self.since_sync = [0] * n_engines
        self.n_syncs = 0
        self.latencies: list[float] = []


def simulate_streaming_pca(config: SimConfig, *, telemetry=None) -> SimReport:
    """Run one simulated configuration and measure its throughput.

    ``telemetry`` (a :class:`repro.streams.telemetry.Telemetry`) makes
    the simulator emit the *same schema* as the real engines — per-engine
    ``repro_tuples_in_total`` counters, ``sync`` events with bytes-moved,
    and per-channel ``sample`` events (queue depth over simulated time) —
    so a simulated run and a threaded run can be compared with the same
    report tooling.  Event timestamps are simulated seconds.
    """
    sim = Simulator()
    spec = config.spec
    placement = config.placement
    cost = config.cost
    n_engines = placement.n_engines

    cpus = [
        Resource(sim, spec.cores_per_node, name=f"cpu-{i}")
        for i in range(spec.n_nodes)
    ]
    net = Network(sim, spec)
    stores = [
        Store(sim, capacity=config.queue_capacity, name=f"chan-{i}")
        for i in range(n_engines)
    ]
    state = _AppState(n_engines)

    tuple_bytes = cost.tuple_bytes(config.dim) * config.batch_size
    state_bytes = cost.state_bytes(config.dim, config.n_components)
    update_s = cost.update_cost(config.dim, config.n_components) * config.batch_size
    merge_s = cost.merge_cost(config.dim, config.n_components)
    gate = config.sync_gate_factor * config.sync_window

    # Register persistent flows so connection overhead reflects topology.
    for i in range(n_engines):
        hops = _data_path(placement, i)
        for src, dst in hops:
            net.register_flow(src, dst)
    if config.sync_enabled and n_engines > 1:
        for i in range(n_engines):
            src = placement.engine_nodes[i]
            dst = placement.engine_nodes[(i + 1) % n_engines]
            if src != dst:
                net.register_flow(src, dst)

    speed = config.node_speed_factors or (1.0,) * spec.n_nodes

    def cpu_work(node: int, seconds: float):
        """Acquire one core on ``node`` for ``seconds`` (speed-scaled)."""
        if seconds <= 0:
            return
        yield cpus[node].request()
        yield sim.timeout(seconds / speed[node])
        cpus[node].release()

    interval = (
        config.batch_size / config.offered_rate_per_engine
        if config.offered_rate_per_engine
        else None
    )

    def sender(engine: int):
        """One channel of the multithreaded split."""
        hops = _data_path(placement, engine)
        next_emit = 0.0
        while True:
            if interval is not None:
                if sim.now < next_emit:
                    yield sim.timeout(next_emit - sim.now)
                next_emit = max(next_emit + interval, sim.now)
            born = sim.now
            # Routing work on the splitter node; serialization only if the
            # first hop leaves the node (fused edges pass pointers).
            work = config.cost.route_s * config.batch_size
            if hops:
                work += cost.send_cost(tuple_bytes)
            yield from cpu_work(placement.splitter_node, work)
            for h, (src, dst) in enumerate(hops):
                yield from net.transfer(src, dst, tuple_bytes)
                if h < len(hops) - 1:
                    # Relay node: deserialize + reserialize.
                    relay_work = cost.recv_cost(tuple_bytes) + cost.send_cost(
                        tuple_bytes
                    )
                    yield from cpu_work(dst, relay_work)
            yield stores[engine].put((config.batch_size, born))

    def engine_proc(engine: int):
        node = placement.engine_nodes[engine]
        crossed_network = bool(_data_path(placement, engine))
        while True:
            batch, born = yield stores[engine].get()
            work = update_s
            if crossed_network:
                work += cost.recv_cost(tuple_bytes)
            yield from cpu_work(node, work)
            state.processed[engine] += batch
            if state.in_window:
                state.window_counts[engine] += batch
                state.latencies.append(sim.now - born)
            if config.sync_enabled and n_engines > 1:
                state.since_sync[engine] += batch
                if state.since_sync[engine] > gate:
                    state.since_sync[engine] = 0
                    sim.process(sync_proc(engine))

    def sync_proc(engine: int):
        """Ship state to the ring successor and merge there."""
        src = placement.engine_nodes[engine]
        target = (engine + 1) % n_engines
        dst = placement.engine_nodes[target]
        t0 = sim.now
        yield from cpu_work(src, cost.send_cost(state_bytes))
        yield from net.transfer(src, dst, state_bytes)
        yield from cpu_work(
            dst, cost.recv_cost(state_bytes) + merge_s
        )
        state.n_syncs += 1
        if telemetry is not None:
            telemetry.events.append({
                "ts": sim.now, "kind": "sync", "op": "sim-sync",
                "sender": f"engine-{engine}", "target": f"engine-{target}",
                "bytes": state_bytes, "duration_s": sim.now - t0,
            })
            telemetry.metrics.counter(
                "repro_sync_merges_total", operator="sim-sync"
            ).inc()
            telemetry.metrics.counter(
                "repro_sync_bytes_total", operator="sim-sync"
            ).inc(state_bytes)

    def sampler_proc(interval_s: float):
        """The simulated twin of the engines' backpressure sampler."""
        while True:
            yield sim.timeout(interval_s)
            for i in range(n_engines):
                depth = len(stores[i]._items)
                telemetry.events.append({
                    "ts": sim.now, "kind": "sample", "pe": f"chan-{i}",
                    "depth": depth, "capacity": config.queue_capacity,
                })
                telemetry.metrics.gauge(
                    "repro_queue_depth", pe=f"chan-{i}"
                ).set(depth)

    for i in range(n_engines):
        sim.process(sender(i))
        sim.process(engine_proc(i))

    if telemetry is not None:
        telemetry.events.append({
            "ts": 0.0, "kind": "run_start", "engine": "simulated",
            "graph": f"sim-{n_engines}-engines",
        })

        def collect_engine_counters():
            for i in range(n_engines):
                yield ("repro_tuples_in_total", "counter",
                       {"operator": f"engine-{i}"}, state.processed[i])

        telemetry.metrics.register_collector(collect_engine_counters)
        interval = telemetry.config.sampler_interval_s
        if interval is not None:
            sim.process(sampler_proc(interval))

    sim.run(until=config.warmup_s)
    state.in_window = True
    sim.run(until=config.warmup_s + config.window_s)

    window_total = sum(state.window_counts)
    horizon = config.warmup_s + config.window_s
    if telemetry is not None:
        telemetry.events.append({
            "ts": horizon, "kind": "run_end",
            "wall_time_s": horizon,
            "throughput_tps": window_total / config.window_s,
        })
    if state.latencies:
        lat = np.sort(np.asarray(state.latencies))
        lat_mean = float(lat.mean())
        lat_p50 = float(lat[int(0.50 * (lat.size - 1))])
        lat_p95 = float(lat[int(0.95 * (lat.size - 1))])
    else:
        lat_mean = lat_p50 = lat_p95 = 0.0
    return SimReport(
        config=config,
        tuples_processed=sum(state.processed),
        throughput=window_total / config.window_s,
        per_engine=[c / config.window_s for c in state.window_counts],
        latency_mean_s=lat_mean,
        latency_p50_s=lat_p50,
        latency_p95_s=lat_p95,
        n_syncs=state.n_syncs,
        splitter_cpu_utilization=cpus[placement.splitter_node].utilization(
            horizon
        ),
        splitter_nic_utilization=net.egress_utilization(
            placement.splitter_node, horizon
        ),
        node_cpu_utilization=[
            cpus[i].utilization(horizon) for i in range(spec.n_nodes)
        ],
        n_events=sim.n_events_processed,
    )


def _data_path(placement: Placement, engine: int) -> list[tuple[int, int]]:
    """Network hops a data tuple takes to reach ``engine`` (empty=fused)."""
    src = placement.splitter_node
    dst = placement.engine_nodes[engine]
    if src == dst:
        return []
    if placement.relay_node is not None and placement.relay_node not in (
        src,
        dst,
    ):
        return [(src, placement.relay_node), (placement.relay_node, dst)]
    return [(src, dst)]
