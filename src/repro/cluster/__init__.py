"""Discrete-event cluster simulator — the testbed substitute for the
throughput experiments (Figs. 6–7)."""

from .app_model import SimConfig, SimReport, simulate_streaming_pca
from .costmodel import PCACostModel
from .events import AllOf, Process, SimEvent, Simulator, Timeout
from .network import Network
from .placement import Placement
from .resources import Resource, Store
from .topology import PAPER_TESTBED, ClusterSpec
from .tuning import TuningResult, optimal_thread_count, scaling_efficiency

__all__ = [
    "AllOf",
    "ClusterSpec",
    "Network",
    "PAPER_TESTBED",
    "PCACostModel",
    "Placement",
    "Process",
    "Resource",
    "SimConfig",
    "SimEvent",
    "SimReport",
    "Simulator",
    "Store",
    "Timeout",
    "TuningResult",
    "optimal_thread_count",
    "scaling_efficiency",
    "simulate_streaming_pca",
]
