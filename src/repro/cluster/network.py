"""Network model: per-node full-duplex NICs with FIFO serialization.

Each node owns an egress NIC and an ingress NIC, each a unit-capacity
FIFO :class:`~repro.cluster.resources.Resource`: messages from one node
serialize on its egress, cross the wire after a propagation latency, and
serialize again on the receiver's ingress.  Co-located endpoints (fused
operators) bypass the network entirely — InfoSphere's "exchange data in
local memory" optimization, and the single-node arm of Fig. 6.

Per-message NIC occupancy is::

    wire_time(nbytes) + connection_overhead · n_active_flows(sender)

The second term is the connection-management cost under heavy fan-out:
it is what makes a *saturated* sender NIC degrade (not merely plateau)
as the number of flows keeps growing, reproducing the 30-thread droop in
Fig. 6.  Set ``connection_overhead_s = 0`` for an ideal NIC.
"""

from __future__ import annotations

from .events import Simulator
from .resources import Resource
from .topology import ClusterSpec

__all__ = ["Network"]


class Network:
    """All NICs of the cluster plus flow bookkeeping and byte counters."""

    def __init__(self, sim: Simulator, spec: ClusterSpec) -> None:
        self.sim = sim
        self.spec = spec
        self.egress = [
            Resource(sim, 1, name=f"nic-out-{i}") for i in range(spec.n_nodes)
        ]
        self.ingress = [
            Resource(sim, 1, name=f"nic-in-{i}") for i in range(spec.n_nodes)
        ]
        self._flows_out = [0] * spec.n_nodes
        self.bytes_sent = [0] * spec.n_nodes
        self.messages_sent = [0] * spec.n_nodes

    # ------------------------------------------------------------------

    def register_flow(self, src: int, dst: int) -> None:
        """Declare a persistent connection ``src → dst`` (counted once)."""
        self._check_node(src)
        self._check_node(dst)
        if src != dst:
            self._flows_out[src] += 1

    def active_flows(self, node: int) -> int:
        """Registered outgoing flows at ``node``."""
        self._check_node(node)
        return self._flows_out[node]

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.spec.n_nodes:
            raise ValueError(
                f"node {node} out of range 0..{self.spec.n_nodes - 1}"
            )

    # ------------------------------------------------------------------

    def transfer(self, src: int, dst: int, nbytes: int):
        """Generator: move ``nbytes`` from ``src`` to ``dst``.

        ``yield from`` this inside a process.  Co-located endpoints cost
        nothing (fused/local-memory path).
        """
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return
        spec = self.spec
        occupancy = spec.wire_time(nbytes) + (
            spec.connection_overhead_s * self._flows_out[src]
        )
        yield self.egress[src].request()
        yield self.sim.timeout(occupancy)
        self.egress[src].release()
        self.bytes_sent[src] += nbytes
        self.messages_sent[src] += 1

        yield self.sim.timeout(spec.hop_latency_s)

        yield self.ingress[dst].request()
        yield self.sim.timeout(spec.wire_time(nbytes))
        self.ingress[dst].release()

    def egress_utilization(self, node: int, horizon: float) -> float:
        """Fraction of ``horizon`` the node's egress NIC was busy."""
        self._check_node(node)
        return self.egress[node].utilization(horizon)
