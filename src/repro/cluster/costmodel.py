"""Per-tuple cost model of the streaming-PCA application.

The simulator needs service times for every action the real system
performs.  The compute costs follow the algorithm's complexity — the
per-tuple update solves the eigensystem of a ``(p+1)``-column factor,

.. math::

    c_{update}(d, p) = a\\,d\\,(p+1)^2 + c\\,(p+1)^3 + b ,

and a merge does the same with ``2p+1`` columns.  The coefficients can be
**calibrated against the real operator** (:meth:`PCACostModel.calibrate`
times actual ``RobustIncrementalPCA`` updates and fits ``a, b, c`` by
least squares), or taken from :meth:`PCACostModel.paper_scale`, whose
constants are tuned so a single simulated engine processes ~1.2 k
tuples/s at ``d=250, p=8`` — the paper's measured single-thread scale —
making the Fig. 6/7 axes directly comparable.

Wire sizes are exact: ``8d`` bytes per observation tuple,
``8·d·(p+1)`` per shipped eigensystem, plus headers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

__all__ = ["PCACostModel"]

_TUPLE_HEADER_BYTES = 64
_STATE_HEADER_BYTES = 128


@dataclass(frozen=True)
class PCACostModel:
    """Service-time model (seconds) for the simulated application.

    Attributes
    ----------
    a / b / c:
        Update-cost coefficients (see module docstring).
    route_s:
        Splitter CPU per tuple (target choice + queue handoff).
    send_overhead_s / send_per_byte_s:
        Sender-side serialization CPU per message (paid only on
        network, i.e. non-fused, edges).
    recv_overhead_s / recv_per_byte_s:
        Receiver-side deserialization CPU per message (the SPL
        tuple-conversion cost of Section III-A.2's network connectors).
    """

    a: float
    b: float
    c: float
    route_s: float = 2.0e-6
    send_overhead_s: float = 8.0e-6
    send_per_byte_s: float = 1.0e-9
    recv_overhead_s: float = 8.0e-6
    recv_per_byte_s: float = 2.5e-8

    def __post_init__(self) -> None:
        for name in ("a", "b", "c", "route_s", "send_overhead_s",
                     "send_per_byte_s", "recv_overhead_s",
                     "recv_per_byte_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    # -- compute ---------------------------------------------------------

    def update_cost(self, dim: int, p: int) -> float:
        """CPU seconds for one streaming update (factor has p+1 columns)."""
        m = p + 1
        return self.a * dim * m * m + self.c * m**3 + self.b

    def merge_cost(self, dim: int, p: int) -> float:
        """CPU seconds for one eigensystem merge (2p+1 columns)."""
        m = 2 * p + 1
        return self.a * dim * m * m + self.c * m**3 + self.b

    # -- wire --------------------------------------------------------------

    @staticmethod
    def tuple_bytes(dim: int) -> int:
        """Wire size of one observation tuple."""
        return 8 * dim + _TUPLE_HEADER_BYTES

    @staticmethod
    def state_bytes(dim: int, p: int) -> int:
        """Wire size of one shipped eigensystem."""
        return 8 * dim * (p + 2) + _STATE_HEADER_BYTES

    def send_cost(self, nbytes: int) -> float:
        """Sender serialization CPU for a message of ``nbytes``."""
        return self.send_overhead_s + self.send_per_byte_s * nbytes

    def recv_cost(self, nbytes: int) -> float:
        """Receiver deserialization CPU for a message of ``nbytes``."""
        return self.recv_overhead_s + self.recv_per_byte_s * nbytes

    # -- construction ------------------------------------------------------

    @classmethod
    def paper_scale(cls) -> "PCACostModel":
        """Constants tuned to the paper's absolute throughput scale.

        ``update_cost(250, 8) ≈ 0.83 ms`` ⇒ one engine ≈ 1.2 k tuples/s,
        matching the single-thread operating point of Section III-D.
        """
        return cls(a=4.0e-8, b=2.0e-5, c=1.0e-9)

    @classmethod
    def calibrate(
        cls,
        dims: tuple[int, ...] = (128, 512, 1024),
        ps: tuple[int, ...] = (4, 8, 16),
        *,
        n_updates: int = 200,
        seed: int = 0,
        **overrides,
    ) -> "PCACostModel":
        """Fit ``a, b, c`` by timing the *real* streaming operator.

        Runs :class:`~repro.core.robust.RobustIncrementalPCA` on random
        data over a ``(dim, p)`` grid and least-squares fits the cost
        surface.  This anchors the simulator to this machine's actual
        Python/numpy speed (the HPC-guide way: measure, don't guess).
        """
        from ..core.robust import RobustIncrementalPCA  # local: avoid cycle

        rng = np.random.default_rng(seed)
        rows, times = [], []
        for d in dims:
            for p in ps:
                est = RobustIncrementalPCA(
                    p, alpha=0.999, init_size=max(2 * p, 10)
                )
                x = rng.standard_normal((n_updates + est.init_size, d))
                for row in x[: est.init_size]:
                    est.update(row)
                start = time.perf_counter()
                for row in x[est.init_size :]:
                    est.update(row)
                elapsed = (time.perf_counter() - start) / n_updates
                m = p + 1
                rows.append([d * m * m, 1.0, m**3])
                times.append(elapsed)
        from scipy.optimize import nnls

        coeffs, _ = nnls(np.asarray(rows), np.asarray(times))
        a, b, c = (float(v) for v in coeffs)
        return cls(a=a, b=b, c=c, **overrides)
