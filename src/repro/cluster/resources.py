"""Simulation resources: FIFO server pools and bounded stores.

* :class:`Resource` — ``capacity`` identical servers with a FIFO request
  queue.  Models a node's CPU cores: an operator thread acquires a core,
  holds it for its service time, releases it.  More runnable threads than
  cores ⇒ queueing ⇒ the per-thread slowdown Fig. 6 shows beyond
  2 threads/node.
* :class:`Store` — a bounded tuple buffer with blocking put/get.  Models
  the inter-PE queues; a full store blocks the producer, which is exactly
  the backpressure path from engines back to the splitter.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .events import SimEvent, Simulator

__all__ = ["Resource", "Store"]


class Resource:
    """``capacity`` servers, FIFO grant order.

    Usage inside a process::

        grant = resource.request()
        yield grant
        yield sim.timeout(service_time)
        resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: deque[SimEvent] = deque()
        # Utilization accounting.
        self._busy_time = 0.0
        self._last_change = 0.0

    def request(self) -> SimEvent:
        """An event that fires when a server is granted."""
        ev = self.sim.event()
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            self.sim._schedule(0.0, ev.trigger)
        else:
            self._waiting.append(ev)
        return ev

    def release(self) -> None:
        """Return a server; the longest-waiting request (if any) gets it."""
        if self._in_use <= 0:
            raise RuntimeError(f"release without acquire on {self.name!r}")
        if self._waiting:
            ev = self._waiting.popleft()
            # server passes directly to the waiter; _in_use unchanged
            self.sim._schedule(0.0, ev.trigger)
        else:
            self._account()
            self._in_use -= 1

    def _account(self) -> None:
        now = self.sim.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    @property
    def queue_length(self) -> int:
        """Requests currently waiting."""
        return len(self._waiting)

    def utilization(self, horizon: float) -> float:
        """Mean busy servers over ``horizon`` seconds, as a fraction of
        capacity."""
        if horizon <= 0:
            return 0.0
        self._account()
        return self._busy_time / (self.capacity * horizon)


class Store:
    """A bounded FIFO buffer of items with blocking put/get."""

    def __init__(
        self, sim: Simulator, capacity: int | None = None, name: str = ""
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[SimEvent] = deque()
        self._putters: deque[tuple[SimEvent, Any]] = deque()

    def put(self, item: Any) -> SimEvent:
        """An event that fires when the item has been accepted."""
        ev = self.sim.event()
        if self._getters:
            getter = self._getters.popleft()
            self.sim._schedule(0.0, getter.trigger, item)
            self.sim._schedule(0.0, ev.trigger)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            self.sim._schedule(0.0, ev.trigger)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> SimEvent:
        """An event whose value is the next item, when available."""
        ev = self.sim.event()
        if self._items:
            item = self._items.popleft()
            if self._putters:
                put_ev, pending = self._putters.popleft()
                self._items.append(pending)
                self.sim._schedule(0.0, put_ev.trigger)
            self.sim._schedule(0.0, ev.trigger, item)
        elif self._putters:
            # capacity == 0 is impossible (>=1), so this branch means a
            # waiting putter while items is empty: hand over directly.
            put_ev, pending = self._putters.popleft()
            self.sim._schedule(0.0, put_ev.trigger)
            self.sim._schedule(0.0, ev.trigger, pending)
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)
