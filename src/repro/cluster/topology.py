"""Cluster hardware description.

The paper's testbed (Section III-D): "10 computing nodes ... quad-core
Intel Xeon E31230 @ 3.20GHz with 16 GB of RAM and 1G ethernet."
:data:`PAPER_TESTBED` encodes exactly that; experiments may scale any
knob.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ClusterSpec", "PAPER_TESTBED"]


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of the simulated cluster.

    Attributes
    ----------
    n_nodes:
        Number of identical compute nodes.
    cores_per_node:
        CPU cores per node (each operator thread occupies one while
        computing).
    link_bandwidth_bps:
        Per-node NIC bandwidth, bits/second, full duplex.
    link_latency_s:
        One-way propagation + kernel stack latency per message.
    connector_latency_s:
        Additional one-way latency contributed by the streaming
        middleware's network connectors per hop ("to avoid unnecessary
        packet latency among the graph nodes", Section III-A).  It is the
        reason chains with extra hops (default unoptimized placement)
        lose throughput when their supply path becomes longer than the
        engine's service time.
    frame_overhead_bytes:
        Fixed per-message wire overhead (headers, framing).
    connection_overhead_s:
        Extra NIC serialization time per message *per active outgoing
        flow* at the sending node.  This models the connection-management
        cost that makes a saturated interconnect degrade as the flow
        count grows — the paper's "20 threads are saturating the nodes
        interconnect" / 30-thread degradation under default placement.
    """

    n_nodes: int = 10
    cores_per_node: int = 4
    link_bandwidth_bps: float = 1e9
    link_latency_s: float = 100e-6
    connector_latency_s: float = 350e-6
    frame_overhead_bytes: int = 78
    connection_overhead_s: float = 2.5e-6

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.cores_per_node < 1:
            raise ValueError(
                f"cores_per_node must be >= 1, got {self.cores_per_node}"
            )
        if self.link_bandwidth_bps <= 0:
            raise ValueError("link_bandwidth_bps must be positive")
        if self.link_latency_s < 0:
            raise ValueError("link_latency_s must be >= 0")
        if self.connector_latency_s < 0:
            raise ValueError("connector_latency_s must be >= 0")
        if self.frame_overhead_bytes < 0:
            raise ValueError("frame_overhead_bytes must be >= 0")
        if self.connection_overhead_s < 0:
            raise ValueError("connection_overhead_s must be >= 0")

    @property
    def total_cores(self) -> int:
        """Aggregate core count of the cluster."""
        return self.n_nodes * self.cores_per_node

    @property
    def hop_latency_s(self) -> float:
        """Total one-way latency per network hop (wire + middleware)."""
        return self.link_latency_s + self.connector_latency_s

    def wire_time(self, nbytes: int) -> float:
        """Pure serialization time of a message on one NIC."""
        return 8.0 * (nbytes + self.frame_overhead_bytes) / self.link_bandwidth_bps


#: The hardware of the paper's Section III-D evaluation.
PAPER_TESTBED = ClusterSpec()
