"""Operator → node placement schemes (Section III-A/D).

"The analysis graph can be partitioned in many ways across the cluster
nodes"; Fig. 6 compares two:

* :meth:`Placement.single_node` — every component on one node, fully
  fused: no network traffic at all, but all engines share that node's
  cores (the "Single" line).
* :meth:`Placement.distributed_even` — engines spread round-robin over
  the nodes starting next to the splitter (the "Distributed" line; at 20
  engines on 10 nodes this reproduces the paper's "grouped by 2 on all
  distributed computing nodes evenly").
* :meth:`Placement.default_unoptimized` — the distributed layout as
  InfoSphere's *default* (profile-free) placement would produce it: when
  most of the cluster is idle (``n_engines < n_nodes // 2``) the default
  scatter puts the splitter's network connector on its own node, adding a
  relay hop to every tuple.  This models the paper's own diagnosis of the
  1-thread anomaly in Fig. 7 ("most likely caused by the non optimal
  distribution of components in the cluster and interconnect overhead").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Placement"]


@dataclass(frozen=True)
class Placement:
    """Node assignment for the streaming-PCA application.

    Attributes
    ----------
    splitter_node:
        Node hosting the source + split operator.
    engine_nodes:
        Node of each PCA engine, index-aligned with engine ids.
    relay_node:
        Optional extra hop: every data tuple traverses
        ``splitter → relay → engine`` instead of going direct (``None``
        disables; ignored for engines co-located with the splitter).
    """

    splitter_node: int
    engine_nodes: tuple[int, ...]
    relay_node: int | None = None

    def __post_init__(self) -> None:
        if not self.engine_nodes:
            raise ValueError("need at least one engine")
        if self.splitter_node < 0 or any(n < 0 for n in self.engine_nodes):
            raise ValueError("node indices must be >= 0")
        if self.relay_node is not None and self.relay_node < 0:
            raise ValueError("relay_node must be >= 0")

    @property
    def n_engines(self) -> int:
        """Number of PCA engines."""
        return len(self.engine_nodes)

    def max_node(self) -> int:
        """Highest node index referenced (for spec validation)."""
        nodes = [self.splitter_node, *self.engine_nodes]
        if self.relay_node is not None:
            nodes.append(self.relay_node)
        return max(nodes)

    def engines_on(self, node: int) -> int:
        """How many engines share ``node``."""
        return sum(1 for n in self.engine_nodes if n == node)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    @classmethod
    def single_node(cls, n_engines: int, node: int = 0) -> "Placement":
        """Everything on one node (fully fused, zero network)."""
        if n_engines < 1:
            raise ValueError(f"n_engines must be >= 1, got {n_engines}")
        return cls(splitter_node=node, engine_nodes=(node,) * n_engines)

    @classmethod
    def distributed_even(
        cls, n_engines: int, n_nodes: int, *, splitter_node: int = 0
    ) -> "Placement":
        """Engines round-robin over the cluster, starting after the
        splitter's node so small configurations avoid sharing it."""
        if n_engines < 1:
            raise ValueError(f"n_engines must be >= 1, got {n_engines}")
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        engine_nodes = tuple(
            (splitter_node + 1 + i) % n_nodes for i in range(n_engines)
        )
        return cls(splitter_node=splitter_node, engine_nodes=engine_nodes)

    @classmethod
    def default_unoptimized(
        cls, n_engines: int, n_nodes: int, *, splitter_node: int = 0
    ) -> "Placement":
        """The distributed layout with InfoSphere's profile-free default
        scatter: a relay network-connector node appears whenever most of
        the cluster would otherwise sit idle."""
        base = cls.distributed_even(
            n_engines, n_nodes, splitter_node=splitter_node
        )
        if n_nodes >= 3 and n_engines < n_nodes // 2:
            used = {splitter_node, *base.engine_nodes}
            idle = [n for n in range(n_nodes) if n not in used]
            relay = idle[0] if idle else (splitter_node + 2) % n_nodes
            return cls(
                splitter_node=base.splitter_node,
                engine_nodes=base.engine_nodes,
                relay_node=relay,
            )
        return base
