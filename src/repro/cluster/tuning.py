"""Configuration search over the simulated cluster.

The paper tunes by hand ("the optimum number is 2 instances per node, or
20 instances per 10 nodes in our case" — §III-D) after repeated profiling
runs.  With the simulator that search is a function call:
:func:`optimal_thread_count` sweeps engine counts under a placement rule
and returns the throughput-maximizing configuration, and
:func:`scaling_efficiency` reports how far each point sits from ideal
linear scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from .app_model import SimConfig, SimReport, simulate_streaming_pca
from .costmodel import PCACostModel
from .placement import Placement
from .topology import ClusterSpec

__all__ = ["TuningResult", "optimal_thread_count", "scaling_efficiency"]


@dataclass
class TuningResult:
    """Outcome of a thread-count sweep."""

    threads: list[int] = field(default_factory=list)
    reports: list[SimReport] = field(default_factory=list)

    @property
    def best_threads(self) -> int:
        """Engine count with the highest simulated throughput."""
        best = max(
            range(len(self.threads)), key=lambda i: self.reports[i].throughput
        )
        return self.threads[best]

    @property
    def best_throughput(self) -> float:
        """Throughput at the optimum."""
        return max(r.throughput for r in self.reports)

    def throughput_of(self, threads: int) -> float:
        """Throughput at a specific sampled engine count."""
        return self.reports[self.threads.index(threads)].throughput


def optimal_thread_count(
    spec: ClusterSpec,
    cost: PCACostModel,
    *,
    dim: int = 250,
    n_components: int = 8,
    candidates: Sequence[int] | None = None,
    placement_rule: Callable[[int, int], Placement] | None = None,
    warmup_s: float = 0.2,
    window_s: float = 0.5,
    **sim_kwargs,
) -> TuningResult:
    """Sweep engine counts and return the throughput-optimal one.

    Parameters
    ----------
    candidates:
        Engine counts to try; default 1…3 per node.
    placement_rule:
        ``(n_engines, n_nodes) -> Placement``; default
        :meth:`Placement.default_unoptimized` (what an untuned deployment
        gets — tune against reality, not the ideal).
    """
    if candidates is None:
        per_node = range(1, 4)
        candidates = sorted(
            {k * spec.n_nodes for k in per_node}
            | {1, spec.n_nodes // 2 or 1, spec.n_nodes}
        )
    if placement_rule is None:
        placement_rule = Placement.default_unoptimized

    result = TuningResult()
    for n in candidates:
        placement = placement_rule(n, spec.n_nodes)
        report = simulate_streaming_pca(
            SimConfig(
                spec=spec,
                placement=placement,
                cost=cost,
                dim=dim,
                n_components=n_components,
                warmup_s=warmup_s,
                window_s=window_s,
                **sim_kwargs,
            )
        )
        result.threads.append(n)
        result.reports.append(report)
    return result


def scaling_efficiency(result: TuningResult) -> dict[int, float]:
    """Fraction of ideal linear scaling achieved at each engine count.

    Ideal = single-engine throughput × n; a value near 1.0 means the
    configuration scales linearly, values well below 1.0 mark the
    saturation knee the paper reads off Fig. 6.
    """
    if 1 not in result.threads:
        raise ValueError("sweep must include a single-engine point")
    base = result.throughput_of(1)
    if base <= 0:
        raise ValueError("single-engine throughput is zero")
    return {
        n: result.throughput_of(n) / (base * n) for n in result.threads
    }
