"""A minimal discrete-event simulation kernel.

The throughput experiments of Figs. 6–7 ran on a 10-node testbed we do
not have; we replace it with a discrete-event simulation of the cluster
(see DESIGN.md, substitution table).  This module is the kernel: a
virtual clock, an event heap, and generator-based processes in the style
of SimPy — a process is a Python generator that ``yield``\\ s events
(timeouts, resource grants, store gets) and is resumed when they fire.

The kernel is deliberately tiny and fully deterministic: same inputs,
same event order (ties broken by schedule sequence number).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable

__all__ = ["SimEvent", "Timeout", "Process", "AllOf", "Simulator"]


class SimEvent:
    """A one-shot event; processes wait on it, callbacks fire on trigger."""

    __slots__ = ("sim", "triggered", "value", "_callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._callbacks: list[Callable[[SimEvent], None]] = []

    def on_trigger(self, fn: Callable[["SimEvent"], None]) -> None:
        """Register a callback (fires immediately if already triggered)."""
        if self.triggered:
            fn(self)
        else:
            self._callbacks.append(fn)

    def trigger(self, value: Any = None) -> None:
        """Fire the event now; idempotence is an error (one-shot)."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class Timeout(SimEvent):
    """An event that fires ``delay`` simulated seconds in the future."""

    def __init__(self, sim: "Simulator", delay: float) -> None:
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        super().__init__(sim)
        sim._schedule(delay, self.trigger)


class AllOf(SimEvent):
    """Fires when every child event has fired."""

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent]) -> None:
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        if self._pending == 0:
            sim._schedule(0.0, self.trigger)
            return
        for ev in events:
            ev.on_trigger(self._child_done)

    def _child_done(self, _ev: SimEvent) -> None:
        self._pending -= 1
        if self._pending == 0 and not self.triggered:
            self.trigger()


class Process(SimEvent):
    """A generator-based process; itself an event that fires on return.

    The generator yields :class:`SimEvent` instances; the process resumes
    (with the event's ``value`` sent in) when each fires.
    """

    def __init__(
        self, sim: "Simulator", gen: Generator[SimEvent, Any, Any]
    ) -> None:
        super().__init__(sim)
        self._gen = gen
        sim._schedule(0.0, lambda: self._step(None))

    def _step(self, send_value: Any) -> None:
        try:
            ev = self._gen.send(send_value)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        if not isinstance(ev, SimEvent):
            raise TypeError(
                f"process yielded {type(ev).__name__}, expected SimEvent"
            )
        ev.on_trigger(lambda e: self._step(e.value))


class Simulator:
    """The event loop: clock + heap.

    Use :meth:`process` to launch generators, :meth:`timeout` inside them,
    and :meth:`run` to drive the loop.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable]] = []
        self._seq = itertools.count()
        self._n_events = 0

    # -- scheduling (kernel-internal) -----------------------------------

    def _schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        heapq.heappush(
            self._heap, (self.now + delay, next(self._seq), lambda: fn(*args))
        )

    # -- public API ------------------------------------------------------

    def timeout(self, delay: float) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay)

    def event(self) -> SimEvent:
        """A bare event, to be triggered manually."""
        return SimEvent(self)

    def all_of(self, events: Iterable[SimEvent]) -> AllOf:
        """An event firing when all ``events`` have fired."""
        return AllOf(self, events)

    def process(self, gen: Generator[SimEvent, Any, Any]) -> Process:
        """Launch a generator as a process."""
        return Process(self, gen)

    def run(self, until: float | None = None) -> None:
        """Run until the heap empties or the clock passes ``until``."""
        while self._heap:
            t, _, fn = self._heap[0]
            if until is not None and t > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            self.now = t
            self._n_events += 1
            fn()
        if until is not None:
            self.now = until

    @property
    def n_events_processed(self) -> int:
        """Total events executed (a determinism/regression probe)."""
        return self._n_events
