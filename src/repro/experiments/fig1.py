"""Experiment FIG1 — classic vs robust PCA under outlier contamination.

Paper Fig. 1: eigenvalue traces over a random test stream with injected
outliers.  The classical eigensystem "does not converge and eigenvalues
are noisy ... each outlier data point takes over the top eigenvector"
(the rainbow effect); the robust variant converges and the detected
outliers (black marks) coincide with the injected ones.

Quantitative form reproduced here:

* tail dispersion of the eigenvalue traces (classic ≫ robust);
* largest principal angle to the planted subspace (classic ≫ robust);
* outlier detection precision/recall for the robust run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.incremental import IncrementalPCA
from ..core.metrics import TraceRecorder, largest_principal_angle
from ..core.outliers import OutlierLog
from ..core.robust import RobustIncrementalPCA
from ..data.gaussian import PlantedSubspaceModel
from ..data.outliers import GrossOutlierInjector
from .common import Table

__all__ = ["Fig1Config", "Fig1Result", "run_fig1"]


@dataclass(frozen=True)
class Fig1Config:
    """Workload knobs for the Fig. 1 experiment."""

    dim: int = 100
    signal_variances: tuple[float, ...] = (25.0, 16.0, 9.0, 4.0)
    noise_std: float = 0.5
    n_observations: int = 6000
    outlier_rate: float = 0.04
    outlier_amplitude: float = 20.0
    n_components: int = 4
    alpha: float = 0.998
    seed: int = 7
    trace_every: int = 10


@dataclass
class Fig1Result:
    """Everything Fig. 1 plots, in data form."""

    config: Fig1Config
    classic_trace: TraceRecorder
    robust_trace: TraceRecorder
    classic_angle: float
    robust_angle: float
    classic_tail_dispersion: np.ndarray
    robust_tail_dispersion: np.ndarray
    detection: dict[str, float]
    true_eigenvalues: np.ndarray
    robust_eigenvalues: np.ndarray
    classic_eigenvalues: np.ndarray

    def table(self) -> Table:
        """Summary table (the caption-level numbers of Fig. 1)."""
        return Table(
            title=(
                "FIG1: classic vs robust streaming PCA, "
                f"{self.config.outlier_rate:.0%} gross outliers"
            ),
            headers=["metric", "classic", "robust"],
            rows=[
                ["largest principal angle to truth (rad)",
                 self.classic_angle, self.robust_angle],
                ["tail eigenvalue dispersion (top component)",
                 float(self.classic_tail_dispersion[0]),
                 float(self.robust_tail_dispersion[0])],
                ["outlier precision", "-", self.detection["precision"]],
                ["outlier recall", "-", self.detection["recall"]],
            ],
        )


def run_fig1(config: Fig1Config = Fig1Config()) -> Fig1Result:
    """Run both estimators over the same contaminated stream."""
    model = PlantedSubspaceModel(
        dim=config.dim,
        signal_variances=config.signal_variances,
        noise_std=config.noise_std,
        seed=config.seed,
    )
    rng = np.random.default_rng(config.seed + 1)
    clean = model.sample(config.n_observations, rng)
    injector = GrossOutlierInjector(
        config.outlier_rate,
        config.outlier_amplitude,
        np.random.default_rng(config.seed + 2),
    )
    stream = np.empty_like(clean)
    for i, x in enumerate(clean):
        stream[i], _ = injector(x)

    classic = IncrementalPCA(config.n_components, alpha=config.alpha)
    robust = RobustIncrementalPCA(
        config.n_components, alpha=config.alpha
    )
    classic_trace = TraceRecorder(every=config.trace_every)
    robust_trace = TraceRecorder(every=config.trace_every)
    log = OutlierLog()

    for x in stream:
        rc = classic.update(x)
        if classic.is_initialized:
            classic_trace.record(classic.state, rc)
        rr = robust.update(x)
        if robust.is_initialized:
            robust_trace.record(robust.state, rr)
        log.observe(rr)

    return Fig1Result(
        config=config,
        classic_trace=classic_trace,
        robust_trace=robust_trace,
        classic_angle=largest_principal_angle(
            classic.state.basis, model.basis
        ),
        robust_angle=largest_principal_angle(
            robust.state.basis[:, : config.n_components], model.basis
        ),
        classic_tail_dispersion=classic_trace.tail_dispersion(),
        robust_tail_dispersion=robust_trace.tail_dispersion(),
        detection=log.detection_stats(injector.steps),
        true_eigenvalues=model.eigenvalues,
        robust_eigenvalues=robust.eigenvalues_.copy(),
        classic_eigenvalues=classic.eigenvalues_.copy(),
    )
