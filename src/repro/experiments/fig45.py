"""Experiment FIG45 — eigenspectra convergence on galaxy spectra.

Paper Figs. 4–5: the first four eigenspectra are "noisy to start with"
(Fig. 4) and, after a significant number of observations, "improve
significantly ... and develop physically meaningful features", with
smoothness as the robustness signature (Fig. 5).

Reproduced quantitatively: the streaming robust PCA runs over synthetic
SDSS-like spectra (normalized, gappy, randomized order, a few junk
spectra); snapshots of the leading eigenspectra are taken early and late;
we report per-component roughness and principal angles to the clean
ground-truth basis at both times.  "Reproduced" means: late roughness <
early roughness and late angle < early angle, by wide margins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metrics import principal_angles, roughness
from ..core.normalize import NormalizationError, unit_mean_flux
from ..core.robust import RobustIncrementalPCA
from ..data.spectra import GalaxySpectrumModel, WavelengthGrid
from .common import Table

__all__ = ["Fig45Config", "Fig45Result", "run_fig45"]


@dataclass(frozen=True)
class Fig45Config:
    """Workload knobs for the eigenspectra-convergence experiment."""

    n_bins: int = 400
    n_spectra: int = 4000
    early_at: int = 200
    n_components: int = 4
    extra_components: int = 2
    alpha: float = 0.9995
    z_max: float = 0.2
    noise_std: float = 0.06
    dropout_rate: float = 0.15
    outlier_rate: float = 0.01
    seed: int = 11


@dataclass
class Fig45Result:
    """Early/late eigenspectra and their quality metrics."""

    config: Fig45Config
    wavelengths: np.ndarray
    early_basis: np.ndarray
    late_basis: np.ndarray
    truth_basis: np.ndarray
    early_roughness: np.ndarray
    late_roughness: np.ndarray
    early_angles: np.ndarray
    late_angles: np.ndarray
    n_processed: int
    n_gap_filled: int

    def table(self) -> Table:
        """Per-component early/late comparison (the Fig. 4 vs Fig. 5 story)."""
        rows = []
        for j in range(self.config.n_components):
            rows.append(
                [
                    f"e{j + 1}",
                    float(self.early_roughness[j]),
                    float(self.late_roughness[j]),
                    float(self.early_angles[j]) if j < self.early_angles.size else "-",
                    float(self.late_angles[j]) if j < self.late_angles.size else "-",
                ]
            )
        return Table(
            title=(
                f"FIG4/5: eigenspectra after {self.config.early_at} (early) vs "
                f"{self.n_processed} (late) galaxy spectra"
            ),
            headers=[
                "component",
                "roughness early",
                "roughness late",
                "angle early (rad)",
                "angle late (rad)",
            ],
            rows=rows,
        )


def run_fig45(config: Fig45Config = Fig45Config()) -> Fig45Result:
    """Stream synthetic galaxy spectra and snapshot the eigenspectra."""
    model = GalaxySpectrumModel(
        grid=WavelengthGrid(n_bins=config.n_bins),
        z_max=config.z_max,
        noise_std=config.noise_std,
        dropout_rate=config.dropout_rate,
        outlier_rate=config.outlier_rate,
        seed=config.seed,
    )
    rng = np.random.default_rng(config.seed + 1)
    sample = model.sample(config.n_spectra, rng)
    # Randomized order (paper: systematic stream order is disadvantageous).
    order = np.random.default_rng(config.seed + 2).permutation(len(sample))

    est = RobustIncrementalPCA(
        config.n_components,
        extra_components=config.extra_components,
        alpha=config.alpha,
        init_size=max(4 * config.n_components, 24),
    )

    early_basis: np.ndarray | None = None
    n_processed = 0
    n_gap_filled = 0
    for idx in order:
        flux = sample.flux[idx]
        try:
            flux = unit_mean_flux(flux)
        except NormalizationError:
            continue  # junk spectrum that cannot be normalized: drop
        result = est.update(flux)
        n_processed += 1
        if result is not None:
            n_gap_filled += int(result.n_filled > 0)
        if early_basis is None and (
            est.is_initialized and n_processed >= config.early_at
        ):
            early_basis = est.state.basis[:, : config.n_components].copy()
    if early_basis is None:  # pragma: no cover - tiny configs only
        early_basis = est.state.basis[:, : config.n_components].copy()
    late_basis = est.state.basis[:, : config.n_components].copy()

    _, truth_basis, _ = model.ground_truth_basis(config.n_components)

    def angles(basis: np.ndarray) -> np.ndarray:
        return principal_angles(basis, truth_basis)

    return Fig45Result(
        config=config,
        wavelengths=model.grid.wavelengths,
        early_basis=early_basis,
        late_basis=late_basis,
        truth_basis=truth_basis,
        early_roughness=np.array(
            [roughness(early_basis[:, j]) for j in range(early_basis.shape[1])]
        ),
        late_roughness=np.array(
            [roughness(late_basis[:, j]) for j in range(late_basis.shape[1])]
        ),
        early_angles=angles(early_basis),
        late_angles=angles(late_basis),
        n_processed=n_processed,
        n_gap_filled=n_gap_filled,
    )
