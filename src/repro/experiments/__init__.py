"""One module per paper figure plus ablations (see DESIGN.md §4)."""

from .ablations import (
    AlphaAblationResult,
    GapAblationResult,
    GateAblationResult,
    OrderAblationResult,
    SyncStrategyResult,
    run_alpha_ablation,
    run_gap_ablation,
    run_gate_ablation,
    run_order_ablation,
    run_sync_strategies,
)
from .common import Table, format_table
from .convergence import ConvergenceConfig, ConvergenceResult, run_convergence
from .fig1 import Fig1Config, Fig1Result, run_fig1
from .fig45 import Fig45Config, Fig45Result, run_fig45
from .fig6 import Fig6Config, Fig6Result, run_fig6
from .fig7 import Fig7Config, Fig7Result, run_fig7
from .latency import LatencyConfig, LatencyResult, run_latency

__all__ = [
    "AlphaAblationResult",
    "ConvergenceConfig",
    "ConvergenceResult",
    "Fig1Config",
    "Fig1Result",
    "Fig45Config",
    "Fig45Result",
    "Fig6Config",
    "Fig6Result",
    "Fig7Config",
    "Fig7Result",
    "GapAblationResult",
    "LatencyConfig",
    "LatencyResult",
    "GateAblationResult",
    "OrderAblationResult",
    "SyncStrategyResult",
    "Table",
    "format_table",
    "run_alpha_ablation",
    "run_convergence",
    "run_fig1",
    "run_fig45",
    "run_fig6",
    "run_fig7",
    "run_gap_ablation",
    "run_gate_ablation",
    "run_latency",
    "run_order_ablation",
    "run_sync_strategies",
]
