"""Experiment CONV — in-flight results: convergence before stream end.

Section III-C: "We frequently see fast convergence way before getting to
the last galaxy, which can speed up the scientific analysis.  The reason
is primarily that inherently low-rank galaxy manifold."  And the
introduction's core pitch: partial sums provide "a feed of in-flight
results ... invaluable when processing petabytes".

This experiment quantifies that: stream galaxy spectra once, snapshot
the eigensystem along the way, and measure at what fraction of the
stream the solution reaches (say) 95 % of its final accuracy — the
number that tells an astronomer how early the in-flight eigenspectra
become scientifically usable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.metrics import principal_angles
from ..core.normalize import NormalizationError, unit_mean_flux
from ..core.robust import RobustIncrementalPCA
from ..data.spectra import GalaxySpectrumModel, WavelengthGrid
from .common import Table

__all__ = ["ConvergenceConfig", "ConvergenceResult", "run_convergence"]


@dataclass(frozen=True)
class ConvergenceConfig:
    """Knobs for the in-flight convergence experiment."""

    n_bins: int = 300
    n_spectra: int = 5000
    n_components: int = 3
    alpha: float = 0.9995
    snapshot_every: int = 250
    seed: int = 23


@dataclass
class ConvergenceResult:
    """Accuracy trajectory along the stream."""

    config: ConvergenceConfig
    fractions: list[float] = field(default_factory=list)
    angles: list[float] = field(default_factory=list)
    leading_angles: list[float] = field(default_factory=list)
    final_angle: float = 0.0
    final_leading_angle: float = 0.0

    def table(self) -> Table:
        return Table(
            title=(
                "CONV: in-flight accuracy vs fraction of the stream "
                f"processed ({self.config.n_spectra} galaxy spectra)"
            ),
            headers=[
                "stream fraction",
                "leading angle (rad)",
                "largest angle (rad)",
            ],
            rows=[
                [round(f, 2), round(l, 4), round(a, 4)]
                for f, l, a in zip(
                    self.fractions, self.leading_angles, self.angles
                )
            ],
        )

    def fraction_to_reach(
        self, angle_rad: float = 0.05, *, leading: bool = True
    ) -> float:
        """Earliest stream fraction with angle ≤ ``angle_rad`` —
        "converged way before the last galaxy" when this is ≪ 1.

        The threshold is *absolute*: scientific usability of an
        eigenspectrum is a fixed accuracy bar, not a ratio to the
        asymptote (which keeps creeping down forever).  ``leading=True``
        scores the dominant eigenspectrum; the trailing directions are
        eigengap-limited and converge much more slowly even offline.
        """
        series = self.leading_angles if leading else self.angles
        for f, a in zip(self.fractions, series):
            if a <= angle_rad:
                return f
        return 1.0


def run_convergence(
    config: ConvergenceConfig = ConvergenceConfig(),
) -> ConvergenceResult:
    """Stream once, recording the angle-to-truth trajectory."""
    model = GalaxySpectrumModel(
        grid=WavelengthGrid(n_bins=config.n_bins),
        z_max=0.1,
        dropout_rate=0.1,
        outlier_rate=0.01,
        seed=config.seed,
    )
    rng = np.random.default_rng(config.seed + 1)
    sample = model.sample(config.n_spectra, rng)
    order = np.random.default_rng(config.seed + 2).permutation(
        config.n_spectra
    )
    _, truth, _ = model.ground_truth_basis(config.n_components)

    est = RobustIncrementalPCA(
        config.n_components,
        extra_components=2,
        alpha=config.alpha,
        init_size=32,
    )
    result = ConvergenceResult(config=config)
    n_processed = 0
    for idx in order:
        try:
            x = unit_mean_flux(sample.flux[idx])
        except NormalizationError:
            continue
        est.update(x)
        n_processed += 1
        if est.is_initialized and n_processed % config.snapshot_every == 0:
            angles = principal_angles(
                est.state.basis[:, : config.n_components], truth
            )
            result.fractions.append(n_processed / config.n_spectra)
            result.leading_angles.append(float(angles[0]))
            result.angles.append(float(angles.max()))
    result.final_angle = result.angles[-1] if result.angles else float("nan")
    result.final_leading_angle = (
        result.leading_angles[-1] if result.leading_angles else float("nan")
    )
    return result
