"""Experiment LAT — operator fusion vs per-tuple latency.

Section III-D: fusing operators so they pass tuples "by pointer as a
variable in memory instead of using a network ... gives significant
decrease of latency and increase in throughput", and the paper's whole
placement-optimization loop exists "to avoid unnecessary packet latency
among the graph nodes".

This experiment holds the offered load fixed (open-loop sources, well
below saturation) and measures end-to-end per-tuple latency under three
placements of the same 4-engine application: fully fused single-node,
distributed (one network hop), and default-unoptimized with a relay
connector (two hops).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.app_model import SimConfig, SimReport, simulate_streaming_pca
from ..cluster.costmodel import PCACostModel
from ..cluster.placement import Placement
from ..cluster.topology import PAPER_TESTBED, ClusterSpec
from .common import Table

__all__ = ["LatencyConfig", "LatencyResult", "run_latency"]


@dataclass(frozen=True)
class LatencyConfig:
    """Knobs for the fusion-latency experiment."""

    spec: ClusterSpec = PAPER_TESTBED
    dim: int = 250
    n_components: int = 8
    n_engines: int = 4
    offered_rate_per_engine: float = 600.0  # ~50% of engine capacity
    warmup_s: float = 0.3
    window_s: float = 1.0
    cost: PCACostModel | None = None


@dataclass
class LatencyResult:
    """Per-placement latency measurements at equal offered load."""

    config: LatencyConfig
    placements: list[str] = field(default_factory=list)
    reports: list[SimReport] = field(default_factory=list)

    def table(self) -> Table:
        rows = [
            [
                name,
                round(r.throughput),
                round(r.latency_p50_s * 1e3, 3),
                round(r.latency_p95_s * 1e3, 3),
            ]
            for name, r in zip(self.placements, self.reports)
        ]
        return Table(
            title=(
                "LAT: per-tuple latency vs placement at fixed load "
                f"({self.config.offered_rate_per_engine:.0f} obs/s/engine)"
            ),
            headers=["placement", "tuples/s", "p50 (ms)", "p95 (ms)"],
            rows=rows,
        )

    def p50_of(self, name: str) -> float:
        """Median latency (seconds) for one placement."""
        return self.reports[self.placements.index(name)].latency_p50_s


def run_latency(config: LatencyConfig = LatencyConfig()) -> LatencyResult:
    """Measure latency under fused / distributed / relayed placements."""
    cost = config.cost or PCACostModel.paper_scale()
    n = config.n_engines
    placements = [
        ("fused", Placement.single_node(n)),
        ("distributed", Placement.distributed_even(n, config.spec.n_nodes)),
        (
            "relay",
            Placement(
                splitter_node=0,
                engine_nodes=tuple(1 + i for i in range(n)),
                relay_node=n + 1,
            ),
        ),
    ]
    result = LatencyResult(config=config)
    for name, placement in placements:
        sim_cfg = SimConfig(
            spec=config.spec,
            placement=placement,
            cost=cost,
            dim=config.dim,
            n_components=config.n_components,
            offered_rate_per_engine=config.offered_rate_per_engine,
            warmup_s=config.warmup_s,
            window_s=config.window_s,
        )
        result.placements.append(name)
        result.reports.append(simulate_streaming_pca(sim_cfg))
    return result
