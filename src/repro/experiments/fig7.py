"""Experiment FIG7 — per-thread throughput vs data dimensionality.

Paper Fig. 7 (log-log): "tuples / second / thread on the dimensionality
of the incoming data stream ... for a data stream being split to 1, 5,
10 and 20 parallel synchronized PCA engines running on 10 computing
nodes."

Reproduced shapes:

* per-thread rate falls roughly as ``1/d`` (the ``O(d·p²)`` update);
* 5 and 10 threads sit on the ideal per-thread line (good scaling);
* 20 threads fall below it at small ``d`` (interconnect saturation) and
  rejoin it at large ``d`` (compute-bound);
* 1 thread under default unoptimized placement underperforms at small
  ``d`` (relay hop + connector latency starve the lone engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.app_model import SimConfig, SimReport, simulate_streaming_pca
from ..cluster.costmodel import PCACostModel
from ..cluster.placement import Placement
from ..cluster.topology import PAPER_TESTBED, ClusterSpec
from .common import Table

__all__ = ["Fig7Config", "Fig7Result", "run_fig7"]

DEFAULT_DIMS = (250, 500, 1000, 1500, 2000)
DEFAULT_THREADS = (1, 5, 10, 20)


@dataclass(frozen=True)
class Fig7Config:
    """Simulation knobs for the dimensionality-scaling experiment."""

    spec: ClusterSpec = PAPER_TESTBED
    dims: tuple[int, ...] = DEFAULT_DIMS
    threads: tuple[int, ...] = DEFAULT_THREADS
    n_components: int = 8
    sync_window: int = 5000
    warmup_s: float = 0.3
    window_s: float = 1.0
    cost: PCACostModel | None = None


@dataclass
class Fig7Result:
    """Per-thread throughput grid ``reports[threads][dim]``."""

    config: Fig7Config
    reports: dict[int, dict[int, SimReport]] = field(default_factory=dict)

    def per_thread(self, threads: int, dim: int) -> float:
        """Tuples/s/thread at one grid point."""
        return self.reports[threads][dim].per_thread

    def table(self) -> Table:
        """The Fig. 7 series (one row per dimensionality)."""
        headers = ["dims"] + [f"{t} thr" for t in self.config.threads]
        rows = []
        for d in self.config.dims:
            rows.append(
                [d]
                + [round(self.per_thread(t, d), 1) for t in self.config.threads]
            )
        return Table(
            title="FIG7: tuples/s/thread vs dimensionality (distributed)",
            headers=headers,
            rows=rows,
        )


def run_fig7(config: Fig7Config = Fig7Config()) -> Fig7Result:
    """Sweep the (threads × dims) grid under distributed placement."""
    cost = config.cost or PCACostModel.paper_scale()
    result = Fig7Result(config=config)
    for threads in config.threads:
        result.reports[threads] = {}
        placement = Placement.default_unoptimized(
            threads, config.spec.n_nodes
        )
        for dim in config.dims:
            sim_cfg = SimConfig(
                spec=config.spec,
                placement=placement,
                cost=cost,
                dim=dim,
                n_components=config.n_components,
                sync_window=config.sync_window,
                warmup_s=config.warmup_s,
                window_s=config.window_s,
            )
            result.reports[threads][dim] = simulate_streaming_pca(sim_cfg)
    return result
