"""Experiment FIG6 — throughput vs parallel threads, single vs distributed.

Paper Fig. 6: "performance of the distributed Streaming PCA system
processing tuples with 250 dimensions for 1–30 instances running in
parallel", single-node placement vs distributed placement on the 10-node
testbed, with ``N = 5000`` and the 0.5 s sync throttle.

Reproduced shapes (simulator; see DESIGN.md substitution table):

* distributed throughput rises with threads, peaks near 2 threads/node
  (20 on 10 nodes) and *degrades* at 30 (interconnect saturation);
* single-node placement saturates at the core count and stays flat;
* at 1–2 threads single-node beats distributed (network overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.app_model import SimConfig, SimReport, simulate_streaming_pca
from ..cluster.costmodel import PCACostModel
from ..cluster.placement import Placement
from ..cluster.topology import PAPER_TESTBED, ClusterSpec
from .common import Table

__all__ = ["Fig6Config", "Fig6Result", "run_fig6"]

#: The thread counts sampled along the x-axis of the paper's plot.
DEFAULT_THREADS = (1, 2, 5, 10, 15, 20, 25, 30)


@dataclass(frozen=True)
class Fig6Config:
    """Simulation knobs for the thread-scaling experiment."""

    spec: ClusterSpec = PAPER_TESTBED
    dim: int = 250
    n_components: int = 8
    sync_window: int = 5000  # the paper's N
    threads: tuple[int, ...] = DEFAULT_THREADS
    warmup_s: float = 0.3
    window_s: float = 1.0
    cost: PCACostModel | None = None  # default: paper_scale()


@dataclass
class Fig6Result:
    """Throughput curves for both placements."""

    config: Fig6Config
    threads: list[int] = field(default_factory=list)
    single: list[SimReport] = field(default_factory=list)
    distributed: list[SimReport] = field(default_factory=list)

    def table(self) -> Table:
        """The two Fig. 6 series as a table."""
        rows = [
            [t, round(s.throughput), round(d.throughput),
             round(d.splitter_nic_utilization, 2)]
            for t, s, d in zip(self.threads, self.single, self.distributed)
        ]
        return Table(
            title=(
                f"FIG6: tuples/s vs parallel threads (d={self.config.dim}, "
                f"N={self.config.sync_window}, "
                f"{self.config.spec.n_nodes}x{self.config.spec.cores_per_node}-core nodes)"
            ),
            headers=["threads", "single", "distributed", "nic util"],
            rows=rows,
        )

    def distributed_peak(self) -> tuple[int, float]:
        """(threads, throughput) at the distributed maximum."""
        best = max(
            zip(self.threads, self.distributed), key=lambda p: p[1].throughput
        )
        return best[0], best[1].throughput


def run_fig6(config: Fig6Config = Fig6Config()) -> Fig6Result:
    """Sweep thread counts under both placements."""
    cost = config.cost or PCACostModel.paper_scale()
    result = Fig6Result(config=config)
    for threads in config.threads:
        result.threads.append(threads)
        for mode in ("single", "distributed"):
            placement = (
                Placement.single_node(threads)
                if mode == "single"
                else Placement.default_unoptimized(
                    threads, config.spec.n_nodes
                )
            )
            sim_cfg = SimConfig(
                spec=config.spec,
                placement=placement,
                cost=cost,
                dim=config.dim,
                n_components=config.n_components,
                sync_window=config.sync_window,
                warmup_s=config.warmup_s,
                window_s=config.window_s,
            )
            report = simulate_streaming_pca(sim_cfg)
            if mode == "single":
                result.single.append(report)
            else:
                result.distributed.append(report)
    return result
