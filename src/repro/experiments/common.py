"""Shared experiment scaffolding: result rows and plain-text tables.

Every experiment module returns structured results that can be (a)
asserted on by tests, (b) timed by the benchmark harness, and (c)
rendered as the text tables recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

__all__ = ["Table", "format_table"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """Render an aligned plain-text table (monospace, right-aligned)."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(v) for v in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0 or 1e-3 <= abs(v) < 1e6:
            return f"{v:.4g}"
        return f"{v:.3e}"
    return str(v)


@dataclass
class Table:
    """A titled table of experiment output rows."""

    title: str
    headers: list[str]
    rows: list[list[Any]]

    def render(self) -> str:
        """Title + aligned table as text."""
        return f"{self.title}\n{format_table(self.headers, self.rows)}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
