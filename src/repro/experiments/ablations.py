"""Ablation experiments for the design choices DESIGN.md calls out.

* ABL-α — the forgetting factor (§II-B): on a drifting subspace, α = 1
  (infinite memory) cannot track; small α tracks but is noisy; there is a
  sweet spot.  ``run_alpha_ablation`` sweeps it.
* ABL-GAPS — higher-order residual correction (§II-D): without the
  ``p+q`` correction, gap-filled spectra get inflated weights;
  ``run_gap_ablation`` measures the inflation with and without it.
* ABL-TOPO — sync topologies (§III-B): ring vs broadcast vs group vs
  p2p trade message volume against cross-engine consistency;
  ``run_sync_strategies`` measures both.
* ABL-GATE — the 1.5·N data-driven gate (§II-C): ``run_gate_ablation``
  sweeps the factor, showing sync volume vs accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.metrics import largest_principal_angle
from ..core.robust import RobustIncrementalPCA
from ..data.gaussian import DriftingSubspaceModel, PlantedSubspaceModel
from ..data.spectra import GalaxySpectrumModel, WavelengthGrid
from ..data.streams import VectorStream
from ..core.normalize import NormalizationError, unit_mean_flux
from ..parallel.runner import ParallelStreamingPCA
from .common import Table

__all__ = [
    "AlphaAblationResult",
    "run_alpha_ablation",
    "GapAblationResult",
    "run_gap_ablation",
    "OrderAblationResult",
    "run_order_ablation",
    "SyncStrategyResult",
    "run_sync_strategies",
    "GateAblationResult",
    "run_gate_ablation",
]


# ----------------------------------------------------------------------
# ABL-α
# ----------------------------------------------------------------------


@dataclass
class AlphaAblationResult:
    """Tracking error on a drifting subspace per forgetting factor."""

    alphas: list[float]
    tracking_angles: list[float]
    n_observations: int

    def table(self) -> Table:
        return Table(
            title=(
                "ABL-α: final angle to the *current* true subspace on a "
                f"drifting stream ({self.n_observations} obs)"
            ),
            headers=["alpha", "effective window", "tracking angle (rad)"],
            rows=[
                [a, "inf" if a >= 1.0 else round(1 / (1 - a)), round(t, 4)]
                for a, t in zip(self.alphas, self.tracking_angles)
            ],
        )

    def best_alpha(self) -> float:
        """The α with the lowest tracking error."""
        return self.alphas[int(np.argmin(self.tracking_angles))]


def run_alpha_ablation(
    alphas: tuple[float, ...] = (0.9, 0.99, 0.995, 0.999, 0.9999, 1.0),
    *,
    dim: int = 60,
    n_observations: int = 8000,
    rotation_rate: float = 2e-4,
    seed: int = 5,
) -> AlphaAblationResult:
    """Sweep α on a slowly rotating planted subspace."""
    result = AlphaAblationResult(
        alphas=list(alphas), tracking_angles=[], n_observations=n_observations
    )
    for alpha in alphas:
        model = DriftingSubspaceModel(
            dim=dim, rotation_rate=rotation_rate, seed=seed
        )
        rng = np.random.default_rng(seed + 1)
        est = RobustIncrementalPCA(model.rank, alpha=alpha)
        for x in model.stream(n_observations, rng):
            est.update(x)
        truth_now = model.basis_at(n_observations)
        result.tracking_angles.append(
            largest_principal_angle(
                est.state.basis[:, : model.rank], truth_now
            )
        )
    return result


# ----------------------------------------------------------------------
# ABL-GAPS
# ----------------------------------------------------------------------


@dataclass
class GapAblationResult:
    """Weight inflation of gappy spectra per residual-estimation mode."""

    modes: list[str] = field(default_factory=list)
    inflation: list[float] = field(default_factory=list)
    mean_angle: list[float] = field(default_factory=list)

    def table(self) -> Table:
        return Table(
            title=(
                "ABL-GAPS: robust-weight inflation of gap-filled spectra "
                "(mean weight gappy / mean weight complete; 1.0 is ideal)"
            ),
            headers=["gap residual mode", "weight inflation",
                     "mean angle to truth (rad)"],
            rows=[
                [m, round(i, 3), round(a, 4)]
                for m, i, a in zip(self.modes, self.inflation, self.mean_angle)
            ],
        )

    def inflation_of(self, mode: str) -> float:
        """Weight inflation for one mode."""
        return self.inflation[self.modes.index(mode)]


def run_gap_ablation(
    modes: tuple[str, ...] = (
        "observed", "higher-order", "extrapolate", "hybrid"
    ),
    *,
    n_bins: int = 300,
    n_spectra: int = 2500,
    dropout_rate: float = 0.6,
    dropout_width: float = 0.3,
    n_components: int = 2,
    extra_components: int = 3,
    seed: int = 13,
) -> GapAblationResult:
    """Stream heavily gappy spectra under each residual-estimation mode.

    ``n_components`` is deliberately *smaller* than the spectral
    manifold's rank so genuine structure lives in the higher-order
    components — the regime the paper's §II-D correction targets.
    """
    model = GalaxySpectrumModel(
        grid=WavelengthGrid(n_bins=n_bins),
        dropout_rate=dropout_rate,
        dropout_width=dropout_width,
        z_max=0.15,
        seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    sample = model.sample(n_spectra, rng)
    _, truth_basis, _ = model.ground_truth_basis(n_components)

    result = GapAblationResult()
    for mode in modes:
        est = RobustIncrementalPCA(
            n_components,
            extra_components=extra_components,
            alpha=0.9995,
            init_size=32,
            gap_residual_mode=mode,
        )
        gappy_w, complete_w = [], []
        for flux in sample.flux:
            try:
                x = unit_mean_flux(flux)
            except NormalizationError:
                continue
            res = est.update(x)
            if res is None:
                continue
            (gappy_w if res.n_filled else complete_w).append(res.weight)
        inflation = (
            float(np.mean(gappy_w)) / float(np.mean(complete_w))
            if gappy_w and complete_w
            else float("nan")
        )
        from ..core.metrics import principal_angles

        angles = principal_angles(
            est.state.basis[:, :n_components], truth_basis
        )
        result.modes.append(mode)
        result.inflation.append(inflation)
        result.mean_angle.append(float(angles.mean()) if angles.size else 0.0)
    return result


# ----------------------------------------------------------------------
# ABL-TOPO
# ----------------------------------------------------------------------


@dataclass
class SyncStrategyResult:
    """Consistency vs message volume per sync topology."""

    strategies: list[str] = field(default_factory=list)
    max_pairwise_angle: list[float] = field(default_factory=list)
    merge_messages: list[int] = field(default_factory=list)
    global_angle: list[float] = field(default_factory=list)

    def table(self) -> Table:
        return Table(
            title="ABL-TOPO: sync topology trade-off (4 engines)",
            headers=[
                "strategy",
                "merge msgs",
                "max pairwise engine angle",
                "global angle to truth",
            ],
            rows=[
                [s, m, round(a, 4), round(g, 4)]
                for s, m, a, g in zip(
                    self.strategies,
                    self.merge_messages,
                    self.max_pairwise_angle,
                    self.global_angle,
                )
            ],
        )


def run_sync_strategies(
    strategies: tuple[str, ...] = ("ring", "broadcast", "group", "p2p"),
    *,
    dim: int = 60,
    n_observations: int = 8000,
    n_engines: int = 4,
    alpha: float = 0.995,
    seed: int = 3,
) -> SyncStrategyResult:
    """Run the parallel app under each topology on the same stream."""
    model = PlantedSubspaceModel(
        dim=dim, signal_variances=(25.0, 16.0, 9.0), noise_std=0.4, seed=seed
    )
    rng = np.random.default_rng(seed + 1)
    x = model.sample(n_observations, rng)

    result = SyncStrategyResult()
    for strategy in strategies:
        runner = ParallelStreamingPCA(
            3,
            n_engines=n_engines,
            alpha=alpha,
            strategy=strategy,
            split_seed=seed,
            collect_diagnostics=False,
        )
        res = runner.run(VectorStream.from_array(x))
        states = list(res.engine_states.values())
        max_angle = 0.0
        for i in range(len(states)):
            for j in range(i + 1, len(states)):
                max_angle = max(
                    max_angle,
                    largest_principal_angle(states[i].basis, states[j].basis),
                )
        result.strategies.append(strategy)
        result.max_pairwise_angle.append(max_angle)
        result.merge_messages.append(res.sync_stats.n_merge_commands)
        result.global_angle.append(
            largest_principal_angle(res.global_state.basis, model.basis)
        )
    return result


# ----------------------------------------------------------------------
# ABL-GATE
# ----------------------------------------------------------------------


@dataclass
class GateAblationResult:
    """Sync volume vs accuracy per gate factor."""

    factors: list[float] = field(default_factory=list)
    merge_messages: list[int] = field(default_factory=list)
    global_angle: list[float] = field(default_factory=list)

    def table(self) -> Table:
        return Table(
            title="ABL-GATE: data-driven sync gate factor (paper: 1.5)",
            headers=["gate factor", "merge msgs", "global angle to truth"],
            rows=[
                [f, m, round(g, 4)]
                for f, m, g in zip(
                    self.factors, self.merge_messages, self.global_angle
                )
            ],
        )


def run_gate_ablation(
    factors: tuple[float, ...] = (0.5, 1.0, 1.5, 3.0, 10.0),
    *,
    dim: int = 60,
    n_observations: int = 8000,
    n_engines: int = 4,
    alpha: float = 0.995,
    seed: int = 9,
) -> GateAblationResult:
    """Sweep the sync gate factor on a fixed stream."""
    model = PlantedSubspaceModel(
        dim=dim, signal_variances=(25.0, 16.0, 9.0), noise_std=0.4, seed=seed
    )
    rng = np.random.default_rng(seed + 1)
    x = model.sample(n_observations, rng)
    result = GateAblationResult()
    for factor in factors:
        runner = ParallelStreamingPCA(
            3,
            n_engines=n_engines,
            alpha=alpha,
            strategy="ring",
            sync_gate_factor=factor,
            split_seed=seed,
            collect_diagnostics=False,
        )
        res = runner.run(VectorStream.from_array(x))
        result.factors.append(factor)
        result.merge_messages.append(res.sync_stats.n_merge_commands)
        result.global_angle.append(
            largest_principal_angle(res.global_state.basis, model.basis)
        )
    return result


# ----------------------------------------------------------------------
# ABL-ORDER
# ----------------------------------------------------------------------


@dataclass
class OrderAblationResult:
    """Effect of stream ordering on the finite-memory solution."""

    orders: list[str] = field(default_factory=list)
    final_angle: list[float] = field(default_factory=list)

    def table(self) -> Table:
        return Table(
            title=(
                "ABL-ORDER: stream ordering with finite memory "
                "(§II-B: systematic order is disadvantageous)"
            ),
            headers=["order", "final angle to truth (rad)"],
            rows=[
                [o, round(a, 4)]
                for o, a in zip(self.orders, self.final_angle)
            ],
        )

    def angle_of(self, order: str) -> float:
        """Final angle for one ordering."""
        return self.final_angle[self.orders.index(order)]


def run_order_ablation(
    *,
    n_bins: int = 200,
    n_spectra: int = 4000,
    alpha: float = 0.998,
    n_components: int = 2,
    seed: int = 17,
) -> OrderAblationResult:
    """Random vs systematically sorted stream order on galaxy spectra.

    With a finite window (α < 1) a stream sorted by galaxy type makes the
    estimator forget early types by the time late ones arrive; the same
    spectra in random order converge fine.  This is the paper's §II-B
    advice — "they should be randomized for best results" — quantified.
    """
    model = GalaxySpectrumModel(
        grid=WavelengthGrid(n_bins=n_bins),
        dropout_rate=0.0,
        outlier_rate=0.0,
        z_max=0.05,
        noise_std=0.03,
        seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    sample = model.sample(n_spectra, rng)
    flux = np.vstack([unit_mean_flux(f) for f in sample.flux])
    _, truth, _ = model.ground_truth_basis(n_components)

    # Systematic order: sorted by dominant archetype then by its weight —
    # the kind of ordering a survey archive naturally has.
    dominant = np.argmax(sample.mixture, axis=1)
    strength = np.max(sample.mixture, axis=1)
    systematic = np.lexsort((strength, dominant))
    random_order = np.random.default_rng(seed + 2).permutation(n_spectra)

    result = OrderAblationResult()
    for name, order in (("random", random_order), ("sorted", systematic)):
        est = RobustIncrementalPCA(
            n_components, alpha=alpha, init_size=32
        )
        for idx in order:
            est.update(flux[idx])
        result.orders.append(name)
        result.final_angle.append(
            largest_principal_angle(
                est.state.basis[:, :n_components], truth
            )
        )
    return result
