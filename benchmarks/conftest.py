"""Benchmark harness configuration.

Each ``bench_*.py`` regenerates one paper figure (or ablation) and prints
its data table; run with::

    pytest benchmarks/ --benchmark-only -s

The printed tables are the artifacts recorded in EXPERIMENTS.md.
"""

collect_ignore_glob: list[str] = []


def pytest_configure(config):
    # Benchmarks are long-running by design; make sure accidental plain
    # `pytest benchmarks/` runs still work but measure only once.
    config.option.benchmark_min_rounds = getattr(
        config.option, "benchmark_min_rounds", 1
    )
