"""Benchmark harness configuration.

Each ``bench_*.py`` regenerates one paper figure (or ablation) and prints
its data table; run with::

    pytest benchmarks/ --benchmark-only -s

The printed tables are the artifacts recorded in EXPERIMENTS.md.
"""

import os

collect_ignore_glob: list[str] = []


def bench_environment() -> dict:
    """Execution-environment stamp merged into every BENCH_*.json payload.

    ``check_regression.py`` gates absolute speedup floors on ``n_cpus``
    (a "process beats thread 2x" floor is meaningless on a 1-core box),
    and a reviewer reading a committed baseline needs to know whether
    BLAS was allowed to use those cores.  ``blas_threads`` is taken from
    the conventional env caps — ``None`` means "unlimited/default", not
    "one".
    """
    blas_threads = None
    for var in (
        "OMP_NUM_THREADS",
        "OPENBLAS_NUM_THREADS",
        "MKL_NUM_THREADS",
    ):
        value = os.environ.get(var)
        if value:
            try:
                blas_threads = int(value)
            except ValueError:
                continue
            break
    return {
        "n_cpus": os.cpu_count() or 1,
        "blas_threads": blas_threads,
    }


def pytest_configure(config):
    # Benchmarks are long-running by design; make sure accidental plain
    # `pytest benchmarks/` runs still work but measure only once.
    config.option.benchmark_min_rounds = getattr(
        config.option, "benchmark_min_rounds", 1
    )
