"""Benchmark FIG7 — per-thread throughput vs data dimensionality.

Regenerates paper Fig. 7: tuples/second/thread for 1, 5, 10 and 20
distributed PCA engines as the stream dimensionality sweeps 250–2000.
"""

from repro.experiments import Fig7Config, run_fig7


def test_fig7_dimension_scaling(benchmark):
    config = Fig7Config()
    result = benchmark.pedantic(
        run_fig7, args=(config,), rounds=1, iterations=1
    )
    print()
    print(result.table().render())

    d_lo, d_hi = config.dims[0], config.dims[-1]

    # Per-thread rate falls with dimensionality (O(d·p²) update)...
    for t in config.threads:
        assert result.per_thread(t, d_hi) < result.per_thread(t, d_lo) / 4
    # 5 and 10 threads scale well: per-thread within 5% of each other.
    for d in config.dims:
        r5, r10 = result.per_thread(5, d), result.per_thread(10, d)
        assert abs(r5 - r10) / r10 < 0.05
    # 20 threads saturate the interconnect at small d...
    assert result.per_thread(20, d_lo) < 0.85 * result.per_thread(10, d_lo)
    # ...but rejoin the compute-bound line at large d.
    assert result.per_thread(20, d_hi) > 0.95 * result.per_thread(10, d_hi)
    # Single distributed thread underperforms at small d (default
    # unoptimized placement: relay hop + connector latency).
    assert result.per_thread(1, d_lo) < 0.95 * result.per_thread(10, d_lo)
