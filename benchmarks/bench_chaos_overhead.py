"""Fault-free overhead of the robustness hooks.

The graceful-degradation guards — quarantine validation, the (closed)
shed valve, membership tracking with heartbeats — sit on the hot path
of every healthy run, so their cost when *nothing* is wrong is the
price of being ready for chaos.  This bench runs the identical
fault-free workload with the hooks off and on, interleaved in pairs,
and reports the total-time ratio ``plain / hooked`` as ``speedup``:
1.0 means free.

The guards ride the source's emit loop
(``repro.streams.sources.GuardedVectorSource``), so the hooked graph
has the *same topology* — same operators, PE threads, and queue hops —
as the plain one; what is being priced is pure guard work (validation
~0.5 µs/row, token bucket ~0.4 µs/row, heartbeat control tuples),
~2-3 % of wall time at d=512.  That meets the ≤ 5 % budget with
room to spare; the committed ``BENCH_chaos_overhead.json`` baseline
records it.  When the guards were separate graph stages each cost a
dispatch hop per tuple and the threaded runtime paid ~8-10 % even
under chain fusion — that architectural regression is what the CI
floor (``check_regression.py --min-speedup chaos_hooks_*:0.90
--min-cpus 1``) exists to catch.  The floor sits below the 0.95 the
budget implies because single measurements on shared runners swing
±10 %; the interleaved-pair total-time ratio averages that down, and a
reintroduced per-tuple stage (~0.85) still trips it.

Run directly (``python benchmarks/bench_chaos_overhead.py [--quick]``)
to produce ``BENCH_chaos_overhead.json``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:  # allow `python benchmarks/bench_chaos_overhead.py` without PYTHONPATH
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.robust import RobustIncrementalPCA
from repro.data import PlantedSubspaceModel, VectorStream
from repro.parallel.app import build_parallel_pca_graph
from repro.streams import SynchronousEngine, ThreadedEngine

HOOKS = dict(
    quarantine=True,
    # A generous rate keeps the valve closed: we are pricing the
    # token-bucket bookkeeping, not the shedding.
    shed_max_rate_hz=1e9,
    stale_after=24,
    quorum=2,
    heartbeat_every=50,
)


def _run_once(x, runtime: str, n_engines: int, hooks: bool) -> float:
    app = build_parallel_pca_graph(
        VectorStream.from_array(x),
        n_engines,
        lambda i: RobustIncrementalPCA(4, alpha=0.999),
        split_seed=1,
        batch_size=64,
        collect_diagnostics=False,
        **(HOOKS if hooks else {}),
    )
    t0 = time.perf_counter()
    if runtime == "threaded":
        ThreadedEngine(app.graph).run(timeout_s=600)
    else:
        SynchronousEngine(app.graph).run()
    wall = time.perf_counter() - t0
    if hooks:
        assert app.dlq.total == 0, "fault-free run must quarantine nothing"
        assert app.n_shed == 0, "fault-free run must shed nothing"
    return wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fault-free overhead of quarantine/valve/membership"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sizes for CI smoke runs",
    )
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_chaos_overhead.json",
    )
    args = parser.parse_args(argv)

    if args.quick:
        n_rows, dim, repeats = 6000, 512, 3
    else:
        n_rows, dim, repeats = 12000, 512, 7

    n_engines = 4
    from conftest import bench_environment  # benchmarks/ is sys.path[0]

    model = PlantedSubspaceModel(dim=dim, seed=4)
    x = model.sample(n_rows, np.random.default_rng(1))
    env = bench_environment()
    n_cpus = env["n_cpus"]

    results = []
    for runtime in ("synchronous", "threaded"):
        # One unmeasured pair warms caches and the thread machinery.
        _run_once(x, runtime, n_engines, hooks=False)
        _run_once(x, runtime, n_engines, hooks=True)
        # Interleaved pairs so machine drift hits both sides alike,
        # alternating which side goes first so a monotonic ramp
        # (frequency scaling, background load) cannot systematically
        # favour one; the total-time ratio then averages per-run
        # scheduler noise (±10% on a busy box) instead of amplifying
        # it the way min-of-N ratios do when the true difference is ~1%.
        plain, hooked = [], []
        for i in range(repeats):
            for hooks in ((False, True) if i % 2 == 0 else (True, False)):
                t = _run_once(x, runtime, n_engines, hooks=hooks)
                (hooked if hooks else plain).append(t)
        r = {
            "name": f"chaos_hooks_{runtime}",
            "runtime": runtime,
            "dim": dim,
            "n_rows": n_rows,
            "plain_rows_per_s": n_rows / min(plain),
            "hooked_rows_per_s": n_rows / min(hooked),
            "speedup": sum(plain) / sum(hooked),
        }
        results.append(r)
        print(
            f"{r['name']:24s}  plain {r['plain_rows_per_s']:8.0f} rows/s"
            f"  hooked {r['hooked_rows_per_s']:8.0f} rows/s"
            f"  ratio {r['speedup']:5.3f}x"
            f"  (overhead {100 * (1 - r['speedup']):.1f}%)",
            flush=True,
        )

    payload = {
        "benchmark": "chaos_overhead",
        "quick": args.quick,
        **env,
        "config": {
            "n_components": 4,
            "n_engines": n_engines,
            "dim": dim,
            "n_rows": n_rows,
            "batch_size": 64,
            "alpha": 0.999,
            "repeats": repeats,
            "hooks": {k: v for k, v in HOOKS.items()},
        },
        "results": results,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out} (n_cpus={n_cpus})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
