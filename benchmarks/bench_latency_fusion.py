"""Benchmark LAT — operator fusion vs per-tuple latency.

Section III-D: passing tuples in local memory instead of over the
network "gives significant decrease of latency"; extra hops from
unoptimized placement add "unnecessary packet latency".
"""

from repro.experiments import run_latency


def test_fusion_latency(benchmark):
    result = benchmark.pedantic(run_latency, rounds=1, iterations=1)
    print()
    print(result.table().render())

    fused = result.p50_of("fused")
    dist = result.p50_of("distributed")
    relay = result.p50_of("relay")
    # Fusion is the latency winner; each extra hop costs more.
    assert fused < dist < relay
    # The network hop is a significant fraction of the total (the
    # paper's motivation for fusing in the first place).
    assert dist > 1.3 * fused
