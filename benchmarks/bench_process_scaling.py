"""Process-vs-thread scaling of the parallel PCA application.

The paper's Fig. 6 scales PEs across real CPUs; our ThreadedEngine
cannot (one GIL), so this bench measures what the ProcessEngine buys at
a CPU-bound operating point — robust PCA at d >= 1000, micro-batched —
for growing engine fleets.  Speedup here is **process over thread at
equal engine count**: both share the machine and BLAS, so the ratio
cancels hardware out.

The payload records ``n_cpus``: on a single-core runner the process
runtime *cannot* beat the threaded one (expect ~1x minus transport
overhead), and ``check_regression.py --min-speedup`` skips its absolute
gate accordingly.  Transport counters from an instrumented run verify
the zero-copy hot path (``blocks_queue == 0``).

Run directly (``python benchmarks/bench_process_scaling.py [--quick]``)
to produce ``BENCH_process_scaling.json``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:  # allow `python benchmarks/bench_process_scaling.py` without PYTHONPATH
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import PlantedSubspaceModel, VectorStream
from repro.parallel import ParallelStreamingPCA
from repro.streams import ProcessEngine


def _runner(n_engines: int, runtime: str, dim: int, batch_size: int):
    return ParallelStreamingPCA(
        5,
        n_engines=n_engines,
        alpha=0.999,
        runtime=runtime,
        batch_size=batch_size,
        collect_diagnostics=False,
        timeout_s=600.0,
    )


def _time_threaded(x, n_engines, batch_size) -> float:
    t0 = time.perf_counter()
    _runner(n_engines, "threaded", x.shape[1], batch_size).run(
        VectorStream.from_array(x)
    )
    return time.perf_counter() - t0


def _time_process(x, n_engines, batch_size) -> tuple[float, dict]:
    """One process-runtime run; returns (wall_s, transport_stats)."""
    runner = _runner(n_engines, "process", x.shape[1], batch_size)
    app = runner.build(VectorStream.from_array(x))
    main_ops = {app.split.name, app.controller.name}
    if app.batcher is not None:
        main_ops.add(app.batcher.name)
    engine = ProcessEngine(
        app.graph,
        main_ops=main_ops,
        ring_slot_rows=max(batch_size, 64),
    )
    t0 = time.perf_counter()
    engine.run(timeout_s=600.0)
    return time.perf_counter() - t0, dict(engine.transport_stats)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Thread vs process runtime scaling for parallel PCA"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sizes for CI smoke runs",
    )
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_process_scaling.json",
    )
    args = parser.parse_args(argv)

    if args.quick:
        n_rows, dim, batch_size, repeats = 2000, 512, 64, 1
        fleets = (1, 2, 4)
    else:
        n_rows, dim, batch_size, repeats = 4000, 1000, 64, 2
        fleets = (1, 2, 4, 8)

    from conftest import bench_environment  # benchmarks/ is sys.path[0]

    model = PlantedSubspaceModel(dim=dim, seed=4)
    x = model.sample(n_rows, np.random.default_rng(1))
    env = bench_environment()
    n_cpus = env["n_cpus"]

    results = []
    transport = None
    for n_engines in fleets:
        t_thread = min(
            _time_threaded(x, n_engines, batch_size)
            for _ in range(repeats)
        )
        best = None
        for _ in range(repeats):
            wall, stats = _time_process(x, n_engines, batch_size)
            if best is None or wall < best:
                best = wall
                transport = stats
        r = {
            "name": f"process_vs_thread_e{n_engines}",
            "n_engines": n_engines,
            "dim": dim,
            "n_rows": n_rows,
            "thread_rows_per_s": n_rows / t_thread,
            "process_rows_per_s": n_rows / best,
            "speedup": t_thread / best,
        }
        results.append(r)
        print(
            f"{r['name']:24s}  thread {r['thread_rows_per_s']:8.0f} rows/s"
            f"  process {r['process_rows_per_s']:8.0f} rows/s"
            f"  speedup {r['speedup']:5.2f}x",
            flush=True,
        )

    if transport is not None and transport.get("blocks_queue", 0):
        print(
            f"warning: {transport['blocks_queue']} block(s) fell back to "
            f"the pickled queue path — check ring_slot_rows vs batch_size"
        )

    payload = {
        "benchmark": "process_scaling",
        "quick": args.quick,
        **env,
        "config": {
            "n_components": 5,
            "dim": dim,
            "n_rows": n_rows,
            "batch_size": batch_size,
            "alpha": 0.999,
            "repeats": repeats,
        },
        "transport": transport,
        "results": results,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out} (n_cpus={n_cpus})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
