"""Benchmark ABL-ORDER — stream ordering under finite memory.

Section II-B: "due to the finite memory of the recursion, it is clearly
disadvantageous to put the spectra on the stream in a systematic order;
instead they should be randomized for best results."  This bench streams
the same galaxy spectra in random vs archive-sorted order and measures
the final subspace error.
"""

from repro.experiments import run_order_ablation


def test_order_ablation(benchmark):
    result = benchmark.pedantic(run_order_ablation, rounds=1, iterations=1)
    print()
    print(result.table().render())

    # Randomized order beats the systematic (sorted-by-type) order.
    assert result.angle_of("random") < result.angle_of("sorted")
