"""Benchmark the serving layer: ingest throughput, query latency, and
read/write isolation.

The serving layer's core promise is that *queries never touch the model
lock*: reads are answered from immutable copy-on-publish snapshots, so
a tenant hammering ingest cannot slow another client's ``transform``.
That promise is priced here as a machine-portable ratio:

* ``serving_query_isolation`` — median query latency on an idle service
  divided by the median while the tenant's *model lock is held* by a
  stalled writer.  Snapshot readers never take that lock, so the ratio
  sits near 1.0; a design that routed reads through the model would
  block for the whole hold and collapse the ratio toward 0.  (Latency
  under an N-client ingest storm is also recorded —
  ``serving_query_under_load`` — but as information only: on one CPU it
  prices GIL/event-loop contention, not lock discipline.)
* ``serving_ingest_scaling`` — admitted rows/s with N concurrent HTTP
  clients over rows/s with one client.  On a single CPU this measures
  how much of the HTTP + admission overhead overlaps (socket I/O
  releases the GIL); it is NOT a parallel-compute claim.

Absolute rows/s and latency quantiles are recorded for the artifact but
are machine-specific; only the ratios gate CI
(``check_regression.py BENCH_serving.json --baseline ... --min-speedup
serving_query_isolation:...``).

Run directly (``python benchmarks/bench_serving_throughput.py
[--quick] [--out BENCH_serving.json]``) to produce the committed
baseline.  The committed payload is an honest 1-CPU run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path

import numpy as np

try:  # allow running without PYTHONPATH=src
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serving import (
    PCAService,
    ServingClient,
    ServingConfig,
    ServingServer,
    TenantSpec,
)

SEED = 20120513
DIM = 32
BLOCK_ROWS = 64


def _rows(n: int, seed: int) -> list:
    plant = np.random.default_rng(SEED).normal(size=(4, DIM))
    rng = np.random.default_rng(seed)
    coeff = rng.normal(size=(n, 4)) * np.array([6.0, 4.0, 3.0, 2.0])
    x = coeff @ plant + 0.1 * rng.normal(size=(n, DIM))
    return x.tolist()


def _percentiles(samples_s: list[float]) -> dict[str, float]:
    if not samples_s:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    arr = np.sort(np.asarray(samples_s)) * 1e3
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
        "p99_ms": float(np.percentile(arr, 99)),
    }


def _query_latencies(host, port, n_queries: int, payload) -> list[float]:
    out: list[float] = []
    with ServingClient(host, port) as c:
        for _ in range(n_queries):
            t0 = time.perf_counter()
            r = c.transform("bench", payload)
            dt = time.perf_counter() - t0
            if r.code != 200:
                raise RuntimeError(f"query failed: {r.code} {r.body}")
            out.append(dt)
    return out


def _ingest_run(
    host, port, n_clients: int, duration_s: float
) -> tuple[int, float]:
    """Admitted rows and elapsed seconds for an N-client ingest storm."""
    stop = threading.Event()
    accepted = [0] * n_clients
    errors: list[str] = []

    def loop(cid: int) -> None:
        rng = np.random.default_rng(SEED + 1000 + cid)
        try:
            with ServingClient(host, port) as c:
                while not stop.is_set():
                    rows = _rows(
                        BLOCK_ROWS, int(rng.integers(0, 2**31))
                    )
                    r = c.ingest("bench", rows)
                    if r.code == 202:
                        accepted[cid] += BLOCK_ROWS
                    elif r.code == 429:
                        time.sleep(min(r.retry_after_s or 0.01, 0.05))
                    else:
                        errors.append(f"client {cid}: {r.code}")
                        return
        except Exception as exc:  # noqa: BLE001
            errors.append(f"client {cid}: {exc!r}")

    threads = [
        threading.Thread(target=loop, args=(i,), daemon=True)
        for i in range(n_clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    time.sleep(duration_s)
    stop.set()
    for t in threads:
        t.join(timeout=30.0)
    elapsed = time.perf_counter() - t0
    if errors:
        raise RuntimeError(f"ingest clients failed: {errors[:3]}")
    return sum(accepted), elapsed


def run_bench(quick: bool) -> dict:
    n_clients = 4 if quick else 8
    duration_s = 2.0 if quick else 6.0
    n_queries = 150 if quick else 600

    svc = PCAService(ServingConfig(n_lanes=2, elastic=False))
    svc.add_tenant(TenantSpec(
        "bench", n_components=4, init_size=20,
        publish_every_blocks=4, queue_capacity_rows=200_000,
        max_block_rows=512,
    ))
    srv = ServingServer(svc, port=0)
    srv.start()
    try:
        # Warm the model past initialization so a snapshot exists.
        with ServingClient(srv.host, srv.port) as c:
            for i in range(8):
                r = c.ingest("bench", _rows(BLOCK_ROWS, i))
                assert r.code == 202, r.body
            deadline = time.perf_counter() + 30.0
            while time.perf_counter() < deadline:
                if c.snapshot("bench").code == 200:
                    break
                time.sleep(0.01)
            else:
                raise RuntimeError("no snapshot after warmup")

        query_payload = _rows(4, seed=7)

        # 1. idle query latency (nothing else talking to the service)
        idle = _query_latencies(
            srv.host, srv.port, n_queries, query_payload
        )

        # 2. single-client ingest throughput (the scaling denominator)
        rows_1c, elapsed_1c = _ingest_run(
            srv.host, srv.port, 1, duration_s
        )

        # 3. N-client ingest throughput
        rows_nc, elapsed_nc = _ingest_run(
            srv.host, srv.port, n_clients, duration_s
        )

        # 4. query latency while the model lock is held by a stalled
        # writer — the direct price of the copy-on-publish contract
        model_lock = svc.tenant("bench").model.lock
        model_lock.acquire()
        try:
            lock_held = _query_latencies(
                srv.host, srv.port, n_queries, query_payload
            )
        finally:
            model_lock.release()

        # 5. query latency while N ingest clients saturate the service
        stop = threading.Event()
        storm_err: list[str] = []

        def storm(cid: int) -> None:
            rng = np.random.default_rng(SEED + 5000 + cid)
            try:
                with ServingClient(srv.host, srv.port) as c:
                    while not stop.is_set():
                        r = c.ingest("bench", _rows(
                            BLOCK_ROWS, int(rng.integers(0, 2**31))
                        ))
                        if r.code not in (202, 429):
                            storm_err.append(str(r.code))
                            return
            except Exception as exc:  # noqa: BLE001
                storm_err.append(repr(exc))

        storm_threads = [
            threading.Thread(target=storm, args=(i,), daemon=True)
            for i in range(n_clients)
        ]
        for t in storm_threads:
            t.start()
        try:
            time.sleep(0.2)  # let the storm actually build
            loaded = _query_latencies(
                srv.host, srv.port, n_queries, query_payload
            )
        finally:
            stop.set()
            for t in storm_threads:
                t.join(timeout=30.0)
        if storm_err:
            raise RuntimeError(f"storm clients failed: {storm_err[:3]}")

        cache = svc.cache.stats()
        svc.pool.drain(60.0)
    finally:
        srv.stop()

    tput_1c = rows_1c / elapsed_1c
    tput_nc = rows_nc / elapsed_nc
    idle_q = _percentiles(idle)
    loaded_q = _percentiles(loaded)
    lock_q = _percentiles(lock_held)
    # Fraction of idle query speed retained while the writer stalls;
    # clamped at 1.0 because "faster than idle" is sub-ms timer noise,
    # not a real effect, and would inflate the committed baseline.
    isolation = min(
        1.0,
        float(np.median(idle)) / float(np.median(lock_held))
        if lock_held else 0.0,
    )

    return {
        "benchmark": "serving_throughput",
        "quick": quick,
        "n_cpus": os.cpu_count(),
        "blas_threads": os.environ.get("OMP_NUM_THREADS"),
        "config": {
            "dim": DIM,
            "block_rows": BLOCK_ROWS,
            "n_clients": n_clients,
            "duration_s": duration_s,
            "n_queries": n_queries,
            "n_lanes": 2,
        },
        "results": [
            {
                "name": "serving_ingest_1c",
                "clients": 1,
                "rows_per_s": tput_1c,
            },
            {
                "name": f"serving_ingest_{n_clients}c",
                "clients": n_clients,
                "rows_per_s": tput_nc,
            },
            {
                "name": "serving_ingest_scaling",
                "clients": n_clients,
                "rows_per_s_1c": tput_1c,
                "rows_per_s_nc": tput_nc,
                "speedup": tput_nc / tput_1c if tput_1c else 0.0,
            },
            {
                "name": "serving_query_idle",
                "clients": 1,
                **idle_q,
            },
            {
                "name": "serving_query_under_load",
                "clients": n_clients,
                **loaded_q,
            },
            {
                "name": "serving_query_lock_held",
                "clients": 1,
                **lock_q,
            },
            {
                "name": "serving_query_isolation",
                "clients": 1,
                "idle_p50_ms": idle_q["p50_ms"],
                "lock_held_p50_ms": lock_q["p50_ms"],
                "speedup": isolation,
            },
            {
                "name": "serving_cache",
                "hit_ratio": cache["hit_ratio"],
                "n_hits": cache["n_hits"],
                "n_misses": cache["n_misses"],
                "n_published": cache["n_published"],
            },
        ],
    }


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true")
    ap.add_argument("--out", default="BENCH_serving.json")
    args = ap.parse_args()

    payload = run_bench(quick=args.quick)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=1) + "\n")
    for r in payload["results"]:
        bits = [f"{k}={v:.3f}" if isinstance(v, float) else f"{k}={v}"
                for k, v in r.items() if k != "name"]
        print(f"{r['name']}: {', '.join(bits)}")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
