"""Host-count scaling of the cluster (TCP) runtime vs the simulator.

The paper's Fig. 6/7 measure streaming-PCA throughput as engines spread
over real InfoSphere nodes.  ``repro.cluster`` *predicts* that scaling
with a discrete-event model; the ClusterEngine now lets us *measure* it
on real sockets: one coordinator plus N engine-host processes on
localhost, every data block crossing a framed TCP connection.

Two ratios come out of each fleet size:

* ``speedup`` — measured throughput relative to the 1-host fleet.  This
  is the portable regression signal (both sides share the machine).
* ``sim_ratio`` — measured speedup over the simulator's predicted
  speedup for the same engine count (single-node placement: localhost
  processes share CPUs exactly like the paper's threads share a node).
  A healthy runtime keeps this near 1; a transport regression (e.g. a
  serialization hot spot) drags it down while the simulator, which
  prices only modelled costs, stays put.

The payload records ``n_cpus``: with fewer cores than hosts the measured
curve flattens for reasons the simulator does not model, so
``check_regression.py --min-speedup`` gates are armed only on real
multi-core runners.

Run directly (``python benchmarks/bench_cluster_scaling.py [--quick]``)
to produce ``BENCH_cluster_scaling.json``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:  # allow `python benchmarks/bench_cluster_scaling.py` without PYTHONPATH
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster import (
    PAPER_TESTBED,
    PCACostModel,
    Placement,
    SimConfig,
    simulate_streaming_pca,
)
from repro.data import PlantedSubspaceModel, VectorStream
from repro.parallel import ParallelStreamingPCA


def _time_cluster(x, n_hosts, batch_size) -> tuple[float, dict]:
    """One cluster-runtime run; returns (wall_s, cluster_stats)."""
    runner = ParallelStreamingPCA(
        5,
        n_engines=n_hosts,
        alpha=0.999,
        runtime="cluster",
        batch_size=batch_size,
        collect_diagnostics=False,
        timeout_s=600.0,
    )
    t0 = time.perf_counter()
    runner.run(VectorStream.from_array(x))
    wall = time.perf_counter() - t0
    return wall, dict(runner.cluster_engine.cluster_stats)


def _sim_throughput(n_engines: int, dim: int) -> float:
    """Predicted obs/s for ``n_engines`` on one node (Fig. 6 'single')."""
    report = simulate_streaming_pca(
        SimConfig(
            spec=PAPER_TESTBED,
            placement=Placement.single_node(n_engines),
            cost=PCACostModel.paper_scale(),
            dim=dim,
            n_components=5,
        )
    )
    return report.throughput


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Cluster (TCP) runtime scaling vs simulator prediction"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sizes for CI smoke runs",
    )
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_cluster_scaling.json",
    )
    args = parser.parse_args(argv)

    if args.quick:
        n_rows, dim, batch_size, repeats = 2000, 256, 64, 1
        fleets = (1, 2, 3)
    else:
        n_rows, dim, batch_size, repeats = 4000, 512, 64, 2
        fleets = (1, 2, 4)

    from conftest import bench_environment  # benchmarks/ is sys.path[0]

    model = PlantedSubspaceModel(dim=dim, seed=4)
    x = model.sample(n_rows, np.random.default_rng(1))
    env = bench_environment()
    n_cpus = env["n_cpus"]

    results = []
    transport = None
    t_one = None
    sim_one = None
    for n_hosts in fleets:
        best = None
        for _ in range(repeats):
            wall, stats = _time_cluster(x, n_hosts, batch_size)
            if best is None or wall < best:
                best = wall
                transport = stats
        sim_tp = _sim_throughput(n_hosts, dim)
        if t_one is None:
            t_one, sim_one = best, sim_tp
        speedup = t_one / best
        sim_speedup = sim_tp / sim_one
        r = {
            "name": f"cluster_hosts_{n_hosts}",
            "n_hosts": n_hosts,
            "dim": dim,
            "n_rows": n_rows,
            "rows_per_s": n_rows / best,
            "speedup": speedup,
            "sim_speedup": sim_speedup,
            "sim_ratio": speedup / sim_speedup,
        }
        results.append(r)
        print(
            f"{r['name']:18s}  {r['rows_per_s']:8.0f} rows/s"
            f"  speedup {speedup:5.2f}x"
            f"  sim predicts {sim_speedup:5.2f}x"
            f"  ratio {r['sim_ratio']:5.2f}",
            flush=True,
        )

    if transport is not None and (
        transport.get("host_deaths") or transport.get("tuples_lost")
    ):
        print(
            f"warning: degraded bench run — deaths="
            f"{transport.get('host_deaths')} "
            f"lost={transport.get('tuples_lost')}"
        )

    payload = {
        "benchmark": "cluster_scaling",
        "quick": args.quick,
        **env,
        "config": {
            "n_components": 5,
            "dim": dim,
            "n_rows": n_rows,
            "batch_size": batch_size,
            "alpha": 0.999,
            "repeats": repeats,
        },
        "transport": transport,
        "results": results,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out} (n_cpus={n_cpus})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
