"""Benchmark the stream engine itself: per-tuple framework overhead.

InfoSphere's value proposition is that the dataflow substrate adds little
cost over the math; this bench measures our substitute's overhead — the
synchronous engine's per-tuple dispatch, the threaded engine's queue hop,
and the end-to-end parallel PCA application on both runtimes.
"""

import numpy as np

from repro.data import PlantedSubspaceModel, VectorStream
from repro.parallel import ParallelStreamingPCA
from repro.streams import (
    CollectingSink,
    FusionPlan,
    Graph,
    Split,
    SynchronousEngine,
    ThreadedEngine,
    Union,
    VectorSource,
)


def _pipeline_graph(x: np.ndarray, n_ways: int = 4) -> tuple[Graph, CollectingSink]:
    g = Graph("bench")
    src = g.add(VectorSource("src", VectorStream.from_array(x)))
    split = g.add(Split("split", n_ways, strategy="round_robin"))
    uni = g.add(Union("union", n_ways))
    sink = g.add(CollectingSink("sink"))
    g.connect(src, split)
    for i in range(n_ways):
        g.connect(split, uni, out_port=i, in_port=i)
    g.connect(uni, sink)
    return g, sink


def test_synchronous_engine_dispatch(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((20_000, 16))

    def run():
        g, sink = _pipeline_graph(x)
        SynchronousEngine(g).run()
        return len(sink.tuples)

    n = benchmark.pedantic(run, rounds=3, iterations=1)
    assert n == 20_000


def test_threaded_engine_dispatch(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((20_000, 16))

    def run():
        g, sink = _pipeline_graph(x)
        ThreadedEngine(g, fusion=FusionPlan.fuse_chains(g)).run(timeout_s=60)
        return len(sink.tuples)

    n = benchmark.pedantic(run, rounds=3, iterations=1)
    assert n == 20_000


def test_parallel_pca_end_to_end_synchronous(benchmark):
    model = PlantedSubspaceModel(dim=100, seed=4)
    x = model.sample(4000, np.random.default_rng(1))

    def run():
        runner = ParallelStreamingPCA(
            5, n_engines=4, alpha=0.995, collect_diagnostics=False
        )
        return runner.run(VectorStream.from_array(x))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.global_state.n_components == 5


def test_parallel_pca_end_to_end_threaded(benchmark):
    model = PlantedSubspaceModel(dim=100, seed=4)
    x = model.sample(4000, np.random.default_rng(1))

    def run():
        runner = ParallelStreamingPCA(
            5,
            n_engines=4,
            alpha=0.995,
            runtime="threaded",
            collect_diagnostics=False,
        )
        return runner.run(VectorStream.from_array(x))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.global_state.n_components == 5
