"""Benchmark the stream engine itself: per-tuple framework overhead.

InfoSphere's value proposition is that the dataflow substrate adds little
cost over the math; this bench measures our substitute's overhead — the
synchronous engine's per-tuple dispatch, the threaded engine's queue hop,
and the end-to-end parallel PCA application on both runtimes.

Run directly (``python benchmarks/bench_streams_engine.py [--quick]``) to
produce ``BENCH_streams_engine.json``: per-tuple (seed) vs micro-batched
end-to-end pipeline throughput, recorded as rows/s and speedup ratios.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:  # allow `python benchmarks/bench_streams_engine.py` without PYTHONPATH
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import PlantedSubspaceModel, VectorStream
from repro.parallel import ParallelStreamingPCA
from repro.streams import (
    CollectingSink,
    FusionPlan,
    Graph,
    Split,
    SynchronousEngine,
    ThreadedEngine,
    Union,
    VectorSource,
)


def _pipeline_graph(x: np.ndarray, n_ways: int = 4) -> tuple[Graph, CollectingSink]:
    g = Graph("bench")
    src = g.add(VectorSource("src", VectorStream.from_array(x)))
    split = g.add(Split("split", n_ways, strategy="round_robin"))
    uni = g.add(Union("union", n_ways))
    sink = g.add(CollectingSink("sink"))
    g.connect(src, split)
    for i in range(n_ways):
        g.connect(split, uni, out_port=i, in_port=i)
    g.connect(uni, sink)
    return g, sink


def test_synchronous_engine_dispatch(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((20_000, 16))

    def run():
        g, sink = _pipeline_graph(x)
        SynchronousEngine(g).run()
        return len(sink.tuples)

    n = benchmark.pedantic(run, rounds=3, iterations=1)
    assert n == 20_000


def test_threaded_engine_dispatch(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((20_000, 16))

    def run():
        g, sink = _pipeline_graph(x)
        ThreadedEngine(g, fusion=FusionPlan.fuse_chains(g)).run(timeout_s=60)
        return len(sink.tuples)

    n = benchmark.pedantic(run, rounds=3, iterations=1)
    assert n == 20_000


def test_parallel_pca_end_to_end_synchronous(benchmark):
    model = PlantedSubspaceModel(dim=100, seed=4)
    x = model.sample(4000, np.random.default_rng(1))

    def run():
        runner = ParallelStreamingPCA(
            5, n_engines=4, alpha=0.995, collect_diagnostics=False
        )
        return runner.run(VectorStream.from_array(x))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.global_state.n_components == 5


def test_parallel_pca_end_to_end_batched(benchmark):
    """Same pipeline with the Batcher feeding (k, d) blocks downstream."""
    model = PlantedSubspaceModel(dim=100, seed=4)
    x = model.sample(4000, np.random.default_rng(1))

    def run():
        runner = ParallelStreamingPCA(
            5,
            n_engines=4,
            alpha=0.995,
            batch_size=64,
            collect_diagnostics=False,
        )
        return runner.run(VectorStream.from_array(x))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.global_state.n_components == 5


def test_parallel_pca_end_to_end_threaded(benchmark):
    model = PlantedSubspaceModel(dim=100, seed=4)
    x = model.sample(4000, np.random.default_rng(1))

    def run():
        runner = ParallelStreamingPCA(
            5,
            n_engines=4,
            alpha=0.995,
            runtime="threaded",
            collect_diagnostics=False,
        )
        return runner.run(VectorStream.from_array(x))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.global_state.n_components == 5


# ---------------------------------------------------------------------------
# Standalone JSON runner: per-tuple (seed) vs micro-batched pipelines
# ---------------------------------------------------------------------------


def _time_once(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _run_pipeline(
    x: np.ndarray,
    *,
    runtime: str,
    batch_size: int,
    n_engines: int,
    repeats: int,
) -> float:
    """Best-of-N wall time for one full parallel PCA run."""

    def run():
        runner = ParallelStreamingPCA(
            5,
            n_engines=n_engines,
            alpha=0.999,
            runtime=runtime,
            batch_size=batch_size,
            collect_diagnostics=False,
        )
        runner.run(VectorStream.from_array(x))

    return min(_time_once(run) for _ in range(repeats))


def _dispatch_overhead(n_tuples: int) -> float:
    """Framework-only tuples/s through source→split→union→sink."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal((n_tuples, 16))

    def run():
        g, sink = _pipeline_graph(x)
        SynchronousEngine(g).run()
        assert len(sink.tuples) == n_tuples

    return n_tuples / min(_time_once(run) for _ in range(3))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Seed vs micro-batched streaming pipeline throughput"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sizes for CI smoke runs",
    )
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_streams_engine.json",
    )
    args = parser.parse_args(argv)

    if args.quick:
        n_rows, dim, repeats, n_dispatch = 2000, 250, 1, 5_000
    else:
        n_rows, dim, repeats, n_dispatch = 8000, 500, 3, 20_000

    model = PlantedSubspaceModel(dim=dim, seed=4)
    x = model.sample(n_rows, np.random.default_rng(1))

    results = []
    for runtime in ("synchronous", "threaded"):
        t_seed = _run_pipeline(
            x, runtime=runtime, batch_size=0, n_engines=2, repeats=repeats
        )
        t_batch = _run_pipeline(
            x, runtime=runtime, batch_size=64, n_engines=2, repeats=repeats
        )
        r = {
            "name": f"parallel_pca_{runtime}",
            "dim": dim,
            "n_rows": n_rows,
            "seed_rows_per_s": n_rows / t_seed,
            "batched_rows_per_s": n_rows / t_batch,
            "speedup": t_seed / t_batch,
        }
        results.append(r)
        print(
            f"{r['name']:26s}  seed {r['seed_rows_per_s']:8.0f} rows/s"
            f"  batched {r['batched_rows_per_s']:8.0f} rows/s"
            f"  speedup {r['speedup']:5.2f}x",
            flush=True,
        )

    from conftest import bench_environment  # benchmarks/ is sys.path[0]

    payload = {
        "benchmark": "streams_engine",
        "quick": args.quick,
        **bench_environment(),
        "config": {
            "n_components": 5,
            "n_engines": 2,
            "batch_size": 64,
            "alpha": 0.999,
            "repeats": repeats,
        },
        "dispatch_tuples_per_s": _dispatch_overhead(n_dispatch),
        "results": results,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
