"""Benchmark ABL-α — the forgetting factor on a drifting stream.

Section II-B: α "adjusts the rate at which the evolving solution ...
forgets about past observations"; α = 1 is infinite memory.  On a
drifting subspace there is a tracking sweet spot: too small forgets the
signal, too large (or 1) cannot follow the drift.
"""

from repro.experiments import run_alpha_ablation


def test_alpha_ablation(benchmark):
    result = benchmark.pedantic(run_alpha_ablation, rounds=1, iterations=1)
    print()
    print(result.table().render())

    by = {a: i for i, a in enumerate(result.alphas)}
    angles = result.tracking_angles
    # Infinite memory cannot track a drifting subspace...
    assert angles[by[1.0]] > 0.5
    # ...a mid-range window tracks well...
    best = result.best_alpha()
    assert 0.9 < best < 1.0
    assert min(angles) < 0.2
    # ...and the extremes on both sides are worse than the sweet spot.
    assert angles[by[0.9]] > min(angles)
    assert angles[by[1.0]] > min(angles)
