"""Benchmark FIG4/5 — eigenspectra convergence on galaxy spectra.

Regenerates the data behind paper Figs. 4–5: the first eigenspectra of a
streaming robust PCA over synthetic SDSS-like galaxy spectra, snapshotted
early (noisy, Fig. 4) and late (smooth, physical, Fig. 5).
"""

import numpy as np

from repro.experiments import Fig45Config, run_fig45


def test_fig45_eigenspectra_convergence(benchmark):
    result = benchmark.pedantic(
        run_fig45, args=(Fig45Config(),), rounds=1, iterations=1
    )
    print()
    print(result.table().render())
    print(f"gap-filled spectra: {result.n_gap_filled}/{result.n_processed}")

    # Fig. 4 -> Fig. 5: every eigenspectrum gets smoother...
    assert np.all(result.late_roughness < result.early_roughness)
    # ...and the spanned subspace moves toward the physical ground truth.
    assert result.late_angles.mean() < result.early_angles.mean()
    assert result.late_angles[0] < 0.1  # leading eigenspectrum locked in
