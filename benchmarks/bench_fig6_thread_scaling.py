"""Benchmark FIG6 — throughput vs parallel threads (simulated testbed).

Regenerates paper Fig. 6: tuples/second for 1–30 PCA engines with
single-node vs distributed placement on the simulated 10×4-core cluster
(d = 250, N = 5000).  The shape assertions encode the paper's findings:
distributed peaks near 2 threads/node and degrades at 30; single-node
saturates at the core count.
"""

from repro.experiments import Fig6Config, run_fig6


def test_fig6_thread_scaling(benchmark):
    config = Fig6Config()
    result = benchmark.pedantic(
        run_fig6, args=(config,), rounds=1, iterations=1
    )
    print()
    print(result.table().render())
    peak_threads, peak_rate = result.distributed_peak()
    print(f"distributed peak: {peak_rate:.0f} tuples/s at {peak_threads} threads")

    idx = {t: i for i, t in enumerate(result.threads)}
    dist = [r.throughput for r in result.distributed]
    single = [r.throughput for r in result.single]

    # Distributed scales up to ~2 threads/node...
    assert dist[idx[20]] > dist[idx[10]] > dist[idx[5]] > dist[idx[1]]
    # ...peaks at 2/node (20 threads on 10 nodes)...
    assert peak_threads == 20
    # ...and degrades when the interconnect saturates at 30.
    assert dist[idx[30]] < dist[idx[20]]
    # Single-node placement saturates at the core count and stays flat.
    cores = config.spec.cores_per_node
    assert abs(single[idx[20]] - single[idx[10]]) / single[idx[10]] < 0.05
    assert single[idx[5]] < cores * single[idx[1]] * 1.05
    # At 1 thread, single-node (fused) beats distributed (network overhead).
    assert single[idx[1]] > dist[idx[1]]
    # At the optimum, distributed wins by a wide margin (the paper's point).
    assert dist[idx[20]] > 3 * single[idx[20]]
