"""Compare a freshly generated BENCH_*.json against the committed baseline.

The committed baselines record absolute rows/s from the machine that
produced them, which is *not* portable across runners.  What is portable
is the block-vs-sequential **speedup ratio**: both measurements share the
machine, BLAS, and Python, so the ratio cancels hardware out.  The check
therefore fails only when a speedup ratio regresses by more than the
tolerance (default 20%) relative to the baseline's ratio.

Absolute floors are also supported: ``--min-speedup NAME:VALUE``
(repeatable) fails when the named case's speedup in the *current*
payload is below VALUE.  Because an absolute floor like "process beats
thread 2x" is only meaningful with real CPU parallelism, these gates
are skipped (with a message) when the current payload records
``n_cpus`` < 4.

Usage::

    python benchmarks/check_regression.py CURRENT.json \
        --baseline BENCH_core_update.json [--tolerance 0.2] \
        [--min-speedup process_vs_thread_e4:2.0]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _ratios(payload: dict) -> dict[str, float]:
    """Extract the named speedup ratios from one benchmark payload.

    Entries are keyed by ``name`` (preferred) or ``dim``; an entry with
    neither is unidentifiable and is skipped with a warning instead of
    crashing the gate — one malformed entry must not mask the ratios
    that *are* checkable.
    """
    out: dict[str, float] = {}
    for r in payload.get("results", []):
        key = r.get("name") or (f"dim={r['dim']}" if "dim" in r else None)
        if key is None:
            print(
                "warning: skipping benchmark entry with neither "
                f"'name' nor 'dim': {sorted(r)}",
                file=sys.stderr,
            )
            continue
        if "speedup" in r:
            out[key] = float(r["speedup"])
    return out


def check(current: dict, baseline: dict, tolerance: float) -> list[str]:
    """Return a list of human-readable regression messages (empty = pass).

    Only keys present in both payloads are compared, so a ``--quick``
    smoke run (fewer dimensions) can still be checked against the full
    committed baseline; zero overlap is itself a failure.
    """
    cur = _ratios(current)
    base = _ratios(baseline)
    shared = [k for k in base if k in cur]
    if not shared:
        return ["no overlapping benchmark cases between current and baseline"]
    failures = []
    for key in shared:
        floor = base[key] * (1.0 - tolerance)
        if cur[key] < floor:
            failures.append(
                f"{key}: speedup {cur[key]:.2f}x < floor {floor:.2f}x "
                f"(baseline {base[key]:.2f}x, tolerance {tolerance:.0%})"
            )
    return failures


def check_min_speedups(
    current: dict, floors: dict[str, float], min_cpus: int = 4
) -> tuple[list[str], str | None]:
    """Absolute speedup floors against the current payload only.

    Returns ``(failures, skip_reason)``; a non-``None`` skip reason means
    the gates were not evaluated (too few CPUs for the floor to be
    physically achievable).
    """
    if not floors:
        return [], None
    n_cpus = int(current.get("n_cpus", 0) or 0)
    if n_cpus < min_cpus:
        return [], (
            f"current payload records n_cpus={n_cpus} < {min_cpus}: "
            f"absolute speedup floors skipped (no CPU parallelism to gate)"
        )
    cur = _ratios(current)
    failures = []
    for key, floor in floors.items():
        if key not in cur:
            failures.append(f"{key}: named by --min-speedup but not measured")
        elif cur[key] < floor:
            failures.append(
                f"{key}: speedup {cur[key]:.2f}x < required {floor:.2f}x"
            )
    return failures, None


def _parse_floor(spec: str) -> tuple[str, float]:
    name, sep, value = spec.rpartition(":")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"--min-speedup wants NAME:VALUE, got {spec!r}"
        )
    return name, float(value)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmark speedups regress vs a baseline"
    )
    parser.add_argument("current", type=Path)
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--tolerance", type=float, default=0.2)
    parser.add_argument(
        "--min-speedup", action="append", default=[], type=_parse_floor,
        metavar="NAME:VALUE",
        help="absolute speedup floor for one named case (repeatable); "
        "skipped when the current payload has n_cpus < --min-cpus",
    )
    parser.add_argument(
        "--min-cpus", type=int, default=4,
        help="CPUs the floors need to be meaningful (default 4: "
        "multi-core scaling gates); use 1 for floors that do not "
        "depend on CPU parallelism, e.g. overhead ratios",
    )
    args = parser.parse_args(argv)

    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())
    if current.get("benchmark") != baseline.get("benchmark"):
        print(
            f"benchmark mismatch: current={current.get('benchmark')!r} "
            f"baseline={baseline.get('benchmark')!r}"
        )
        return 2

    failures = check(current, baseline, args.tolerance)
    floor_failures, skip_reason = check_min_speedups(
        current, dict(args.min_speedup), min_cpus=args.min_cpus
    )
    failures += floor_failures
    name = current.get("benchmark", "?")
    if skip_reason:
        print(f"{name}: {skip_reason}")
    if failures:
        print(f"{name}: {len(failures)} speedup regression(s):")
        for msg in failures:
            print(f"  - {msg}")
        return 1
    n = len([k for k in _ratios(baseline) if k in _ratios(current)])
    print(
        f"{name}: all {n} shared speedup ratios within "
        f"{args.tolerance:.0%} of baseline"
    )
    if args.min_speedup and not skip_reason:
        print(f"{name}: {len(args.min_speedup)} absolute floor(s) met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
