"""Compare a freshly generated BENCH_*.json against the committed baseline.

The committed baselines record absolute rows/s from the machine that
produced them, which is *not* portable across runners.  What is portable
is the block-vs-sequential **speedup ratio**: both measurements share the
machine, BLAS, and Python, so the ratio cancels hardware out.  The check
therefore fails only when a speedup ratio regresses by more than the
tolerance (default 20%) relative to the baseline's ratio.

Usage::

    python benchmarks/check_regression.py CURRENT.json \
        --baseline BENCH_core_update.json [--tolerance 0.2]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _ratios(payload: dict) -> dict[str, float]:
    """Extract the named speedup ratios from one benchmark payload."""
    out: dict[str, float] = {}
    for r in payload.get("results", []):
        key = r.get("name") or f"dim={r['dim']}"
        if "speedup" in r:
            out[key] = float(r["speedup"])
    return out


def check(current: dict, baseline: dict, tolerance: float) -> list[str]:
    """Return a list of human-readable regression messages (empty = pass).

    Only keys present in both payloads are compared, so a ``--quick``
    smoke run (fewer dimensions) can still be checked against the full
    committed baseline; zero overlap is itself a failure.
    """
    cur = _ratios(current)
    base = _ratios(baseline)
    shared = [k for k in base if k in cur]
    if not shared:
        return ["no overlapping benchmark cases between current and baseline"]
    failures = []
    for key in shared:
        floor = base[key] * (1.0 - tolerance)
        if cur[key] < floor:
            failures.append(
                f"{key}: speedup {cur[key]:.2f}x < floor {floor:.2f}x "
                f"(baseline {base[key]:.2f}x, tolerance {tolerance:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmark speedups regress vs a baseline"
    )
    parser.add_argument("current", type=Path)
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--tolerance", type=float, default=0.2)
    args = parser.parse_args(argv)

    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())
    if current.get("benchmark") != baseline.get("benchmark"):
        print(
            f"benchmark mismatch: current={current.get('benchmark')!r} "
            f"baseline={baseline.get('benchmark')!r}"
        )
        return 2

    failures = check(current, baseline, args.tolerance)
    name = current.get("benchmark", "?")
    if failures:
        print(f"{name}: {len(failures)} speedup regression(s):")
        for msg in failures:
            print(f"  - {msg}")
        return 1
    n = len([k for k in _ratios(baseline) if k in _ratios(current)])
    print(
        f"{name}: all {n} shared speedup ratios within "
        f"{args.tolerance:.0%} of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
