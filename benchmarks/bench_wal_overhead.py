"""Benchmark the price of durable ingest: WAL append modes and the
end-to-end service overhead.

The durability plane puts a write-ahead-log append *in front of* every
ingest ack (``repro.serving.durability.WriteAheadLog``).  The three
modes buy three different ack guarantees; this benchmark prices them at
two levels:

* **Raw append** — ``WriteAheadLog.append`` alone, no service around
  it.  The machine-portable, CI-gated ratio is
  ``wal_async_overhead = async rows/s / none rows/s``: the cost of the
  per-record ``flush()`` that upgrades the ack from "buffered
  in-process" to "survives process death".  Both sides are CPU-bound
  writes to the page cache on the same machine, so the ratio is stable
  and must stay near 1.0 (``check_regression.py ... --min-speedup
  wal_async_overhead:0.85``).  The fsync ratio is recorded too
  (``ratio_vs_none``) but **not** gated: it prices the storage device,
  not the code, and varies 100x between laptops and CI runners.
* **Service ingest** — ``PCAService.ingest`` end to end (no HTTP) with
  no data dir vs each durability mode.  Absolute rows/s are recorded
  for the artifact (``ingest_*`` entries, no ``speedup`` key) so a
  human can see what durable admission costs in context; they are
  machine-specific and deliberately ungated.

Run directly (``python benchmarks/bench_wal_overhead.py [--quick]
[--out BENCH_wal_overhead.json]``) to produce the committed baseline.
The committed payload is an honest 1-CPU run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

try:  # allow running without PYTHONPATH=src
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serving import PCAService, ServingConfig, TenantSpec
from repro.serving.durability import WriteAheadLog

SEED = 20120513
DIM = 32
BLOCK_ROWS = 64


def _blocks(n: int) -> list[np.ndarray]:
    plant = np.random.default_rng(SEED).normal(size=(4, DIM))
    rng = np.random.default_rng(SEED + 1)
    out = []
    for _ in range(n):
        coeff = rng.normal(size=(BLOCK_ROWS, 4)) * np.array(
            [6.0, 4.0, 3.0, 2.0]
        )
        out.append(coeff @ plant + 0.1 * rng.normal(size=(BLOCK_ROWS, DIM)))
    return out


def _append_tput(
    blocks: list[np.ndarray], scratch: Path, mode: str, repeats: int
) -> dict:
    """Best-of-``repeats`` rows/s for raw WAL appends in one mode.

    Best-of (not median): append is deterministic CPU + page-cache work,
    so the fastest pass is the least-interfered measurement.
    """
    rates = []
    n_fsyncs = 0
    for rep in range(repeats):
        d = scratch / f"wal-{mode}-{rep}"
        wal = WriteAheadLog(d, durability=mode)
        t0 = time.perf_counter()
        for b in blocks:
            wal.append(b)
        dt = time.perf_counter() - t0
        wal.close()
        rates.append(len(blocks) * BLOCK_ROWS / dt)
        n_fsyncs = wal.n_fsyncs
        for _seq, path in wal.segments():
            path.unlink()
    return {
        "rows_per_s": float(max(rates)),
        "rows_per_s_median": float(np.median(rates)),
        "n_fsyncs": n_fsyncs,
    }


def _ingest_tput(
    blocks: list[np.ndarray],
    data_dir: str | None,
    durability: str,
    repeats: int,
) -> dict:
    """Best-of-``repeats`` rows/s for direct service ingest."""
    cfg = ServingConfig(
        n_lanes=1,
        elastic=False,
        data_dir=data_dir,
        durability=durability,
        # Keep the checkpointer out of the measurement window: the WAL
        # append is the per-ingest cost being priced here.
        checkpoint_every_publishes=10_000,
        checkpoint_interval_s=3600.0,
    )
    svc = PCAService(cfg)
    svc.add_tenant(TenantSpec(
        "bench", n_components=4, init_size=20,
        publish_every_blocks=8, queue_capacity_rows=10_000_000,
        max_block_rows=512,
    ))
    svc.start()
    if svc.durability is not None:
        svc.durability.recovery.wait(30.0)
    rates = []
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            for b in blocks:
                code, payload = svc.ingest("bench", b)
                if code != 202:
                    raise RuntimeError(f"ingest failed: {code} {payload}")
            dt = time.perf_counter() - t0
            rates.append(len(blocks) * BLOCK_ROWS / dt)
            svc.pool.drain(60.0)
    finally:
        svc.stop()
    return {
        "rows_per_s": float(max(rates)),
        "rows_per_s_median": float(np.median(rates)),
    }


def run_bench(quick: bool, scratch: Path) -> dict:
    n_blocks = 120 if quick else 400
    repeats = 3 if quick else 5
    blocks = _blocks(n_blocks)

    append = {
        mode: _append_tput(blocks, scratch, mode, repeats)
        for mode in ("none", "async", "fsync")
    }
    ingest = {"off": _ingest_tput(blocks, None, "async", repeats)}
    for mode in ("none", "async", "fsync"):
        ingest[mode] = _ingest_tput(
            blocks, str(scratch / f"data-{mode}"), mode, repeats
        )

    none_rate = append["none"]["rows_per_s"]

    return {
        "benchmark": "wal_overhead",
        "quick": quick,
        "n_cpus": os.cpu_count(),
        "blas_threads": os.environ.get("OMP_NUM_THREADS"),
        "config": {
            "dim": DIM,
            "block_rows": BLOCK_ROWS,
            "n_blocks": n_blocks,
            "repeats": repeats,
            "n_lanes": 1,
        },
        "results": [
            {"name": "wal_append_none", **append["none"]},
            {"name": "wal_append_async", **append["async"]},
            {"name": "wal_append_fsync", **append["fsync"]},
            {
                # The gated ratio: flush-per-record vs buffered.
                "name": "wal_async_overhead",
                "rows_per_s": append["async"]["rows_per_s"],
                "baseline_rows_per_s": none_rate,
                "speedup": (
                    append["async"]["rows_per_s"] / none_rate
                    if none_rate else 0.0
                ),
            },
            {
                # Device-priced; recorded, never gated (no "speedup").
                "name": "wal_fsync_overhead",
                "rows_per_s": append["fsync"]["rows_per_s"],
                "baseline_rows_per_s": none_rate,
                "n_fsyncs": append["fsync"]["n_fsyncs"],
                "ratio_vs_none": (
                    append["fsync"]["rows_per_s"] / none_rate
                    if none_rate else 0.0
                ),
            },
            {"name": "ingest_no_durability", **ingest["off"]},
            {"name": "ingest_wal_none", **ingest["none"]},
            {"name": "ingest_wal_async", **ingest["async"]},
            {"name": "ingest_wal_fsync", **ingest["fsync"]},
        ],
    }


def main() -> int:
    import tempfile

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true")
    ap.add_argument("--out", default="BENCH_wal_overhead.json")
    args = ap.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-walbench-") as scratch:
        payload = run_bench(quick=args.quick, scratch=Path(scratch))
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=1) + "\n")
    for r in payload["results"]:
        bits = [f"{k}={v:.3f}" if isinstance(v, float) else f"{k}={v}"
                for k, v in r.items() if k != "name"]
        print(f"{r['name']}: {', '.join(bits)}")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
