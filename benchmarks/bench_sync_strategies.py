"""Benchmark SYNC/ABL-TOPO/ABL-GATE — synchronization behaviour.

Covers the paper's §II-C/III-B claims: the data-driven 1.5·N gate keeps
engines statistically independent between merges; ring sync achieves
"reasonable global solutions while minimizing the network traffic";
broadcast buys tighter cross-engine consistency with more messages.
"""

from repro.experiments import run_gate_ablation, run_sync_strategies


def test_sync_strategies(benchmark):
    result = benchmark.pedantic(run_sync_strategies, rounds=1, iterations=1)
    print()
    print(result.table().render())

    by = {s: i for i, s in enumerate(result.strategies)}
    # Broadcast sends more merge messages than ring...
    assert result.merge_messages[by["broadcast"]] > result.merge_messages[by["ring"]]
    # ...and achieves at-least-as-tight cross-engine consistency.
    assert (
        result.max_pairwise_angle[by["broadcast"]]
        <= result.max_pairwise_angle[by["ring"]] + 1e-9
    )
    # Every topology still produces an accurate *global* answer.
    assert all(a < 0.2 for a in result.global_angle)


def test_sync_gate_factor(benchmark):
    result = benchmark.pedantic(run_gate_ablation, rounds=1, iterations=1)
    print()
    print(result.table().render())

    # More aggressive syncing (smaller gate) => strictly more messages.
    assert all(
        a >= b
        for a, b in zip(result.merge_messages, result.merge_messages[1:])
    )
    # The paper's 1.5 setting stays accurate.
    idx = result.factors.index(1.5)
    assert result.global_angle[idx] < 0.1
