"""Benchmark the cost of telemetry on the stream engines.

The observability layer is tiered so the default is effectively free
(see ``docs/telemetry.md`` for the budget):

* **off** — no ``Telemetry`` object at all (the baseline).
* **metrics** — the default ``TelemetryConfig()``: registry collectors
  read existing operator counters at export time, so the per-tuple hot
  path is untouched.  Budget: < 5% throughput cost vs off.
* **metrics+timing** — per-dispatch latency histograms (one
  ``perf_counter`` pair per delivery).
* **metrics+tracing** — sampled span tracing (one dict probe per
  dispatch; span bookkeeping only on sampled 1-in-128 tuples).

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_telemetry_overhead.py``
(uses pytest-benchmark, like the other benches), and compare the
``sync_*`` / ``threaded_*`` groups.

Run directly (``python benchmarks/bench_telemetry_overhead.py [--quick]``)
to produce ``BENCH_telemetry_overhead.json``: the committed baseline that
arms the CI floor (``check_regression.py --min-speedup
telemetry_metrics_*:0.90 --min-speedup telemetry_monitors_*:0.90``).
The direct runner prices the tiers on the realistic parallel-PCA graph —
``off`` (no Telemetry), ``metrics`` (registry collectors plus the sink
e2e-latency/watermark instrumentation of PR 7), and ``monitors``
(metrics plus per-engine model-health monitors) — as total-time ratios
``off / tier`` over interleaved pairs, so the documented < 5% budget has
a regression gate and not just a docstring.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:  # allow `python benchmarks/bench_telemetry_overhead.py` without PYTHONPATH
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import VectorStream
from repro.streams import (
    CollectingSink,
    FusionPlan,
    Graph,
    Split,
    SynchronousEngine,
    Telemetry,
    TelemetryConfig,
    ThreadedEngine,
    Union,
    VectorSource,
)

N_TUPLES = 20_000
DIM = 16

CONFIGS = {
    "off": None,
    "metrics": TelemetryConfig(),
    "metrics+timing": TelemetryConfig(timing=True),
    "metrics+tracing": TelemetryConfig(tracing=True),
}


def _pipeline_graph(x: np.ndarray, n_ways: int = 4):
    g = Graph("bench-telemetry")
    src = g.add(VectorSource("src", VectorStream.from_array(x)))
    split = g.add(Split("split", n_ways, strategy="round_robin"))
    uni = g.add(Union("union", n_ways))
    sink = g.add(CollectingSink("sink"))
    g.connect(src, split)
    for i in range(n_ways):
        g.connect(split, uni, out_port=i, in_port=i)
    g.connect(uni, sink)
    return g, sink


def _data():
    rng = np.random.default_rng(0)
    return rng.standard_normal((N_TUPLES, DIM))


def _bench_sync(benchmark, config):
    x = _data()

    def run():
        g, sink = _pipeline_graph(x)
        tel = Telemetry(config) if config is not None else None
        SynchronousEngine(g, telemetry=tel).run()
        return len(sink.tuples)

    n = benchmark.pedantic(run, rounds=3, iterations=1)
    assert n == N_TUPLES


def _bench_threaded(benchmark, config):
    x = _data()

    def run():
        g, sink = _pipeline_graph(x)
        tel = Telemetry(config) if config is not None else None
        ThreadedEngine(
            g, fusion=FusionPlan.fuse_chains(g), telemetry=tel
        ).run(timeout_s=120)
        return len(sink.tuples)

    n = benchmark.pedantic(run, rounds=3, iterations=1)
    assert n == N_TUPLES


def test_sync_telemetry_off(benchmark):
    _bench_sync(benchmark, CONFIGS["off"])


def test_sync_metrics_only(benchmark):
    _bench_sync(benchmark, CONFIGS["metrics"])


def test_sync_metrics_timing(benchmark):
    _bench_sync(benchmark, CONFIGS["metrics+timing"])


def test_sync_metrics_tracing(benchmark):
    _bench_sync(benchmark, CONFIGS["metrics+tracing"])


def test_threaded_telemetry_off(benchmark):
    _bench_threaded(benchmark, CONFIGS["off"])


def test_threaded_metrics_only(benchmark):
    _bench_threaded(benchmark, CONFIGS["metrics"])


def test_threaded_metrics_tracing(benchmark):
    _bench_threaded(benchmark, CONFIGS["metrics+tracing"])


def test_metrics_only_overhead_within_budget():
    """The documented budget: metrics-only telemetry costs < 5%.

    Measured directly (not via pytest-benchmark) so the check runs in
    plain test suites too; best-of-3 on each side smooths scheduler
    noise.
    """
    import time

    x = _data()

    def run_once(config):
        g, sink = _pipeline_graph(x)
        tel = Telemetry(config) if config is not None else None
        t0 = time.perf_counter()
        SynchronousEngine(g, telemetry=tel).run()
        elapsed = time.perf_counter() - t0
        assert len(sink.tuples) == N_TUPLES
        return elapsed

    base = min(run_once(None) for _ in range(3))
    metrics = min(run_once(TelemetryConfig()) for _ in range(3))
    overhead = metrics / base - 1.0
    # Generous ceiling for noisy CI boxes; the budget itself is 5%.
    assert overhead < 0.25, (
        f"metrics-only telemetry overhead {overhead:.1%} "
        f"(baseline {base:.3f}s, metrics {metrics:.3f}s)"
    )


# ---------------------------------------------------------------------------
# Standalone JSON runner (the committed-baseline / CI-gate face)
# ---------------------------------------------------------------------------

#: The tiers the JSON runner prices, in severity order.  ``monitors``
#: is ``metrics`` plus per-engine HealthMonitors (subspace affinity,
#: eigenspectrum drift, r² control chart — checked every 256 rows).
TIERS = ("off", "metrics", "monitors")


def _run_pca_once(x, runtime: str, n_engines: int, tier: str) -> float:
    from repro.core.robust import RobustIncrementalPCA
    from repro.parallel.app import build_parallel_pca_graph
    from repro.streams import FusionPlan, ThreadedEngine

    app = build_parallel_pca_graph(
        VectorStream.from_array(x),
        n_engines,
        lambda i: RobustIncrementalPCA(4, alpha=0.999),
        split_seed=1,
        batch_size=64,
        collect_diagnostics=True,
        health=(tier == "monitors"),
    )
    tel = Telemetry(TelemetryConfig()) if tier != "off" else None
    t0 = time.perf_counter()
    if runtime == "threaded":
        ThreadedEngine(
            app.graph, fusion=FusionPlan.fuse_chains(app.graph),
            telemetry=tel,
        ).run(timeout_s=600)
    else:
        SynchronousEngine(app.graph, telemetry=tel).run()
    wall = time.perf_counter() - t0
    if tier == "monitors":
        assert all(m.n_checks > 0 for m in app.health_monitors), (
            "monitors tier must actually run health checks"
        )
    if tel is not None:
        # The instrumentation being priced must be live: sinks observed
        # end-to-end latency into the histogram.
        assert any(
            getattr(m, "name", "") == "repro_e2e_latency_seconds"
            and m.count > 0
            for m in tel.metrics.collect()
        ), "e2e latency histograms must be populated"
    return wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Telemetry/health-monitor overhead on the PCA graph"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sizes for CI smoke runs",
    )
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_telemetry_overhead.json",
    )
    args = parser.parse_args(argv)

    if args.quick:
        n_rows, dim, repeats = 6000, 128, 3
    else:
        n_rows, dim, repeats = 12000, 128, 7

    n_engines = 4
    from conftest import bench_environment  # benchmarks/ is sys.path[0]

    rng = np.random.default_rng(7)
    x = rng.standard_normal((n_rows, dim))
    env = bench_environment()

    results = []
    for runtime in ("synchronous", "threaded"):
        # Warm caches and the thread machinery once per runtime.
        for tier in TIERS:
            _run_pca_once(x, runtime, n_engines, tier)
        # Interleaved rounds (off first on even rounds, last on odd) so
        # machine drift hits every tier alike — same rationale as
        # bench_chaos_overhead.py.
        walls: dict[str, list[float]] = {t: [] for t in TIERS}
        for i in range(repeats):
            order = TIERS if i % 2 == 0 else tuple(reversed(TIERS))
            for tier in order:
                walls[tier].append(
                    _run_pca_once(x, runtime, n_engines, tier)
                )
        base_total = sum(walls["off"])
        for tier in ("metrics", "monitors"):
            r = {
                "name": f"telemetry_{tier}_{runtime}",
                "runtime": runtime,
                "tier": tier,
                "dim": dim,
                "n_rows": n_rows,
                "off_rows_per_s": n_rows / min(walls["off"]),
                "tier_rows_per_s": n_rows / min(walls[tier]),
                "speedup": base_total / sum(walls[tier]),
            }
            results.append(r)
            print(
                f"{r['name']:32s}  off {r['off_rows_per_s']:8.0f} rows/s"
                f"  {tier} {r['tier_rows_per_s']:8.0f} rows/s"
                f"  ratio {r['speedup']:5.3f}x"
                f"  (overhead {100 * (1 - r['speedup']):.1f}%)",
                flush=True,
            )

    payload = {
        "benchmark": "telemetry_overhead",
        "quick": args.quick,
        **env,
        "config": {
            "n_components": 4,
            "n_engines": n_engines,
            "dim": dim,
            "n_rows": n_rows,
            "batch_size": 64,
            "alpha": 0.999,
            "repeats": repeats,
            "health_check_every": 256,
        },
        "results": results,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out} (n_cpus={env['n_cpus']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
