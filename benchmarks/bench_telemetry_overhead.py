"""Benchmark the cost of telemetry on the stream engines.

The observability layer is tiered so the default is effectively free
(see ``docs/telemetry.md`` for the budget):

* **off** — no ``Telemetry`` object at all (the baseline).
* **metrics** — the default ``TelemetryConfig()``: registry collectors
  read existing operator counters at export time, so the per-tuple hot
  path is untouched.  Budget: < 5% throughput cost vs off.
* **metrics+timing** — per-dispatch latency histograms (one
  ``perf_counter`` pair per delivery).
* **metrics+tracing** — sampled span tracing (one dict probe per
  dispatch; span bookkeeping only on sampled 1-in-128 tuples).

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_telemetry_overhead.py``
(uses pytest-benchmark, like the other benches), and compare the
``sync_*`` / ``threaded_*`` groups.
"""

import numpy as np

from repro.data import VectorStream
from repro.streams import (
    CollectingSink,
    FusionPlan,
    Graph,
    Split,
    SynchronousEngine,
    Telemetry,
    TelemetryConfig,
    ThreadedEngine,
    Union,
    VectorSource,
)

N_TUPLES = 20_000
DIM = 16

CONFIGS = {
    "off": None,
    "metrics": TelemetryConfig(),
    "metrics+timing": TelemetryConfig(timing=True),
    "metrics+tracing": TelemetryConfig(tracing=True),
}


def _pipeline_graph(x: np.ndarray, n_ways: int = 4):
    g = Graph("bench-telemetry")
    src = g.add(VectorSource("src", VectorStream.from_array(x)))
    split = g.add(Split("split", n_ways, strategy="round_robin"))
    uni = g.add(Union("union", n_ways))
    sink = g.add(CollectingSink("sink"))
    g.connect(src, split)
    for i in range(n_ways):
        g.connect(split, uni, out_port=i, in_port=i)
    g.connect(uni, sink)
    return g, sink


def _data():
    rng = np.random.default_rng(0)
    return rng.standard_normal((N_TUPLES, DIM))


def _bench_sync(benchmark, config):
    x = _data()

    def run():
        g, sink = _pipeline_graph(x)
        tel = Telemetry(config) if config is not None else None
        SynchronousEngine(g, telemetry=tel).run()
        return len(sink.tuples)

    n = benchmark.pedantic(run, rounds=3, iterations=1)
    assert n == N_TUPLES


def _bench_threaded(benchmark, config):
    x = _data()

    def run():
        g, sink = _pipeline_graph(x)
        tel = Telemetry(config) if config is not None else None
        ThreadedEngine(
            g, fusion=FusionPlan.fuse_chains(g), telemetry=tel
        ).run(timeout_s=120)
        return len(sink.tuples)

    n = benchmark.pedantic(run, rounds=3, iterations=1)
    assert n == N_TUPLES


def test_sync_telemetry_off(benchmark):
    _bench_sync(benchmark, CONFIGS["off"])


def test_sync_metrics_only(benchmark):
    _bench_sync(benchmark, CONFIGS["metrics"])


def test_sync_metrics_timing(benchmark):
    _bench_sync(benchmark, CONFIGS["metrics+timing"])


def test_sync_metrics_tracing(benchmark):
    _bench_sync(benchmark, CONFIGS["metrics+tracing"])


def test_threaded_telemetry_off(benchmark):
    _bench_threaded(benchmark, CONFIGS["off"])


def test_threaded_metrics_only(benchmark):
    _bench_threaded(benchmark, CONFIGS["metrics"])


def test_threaded_metrics_tracing(benchmark):
    _bench_threaded(benchmark, CONFIGS["metrics+tracing"])


def test_metrics_only_overhead_within_budget():
    """The documented budget: metrics-only telemetry costs < 5%.

    Measured directly (not via pytest-benchmark) so the check runs in
    plain test suites too; best-of-3 on each side smooths scheduler
    noise.
    """
    import time

    x = _data()

    def run_once(config):
        g, sink = _pipeline_graph(x)
        tel = Telemetry(config) if config is not None else None
        t0 = time.perf_counter()
        SynchronousEngine(g, telemetry=tel).run()
        elapsed = time.perf_counter() - t0
        assert len(sink.tuples) == N_TUPLES
        return elapsed

    base = min(run_once(None) for _ in range(3))
    metrics = min(run_once(TelemetryConfig()) for _ in range(3))
    overhead = metrics / base - 1.0
    # Generous ceiling for noisy CI boxes; the budget itself is 5%.
    assert overhead < 0.25, (
        f"metrics-only telemetry overhead {overhead:.1%} "
        f"(baseline {base:.3f}s, metrics {metrics:.3f}s)"
    )
