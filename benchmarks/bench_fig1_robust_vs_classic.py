"""Benchmark FIG1 — classic vs robust streaming PCA under contamination.

Regenerates the data behind paper Fig. 1: eigenvalue traces for both
estimators on a Gaussian stream with gross outliers, plus outlier
detection quality.  Asserts the qualitative claims (classical estimator
captured by outliers, robust estimator converged) so a regression in the
algorithm fails the bench.
"""

from repro.experiments import Fig1Config, run_fig1


def test_fig1_robust_vs_classic(benchmark):
    result = benchmark.pedantic(
        run_fig1, args=(Fig1Config(),), rounds=1, iterations=1
    )
    print()
    print(result.table().render())

    # Shape assertions (the figure's story):
    # classical PCA is captured by the outliers...
    assert result.classic_angle > 0.5
    # ...the robust one converges to the planted subspace...
    assert result.robust_angle < 0.2
    # ...its eigenvalue trace settles while the classical one churns...
    assert (
        result.robust_tail_dispersion[0]
        < result.classic_tail_dispersion[0]
    )
    # ...and the flagged outliers are the injected ones.
    assert result.detection["precision"] > 0.95
    assert result.detection["recall"] > 0.90
