"""Benchmark ABL-GAPS — residual estimation for gap-filled spectra.

Section II-D: patching gaps with the running eigenbasis "artificially
removed the residuals in the bins of the missing entries", so
uncorrected gappy spectra get inflated robust weights.  This bench
measures the inflation under each residual-estimation mode.
"""

from repro.experiments import run_gap_ablation


def test_gap_residual_modes(benchmark):
    result = benchmark.pedantic(run_gap_ablation, rounds=1, iterations=1)
    print()
    print(result.table().render())

    # Uncorrected gappy spectra are over-weighted...
    assert result.inflation_of("observed") > 1.05
    # ...the paper's higher-order correction reduces the inflation...
    assert (
        result.inflation_of("higher-order")
        <= result.inflation_of("observed")
    )
    # ...and the extrapolation-based modes bring it near parity.
    assert 0.85 < result.inflation_of("hybrid") < 1.1
    assert result.inflation_of("hybrid") < result.inflation_of("observed")
