"""Benchmark CONV — in-flight results converge before the stream ends.

Section III-C: "we frequently see fast convergence way before getting to
the last galaxy, which can speed up the scientific analysis" — the
in-flight-results pitch of the introduction, quantified.
"""

from repro.experiments import run_convergence


def test_convergence_before_stream_end(benchmark):
    result = benchmark.pedantic(run_convergence, rounds=1, iterations=1)
    print()
    print(result.table().render())
    frac = result.fraction_to_reach(0.05)
    print(f"\nleading eigenspectrum usable (≤ 0.05 rad) after "
          f"{frac:.0%} of the stream")

    # The dominant eigenspectrum converges well before the last galaxy
    # ("the galaxies are redundant in good approximation")...
    assert frac <= 0.15
    assert result.final_leading_angle < 0.05
    # ...while the eigengap-limited trailing directions keep drifting —
    # they improve monotonically but need (much) more data.
    assert result.angles[-1] <= result.angles[2]
