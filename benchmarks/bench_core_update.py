"""Benchmark PERF-CORE — the per-tuple update microbenchmarks.

Section III-A.2 claims the stateful operator's per-tuple work is
"computationally inexpensive algebraic operations"; Section III-D keeps
d = 250 "to decrease the influence of SVD computation speed".  These
microbenchmarks measure the real Python operator's per-update cost across
the paper's dimensional range, the merge step (the "most
computation-intensive operation" triggered by sync), and the gap-filling
path — the numbers that calibrate the cluster simulator.

Run directly (``python benchmarks/bench_core_update.py [--quick]``) to
produce ``BENCH_core_update.json``: a sequential-vs-block comparison of
the robust update hot path, recorded as rows/s and speedup ratios so the
committed baseline stays machine-portable.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

try:  # allow `python benchmarks/bench_core_update.py` without PYTHONPATH
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import (
    Eigensystem,
    RobustIncrementalPCA,
    fill_from_basis,
    merge_pair,
    rank_k_update,
)
from repro.core import kernels as _kernels
from repro.data import PlantedSubspaceModel


def _warm_estimator(dim: int, p: int, seed: int = 0):
    model = PlantedSubspaceModel(
        dim=dim,
        signal_variances=tuple(float(v) for v in range(p + 4, 4, -1)),
        noise_std=0.3,
        seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    est = RobustIncrementalPCA(p, alpha=0.999, init_size=max(2 * p, 16))
    est.partial_fit(model.sample(est.init_size + 50, rng))
    return est, model, rng


@pytest.mark.parametrize("dim", [250, 500, 1000, 2000])
def test_update_cost_vs_dimension(benchmark, dim):
    """Per-tuple robust update across the paper's Fig. 7 dimensions."""
    est, model, rng = _warm_estimator(dim, p=8)
    block = model.sample(4096, rng)
    idx = iter(np.resize(np.arange(block.shape[0]), 1 << 20))

    def one_update():
        est.update(block[next(idx)])

    benchmark(one_update)


@pytest.mark.parametrize("p", [4, 8, 16, 32])
def test_update_cost_vs_components(benchmark, p):
    """Per-tuple robust update as the retained rank grows."""
    est, model, rng = _warm_estimator(500, p=p)
    block = model.sample(4096, rng)
    idx = iter(np.resize(np.arange(block.shape[0]), 1 << 20))

    def one_update():
        est.update(block[next(idx)])

    benchmark(one_update)


def test_outlier_rejection_is_cheap(benchmark):
    """A rejected outlier skips the eigensolve — near-free (§II claims)."""
    est, model, rng = _warm_estimator(1000, p=8)
    junk = 50.0 * rng.standard_normal(1000)

    def one_outlier():
        est.update(junk)

    benchmark(one_outlier)
    assert est.n_outliers > 0


def test_merge_cost(benchmark):
    """The sync-time merge: eigensolve of the 2p(+1)-column factor."""
    est1, model, rng = _warm_estimator(1000, p=8, seed=1)
    est2, _, _ = _warm_estimator(1000, p=8, seed=2)
    s1, s2 = est1.public_state(), est2.public_state()

    benchmark(lambda: merge_pair(s1, s2, 8))


def test_gap_fill_cost(benchmark):
    """Masked least-squares patching of a 25%-gappy spectrum."""
    est, model, rng = _warm_estimator(1000, p=8)
    st: Eigensystem = est.state
    x = model.sample(1, rng)[0]
    mask = rng.random(1000) < 0.25
    x[mask] = np.nan

    benchmark(lambda: fill_from_basis(x, st.mean, st.basis))


@pytest.mark.parametrize("dim", [250, 1000, 2000])
def test_block_update_cost_vs_dimension(benchmark, dim):
    """Vectorized block update: amortized per-row cost of update_block."""
    est, model, rng = _warm_estimator(dim, p=8)
    block = model.sample(256, rng)

    benchmark(lambda: est.update_block(block))


# ---------------------------------------------------------------------------
# Standalone JSON runner: sequential vs block hot path
# ---------------------------------------------------------------------------


def _time_rows(fn, repeats: int = 3) -> float:
    """Best-of-N wall time of fn() in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _compare_at_dim(dim: int, n_rows: int, p: int = 8, repeats: int = 3):
    """Seed (per-row ``update``) vs batched (``update_block``) throughput.

    Both paths start from identically warmed estimators and consume the
    same rows, so the ratio isolates the block kernel's amortization of
    the eigensolve and the per-call Python overhead.
    """
    est_seq, model, rng = _warm_estimator(dim, p=p, seed=0)
    est_blk, _, _ = _warm_estimator(dim, p=p, seed=0)
    rows = model.sample(n_rows, rng)

    def run_seq():
        for i in range(n_rows):
            est_seq.update(rows[i])

    def run_blk():
        est_blk.update_block(rows)

    t_seq = _time_rows(run_seq, repeats)
    t_blk = _time_rows(run_blk, repeats)
    return {
        "dim": dim,
        "n_rows": n_rows,
        "seq_rows_per_s": n_rows / t_seq,
        "block_rows_per_s": n_rows / t_blk,
        "speedup": t_seq / t_blk,
    }


def _compare_jit(dim: int, n_rows: int, p: int = 8, repeats: int = 3):
    """Compiled vs numpy-fallback ``rank_k_update`` at one dimension.

    Returns ``None`` when numba is not installed (the CI jit leg is the
    place this ratio gets measured and gated).  The first compiled call
    is burned before timing so compile latency never pollutes the ratio.
    """
    if not _kernels.HAVE_NUMBA:
        return None
    est, model, rng = _warm_estimator(dim, p=p, seed=0)
    st: Eigensystem = est.state
    basis = np.ascontiguousarray(st.basis)
    lam = np.asarray(st.eigenvalues, dtype=np.float64).copy()
    block = model.sample(n_rows, rng)
    weights = rng.uniform(0.5, 1.0, n_rows)

    def run_all():
        for i in range(n_rows):
            rank_k_update(
                basis, lam, block[i : i + 1], 0.999, weights[i : i + 1], p
            )
        rank_k_update(basis, lam, block, 0.999, weights, p)

    with _kernels.use_jit(True):
        run_all()  # warmup: JIT compile + caches
        t_jit = _time_rows(run_all, repeats)
    with _kernels.use_jit(False):
        run_all()
        t_np = _time_rows(run_all, repeats)
    return {
        "name": "jit_vs_numpy",
        "dim": dim,
        "n_rows": n_rows,
        "jit_rows_per_s": 2 * n_rows / t_jit,
        "numpy_rows_per_s": 2 * n_rows / t_np,
        "speedup": t_np / t_jit,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Sequential-vs-block robust update throughput"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sizes for CI smoke runs",
    )
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_core_update.json",
    )
    args = parser.parse_args(argv)

    if args.quick:
        cases = [(250, 256), (1000, 256), (4000, 128)]
        repeats = 1
    else:
        cases = [(250, 1024), (500, 1024), (1000, 1024),
                 (2000, 768), (4000, 512)]
        repeats = 3

    results = []
    for dim, n_rows in cases:
        r = _compare_at_dim(dim, n_rows, repeats=repeats)
        results.append(r)
        print(
            f"d={dim:5d}  seq {r['seq_rows_per_s']:9.0f} rows/s"
            f"  block {r['block_rows_per_s']:9.0f} rows/s"
            f"  speedup {r['speedup']:6.2f}x",
            flush=True,
        )

    jit = _compare_jit(4000, 64 if args.quick else 128, repeats=repeats)
    if jit is not None:
        results.append(jit)
        print(
            f"d= 4000  jit {jit['jit_rows_per_s']:9.0f} rows/s"
            f"  numpy {jit['numpy_rows_per_s']:9.0f} rows/s"
            f"  jit_vs_numpy {jit['speedup']:6.2f}x",
            flush=True,
        )
    else:
        print("jit_vs_numpy: skipped (numba not installed)", flush=True)

    from conftest import bench_environment  # benchmarks/ is sys.path[0]

    payload = {
        "benchmark": "core_update",
        "quick": args.quick,
        "config": {"n_components": 8, "alpha": 0.999, "repeats": repeats},
        "jit": _kernels.jit_status(),
        "results": results,
        **bench_environment(),
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
