"""Benchmark PERF-CORE — the per-tuple update microbenchmarks.

Section III-A.2 claims the stateful operator's per-tuple work is
"computationally inexpensive algebraic operations"; Section III-D keeps
d = 250 "to decrease the influence of SVD computation speed".  These
microbenchmarks measure the real Python operator's per-update cost across
the paper's dimensional range, the merge step (the "most
computation-intensive operation" triggered by sync), and the gap-filling
path — the numbers that calibrate the cluster simulator.
"""

import numpy as np
import pytest

from repro.core import (
    Eigensystem,
    RobustIncrementalPCA,
    fill_from_basis,
    merge_pair,
)
from repro.data import PlantedSubspaceModel


def _warm_estimator(dim: int, p: int, seed: int = 0):
    model = PlantedSubspaceModel(
        dim=dim,
        signal_variances=tuple(float(v) for v in range(p + 4, 4, -1)),
        noise_std=0.3,
        seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    est = RobustIncrementalPCA(p, alpha=0.999, init_size=max(2 * p, 16))
    est.partial_fit(model.sample(est.init_size + 50, rng))
    return est, model, rng


@pytest.mark.parametrize("dim", [250, 500, 1000, 2000])
def test_update_cost_vs_dimension(benchmark, dim):
    """Per-tuple robust update across the paper's Fig. 7 dimensions."""
    est, model, rng = _warm_estimator(dim, p=8)
    block = model.sample(4096, rng)
    idx = iter(np.resize(np.arange(block.shape[0]), 1 << 20))

    def one_update():
        est.update(block[next(idx)])

    benchmark(one_update)


@pytest.mark.parametrize("p", [4, 8, 16, 32])
def test_update_cost_vs_components(benchmark, p):
    """Per-tuple robust update as the retained rank grows."""
    est, model, rng = _warm_estimator(500, p=p)
    block = model.sample(4096, rng)
    idx = iter(np.resize(np.arange(block.shape[0]), 1 << 20))

    def one_update():
        est.update(block[next(idx)])

    benchmark(one_update)


def test_outlier_rejection_is_cheap(benchmark):
    """A rejected outlier skips the eigensolve — near-free (§II claims)."""
    est, model, rng = _warm_estimator(1000, p=8)
    junk = 50.0 * rng.standard_normal(1000)

    def one_outlier():
        est.update(junk)

    benchmark(one_outlier)
    assert est.n_outliers > 0


def test_merge_cost(benchmark):
    """The sync-time merge: eigensolve of the 2p(+1)-column factor."""
    est1, model, rng = _warm_estimator(1000, p=8, seed=1)
    est2, _, _ = _warm_estimator(1000, p=8, seed=2)
    s1, s2 = est1.public_state(), est2.public_state()

    benchmark(lambda: merge_pair(s1, s2, 8))


def test_gap_fill_cost(benchmark):
    """Masked least-squares patching of a 25%-gappy spectrum."""
    est, model, rng = _warm_estimator(1000, p=8)
    st: Eigensystem = est.state
    x = model.sample(1, rng)[0]
    mask = rng.random(1000) < 0.25
    x[mask] = np.nan

    benchmark(lambda: fill_from_basis(x, st.mean, st.basis))
