"""Benchmark BASELINES — streaming vs the offline alternatives.

The paper's introduction positions streaming PCA against (a) offline
batch solves and (b) MapReduce-style partition-parallel batch jobs.
This bench fits all of them on the same contaminated dataset and
compares accuracy and wall time, plus the sliding-window variant's
hard-expiry behaviour under a regime change.
"""

import time

import numpy as np

from repro.core import (
    BatchRobustPCA,
    RobustIncrementalPCA,
    SlidingWindowPCA,
    largest_principal_angle,
)
from repro.data import PlantedSubspaceModel, contaminate_block
from repro.experiments.common import Table
from repro.parallel import mapreduce_pca


def test_streaming_vs_offline_baselines(benchmark):
    model = PlantedSubspaceModel(
        dim=150,
        signal_variances=(25.0, 16.0, 9.0, 4.0),
        noise_std=0.5,
        seed=19,
    )
    rng = np.random.default_rng(2)
    x, _ = contaminate_block(model.sample(10_000, rng), 0.05, 25.0, rng)

    def run_all():
        rows = []

        start = time.perf_counter()
        stream = RobustIncrementalPCA(4, alpha=0.999).partial_fit(x)
        rows.append(
            ["streaming robust (this paper)",
             largest_principal_angle(stream.state.basis[:, :4], model.basis),
             time.perf_counter() - start]
        )

        start = time.perf_counter()
        batch = BatchRobustPCA(4).fit(x)
        rows.append(
            ["offline batch robust (Maronna)",
             largest_principal_angle(batch.components_.T, model.basis),
             time.perf_counter() - start]
        )

        start = time.perf_counter()
        mr = mapreduce_pca(x, 4, n_partitions=8, robust=True)
        rows.append(
            ["map-reduce robust (8 partitions)",
             largest_principal_angle(mr.state.basis, model.basis),
             time.perf_counter() - start]
        )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(
        Table(
            "BASELINES: accuracy & wall time on 10k x 150, 5% outliers",
            ["method", "angle to truth (rad)", "seconds"],
            [[r[0], round(r[1], 4), round(r[2], 2)] for r in rows],
        ).render()
    )
    # Everyone solves the robust problem...
    assert all(r[1] < 0.15 for r in rows)


def test_window_vs_damping_regime_change(benchmark):
    """Hard expiry (window) vs soft down-weighting (damping, the paper's
    α) after an abrupt subspace change."""
    d = 60
    rng = np.random.default_rng(3)
    regime_a = rng.standard_normal((4000, d)) * np.array(
        [6.0, 4.0] + [0.3] * (d - 2)
    )
    regime_b = rng.standard_normal((4000, d)) * np.array(
        [0.3, 0.3, 6.0, 4.0] + [0.3] * (d - 4)
    )
    truth_b = np.eye(d)[:, 2:4]

    def run_both():
        damping = RobustIncrementalPCA(2, alpha=0.999)
        window = SlidingWindowPCA(2, block_size=400, window_blocks=4)
        for x in np.vstack([regime_a, regime_b]):
            damping.update(x)
            window.update(x)
        return (
            largest_principal_angle(damping.state.basis[:, :2], truth_b),
            largest_principal_angle(window.state().basis, truth_b),
        )

    ang_damping, ang_window = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    print()
    print(
        Table(
            "WINDOW vs DAMPING: angle to the new regime after a switch",
            ["estimator", "angle (rad)"],
            [
                ["damping alpha=0.999 (N=1000)", round(ang_damping, 4)],
                ["sliding window (1600 obs)", round(ang_window, 4)],
            ],
        ).render()
    )
    # Both adapt; the hard window fully expired the old regime.
    assert ang_window < 0.15
    assert ang_damping < 0.5
