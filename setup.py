"""Setup shim: enables legacy editable installs in offline environments
(no `wheel` package available); all metadata lives in pyproject.toml."""
from setuptools import setup

setup()
