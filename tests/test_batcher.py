"""Tests for the Batcher/Unbatcher operators, their telemetry, and the
batched parallel-PCA pipeline."""

import numpy as np
import pytest

from repro.data import PlantedSubspaceModel, VectorStream
from repro.parallel import ParallelStreamingPCA
from repro.streams import (
    BLOCK_SCHEMA,
    Batcher,
    CollectingSink,
    FusionPlan,
    Graph,
    StreamTuple,
    SynchronousEngine,
    Telemetry,
    TelemetryConfig,
    ThreadedEngine,
    Unbatcher,
    VectorSource,
)


def wire(op):
    out = []
    op.bind(lambda tup, port: out.append((tup, port)))
    return out


def feed_rows(op, n, d=4, start_seq=0):
    for i in range(n):
        op._dispatch(
            StreamTuple.data(x=np.full(d, float(start_seq + i)),
                             seq=start_seq + i),
            0,
        )


class TestBatcher:
    def test_size_flush(self):
        b = Batcher("b", batch_size=4)
        out = wire(b)
        feed_rows(b, 10)
        assert len(out) == 2
        for tup, port in out:
            assert port == 0
            assert tup["xs"].shape == (4, 4)
            assert tup["count"] == 4
        # Row order and seq alignment survive batching.
        assert list(out[0][0]["seqs"]) == [0, 1, 2, 3]
        assert out[1][0]["xs"][0, 0] == 4.0
        assert b.flush_counts["size"] == 2
        assert b.rows_in == 10
        assert b.batches_out == 2

    def test_punctuation_flushes_remainder(self):
        b = Batcher("b", batch_size=8)
        out = wire(b)
        feed_rows(b, 5)
        assert out == []
        b._dispatch(StreamTuple.punctuation(), 0)
        data = [t for t, _ in out if t.is_data]
        punct = [t for t, _ in out if t.is_punctuation]
        assert len(data) == 1 and data[0]["count"] == 5
        assert len(punct) == 1
        # Remainder flushed BEFORE the punctuation propagates.
        assert out[0][0].is_data and out[1][0].is_punctuation
        assert b.flush_counts["punctuation"] == 1

    def test_control_flushes_then_forwards(self):
        b = Batcher("b", batch_size=8)
        out = wire(b)
        feed_rows(b, 3)
        ctl = StreamTuple.control(type="sync")
        b._dispatch(ctl, 0)
        assert len(out) == 2
        assert out[0][0].is_data and out[0][0]["count"] == 3
        assert out[1][0] is ctl
        assert b.flush_counts["control"] == 1

    def test_timeout_flush_is_lazy(self):
        clock = {"t": 0.0}
        b = Batcher("b", batch_size=100, timeout_s=1.0,
                    clock=lambda: clock["t"])
        out = wire(b)
        feed_rows(b, 3)
        assert out == []
        clock["t"] = 2.0  # deadline passed; next arrival triggers flush
        feed_rows(b, 1, start_seq=3)
        assert len(out) == 1
        assert out[0][0]["count"] == 3
        assert b.flush_counts["timeout"] == 1
        # The triggering row starts the next batch.
        b._dispatch(StreamTuple.punctuation(), 0)
        assert out[1][0]["count"] == 1
        assert list(out[1][0]["seqs"]) == [3]

    def test_achieved_batch_size(self):
        b = Batcher("b", batch_size=4)
        wire(b)
        feed_rows(b, 9)
        b._dispatch(StreamTuple.punctuation(), 0)
        # Flushes of 4, 4, 1 -> mean 3.
        assert b.achieved_batch_size() == pytest.approx(3.0)

    def test_empty_stream_no_empty_block(self):
        b = Batcher("b", batch_size=4)
        out = wire(b)
        b._dispatch(StreamTuple.punctuation(), 0)
        assert all(t.is_punctuation for t, _ in out)
        assert b.batches_out == 0

    def test_dimension_change_raises(self):
        b = Batcher("b", batch_size=4)
        wire(b)
        feed_rows(b, 1, d=4)
        with pytest.raises(ValueError, match="dim changed"):
            b._dispatch(StreamTuple.data(x=np.zeros(5), seq=1), 0)

    def test_block_schema_validates(self):
        BLOCK_SCHEMA.validate(
            {"xs": np.zeros((2, 3)), "seqs": np.zeros(2), "count": 2}
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            Batcher("b", batch_size=0)
        with pytest.raises(ValueError):
            Batcher("b", timeout_s=0.0)


class TestUnbatcher:
    def test_roundtrip(self):
        b = Batcher("b", batch_size=4)
        u = Unbatcher("u")
        blocks = wire(b)
        rows = wire(u)
        feed_rows(b, 10)
        b._dispatch(StreamTuple.punctuation(), 0)
        for tup, _ in blocks:
            u._dispatch(tup, 0)
        data = [t for t, _ in rows if t.is_data]
        assert len(data) == 10
        assert [t["seq"] for t in data] == list(range(10))
        assert all(t["x"].shape == (4,) for t in data)

    def test_passthrough_non_blocks(self):
        u = Unbatcher("u")
        rows = wire(u)
        t = StreamTuple.data(x=np.zeros(3), seq=0)
        u._dispatch(t, 0)
        assert rows[0][0] is t


class TestBatcherTelemetry:
    def test_gauges_and_flush_counters(self):
        rng = np.random.default_rng(0)
        g = Graph("batched")
        src = g.add(
            VectorSource(
                "src", VectorStream.from_array(rng.standard_normal((25, 6)))
            )
        )
        b = g.add(Batcher("batcher", batch_size=10))
        sink = g.add(CollectingSink("sink"))
        g.connect(src, b)
        g.connect(b, sink)

        tel = Telemetry(TelemetryConfig(metrics=True))
        tel.attach_graph(g)
        SynchronousEngine(g).run()

        assert tel.metrics.value(
            "repro_batch_achieved_size", operator="batcher"
        ) == pytest.approx(25 / 3)
        assert tel.metrics.value(
            "repro_batch_flush_total", operator="batcher", reason="size"
        ) == 2
        assert tel.metrics.value(
            "repro_batch_flush_total",
            operator="batcher",
            reason="punctuation",
        ) == 1


class TestBatchedParallelPipeline:
    @pytest.mark.parametrize("runtime", ["synchronous", "threaded"])
    def test_batched_run_matches_unbatched_subspace(self, runtime):
        model = PlantedSubspaceModel(dim=40, seed=3)
        x = model.sample(1200, np.random.default_rng(5))
        results = {}
        for batch in (0, 32):
            runner = ParallelStreamingPCA(
                4,
                n_engines=2,
                alpha=0.999,
                runtime=runtime,
                split_strategy="round_robin",
                batch_size=batch,
            )
            results[batch] = runner.run(VectorStream.from_array(x))
        a = results[0].components
        b = results[32].components
        overlap = np.linalg.svd(a @ b.T, compute_uv=False)
        assert overlap.min() >= 0.98
        # Row accounting: every observation reached exactly one engine.
        for res in results.values():
            assert (
                sum(r["n_local_rows"] for r in res.engine_reports) == 1200
            )

    def test_batched_diagnostics_preserve_outlier_seqs(self):
        model = PlantedSubspaceModel(dim=30, seed=7)
        rng = np.random.default_rng(8)
        x = model.sample(900, rng)
        bad = [200, 450, 700]
        x[bad] += 60.0 * rng.standard_normal((len(bad), 30))

        seqs = {}
        for batch in (0, 16):
            runner = ParallelStreamingPCA(
                3,
                n_engines=1,
                alpha=0.999,
                batch_size=batch,
            )
            result = runner.run(VectorStream.from_array(x))
            seqs[batch] = set(result.outlier_seqs().tolist())
        assert set(bad) <= seqs[16]
        assert seqs[0] == seqs[16]

    def test_batcher_counters_exposed_on_app(self):
        model = PlantedSubspaceModel(dim=20, seed=1)
        x = model.sample(300, np.random.default_rng(2))
        runner = ParallelStreamingPCA(
            3, n_engines=2, batch_size=25, collect_diagnostics=False
        )
        app = runner.build(VectorStream.from_array(x))
        SynchronousEngine(app.graph).run()
        assert app.batcher is not None
        assert app.batcher.rows_in == 300
        assert app.batcher.achieved_batch_size() == pytest.approx(25.0)


class TestThrottleBlockDrainShutdown:
    """Satellite: Throttle(mode='block') sleeping inside a PE thread must
    not stall the ThreadedEngine's two-phase drain shutdown or lose the
    in-flight control (sync) tuple queued behind the sleep."""

    def _graph(self, n_rows, rate_hz):
        from repro.streams import Source

        rng = np.random.default_rng(0)
        rows = rng.standard_normal((n_rows, 4))
        items = [
            StreamTuple.data(x=rows[i], seq=i) for i in range(n_rows)
        ]
        # A sync-style control tuple rides at the very end of the stream:
        # it must survive the blocked throttle and reach the sink.
        items.append(StreamTuple.control(type="sync", epoch=1))

        from repro.streams import Throttle

        g = Graph("throttle-drain")
        src = g.add(Source("src", items))
        thr = g.add(
            Throttle("thr", rate_hz=rate_hz, mode="block")
        )
        sink = g.add(CollectingSink("sink"))
        g.connect(src, thr)
        g.connect(thr, sink)
        return g, thr, sink

    def test_blocked_throttle_completes_drain_without_loss(self):
        n_rows = 30
        # ~0.3 s of enforced sleeping spread over the run: enough to have
        # tuples in flight at punctuation time, small enough for CI.
        g, thr, sink = self._graph(n_rows, rate_hz=100.0)
        stats = ThreadedEngine(
            g, fusion=FusionPlan.per_operator(g)
        ).run(timeout_s=30.0)
        data = [t for t in sink.tuples if t.is_data]
        ctl = [t for t in sink.tuples if t.is_control]
        assert len(data) == n_rows  # no tuple dropped at shutdown
        assert len(ctl) == 1 and ctl[0]["type"] == "sync"
        assert thr.n_dropped == 0
        assert thr.n_forwarded == n_rows + 1
        assert stats.wall_time_s < 30.0

    def test_blocked_throttle_fused_with_sink(self):
        """Same guarantee when the throttle is fused into one PE with
        its consumer (sleep happens inside the fused dispatch)."""
        g, thr, sink = self._graph(20, rate_hz=100.0)
        stats = ThreadedEngine(
            g, fusion=FusionPlan.fuse_chains(g)
        ).run(timeout_s=30.0)
        assert len([t for t in sink.tuples if t.is_data]) == 20
        assert len([t for t in sink.tuples if t.is_control]) == 1
        assert thr.n_dropped == 0

    def test_blocked_throttle_quiesce_within_deadline(self):
        """A sleep in progress at quiesce time delays, but never stalls,
        the drain: total shutdown stays well under the engine timeout."""
        import time

        g, thr, sink = self._graph(10, rate_hz=50.0)
        start = time.perf_counter()
        ThreadedEngine(g, fusion=FusionPlan.per_operator(g)).run(
            timeout_s=30.0
        )
        elapsed = time.perf_counter() - start
        # 10 tuples at 50 Hz ≈ 0.2 s of throttling; anything close to
        # the 30 s timeout means the drain was stalled by the sleep.
        assert elapsed < 10.0
        assert len([t for t in sink.tuples if t.is_data]) == 10


class TestDrainTimeFlush:
    """Satellite: the tail of a quiet stream must exit at drain.

    The timeout flush is *lazy* — it fires on the next arrival — so rows
    buffered when the stream goes quiet are only released by the
    end-of-stream punctuation flush.  That release must happen on every
    engine, including across the process boundary."""

    N_ROWS = 7  # strictly fewer than batch_size: the whole stream is tail

    def _graph(self):
        rng = np.random.default_rng(1)
        rows = rng.standard_normal((self.N_ROWS, 4))
        g = Graph("drain-flush")
        src = g.add(VectorSource("src", VectorStream.from_array(rows)))
        b = g.add(Batcher("batch", batch_size=64, timeout_s=0.05))
        sink = g.add(CollectingSink("sink"))
        g.connect(src, b)
        g.connect(b, sink)
        return g, b, sink, rows

    def _check_sink(self, sink, rows):
        blocks = [t for t in sink.tuples if t.is_data]
        assert sum(t["count"] for t in blocks) == self.N_ROWS
        got = np.concatenate([t["xs"] for t in blocks])
        np.testing.assert_allclose(got, rows)
        seqs = np.concatenate([t["seqs"] for t in blocks])
        assert list(seqs) == list(range(self.N_ROWS))

    def test_threaded_engine_flushes_tail_at_drain(self):
        g, b, sink, rows = self._graph()
        ThreadedEngine(g, fusion=FusionPlan.per_operator(g)).run(
            timeout_s=30.0
        )
        self._check_sink(sink, rows)
        # Released by the punctuation flush — never dropped, never stuck
        # waiting for a timeout check that no further arrival triggers.
        assert b.flush_counts["punctuation"] == 1
        assert b.flush_counts["timeout"] == 0
        assert b.rows_in == self.N_ROWS

    def test_process_engine_flushes_tail_at_drain(self):
        from repro.streams import ProcessEngine

        g, b, sink, rows = self._graph()
        engine = ProcessEngine(g, mp_context="fork")
        assert engine.n_workers == 1  # the batcher is the worker PE
        engine.run(timeout_s=60.0)
        # The batcher's counters live in the worker; the sink (running
        # in the coordinator) proves the tail crossed the boundary.
        self._check_sink(sink, rows)
