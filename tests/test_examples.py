"""Every example script must run end-to-end (smoke tests).

Examples are executed in-process with their ``main()`` entry points so
failures produce real tracebacks and coverage counts them.
"""

import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path():
    sys.path.insert(0, str(EXAMPLES))
    yield
    sys.path.remove(str(EXAMPLES))


def test_quickstart_runs(capsys):
    import quickstart

    quickstart.main()
    out = capsys.readouterr().out
    assert "robust estimate" in out
    assert "outlier detection" in out


def test_galaxy_pipeline_runs(tmp_path, capsys):
    import galaxy_spectra_pipeline

    galaxy_spectra_pipeline.main(str(tmp_path))
    out = capsys.readouterr().out
    assert "eigenspectrum roughness" in out
    assert (tmp_path / "eigenspectra.csv").exists()


def test_parallel_streaming_runs(capsys):
    import parallel_streaming

    parallel_streaming.main()
    out = capsys.readouterr().out
    assert "global eigenvalues" in out
    assert "per-engine report" in out


def test_cluster_health_monitoring_runs(capsys):
    import cluster_health_monitoring

    cluster_health_monitoring.main()
    out = capsys.readouterr().out
    assert "monitoring 25 servers" in out
    assert "injected faults" in out


def test_simulate_testbed_runs(capsys):
    import simulate_testbed

    simulate_testbed.main(full=False)
    out = capsys.readouterr().out
    assert "FIG6" in out
    assert "FIG7" in out


def test_live_stream_monitoring_runs(capsys):
    import live_stream_monitoring

    live_stream_monitoring.main()
    out = capsys.readouterr().out
    assert "DRIFT ALARM" in out
    assert "detection delay" in out


def test_serving_quickstart_runs(capsys):
    import serving_quickstart

    serving_quickstart.main()
    out = capsys.readouterr().out
    assert "serving two tenants" in out
    assert "snapshot v1 published" in out
    assert "outlier flags" in out
    assert "serving quickstart done" in out
