"""Cross-module integration tests: the full pipelines a user would run."""

import numpy as np
import pytest

from repro.core import (
    BatchRobustPCA,
    NormalizationError,
    RobustIncrementalPCA,
    largest_principal_angle,
    principal_angles,
    unit_mean_flux,
)
from repro.data import (
    ClusterTelemetryModel,
    GalaxySpectrumModel,
    PlantedSubspaceModel,
    VectorStream,
    WavelengthGrid,
    shuffled,
)
from repro.io.checkpoint import CheckpointStore
from repro.io.csvio import write_vectors_csv
from repro.parallel import ParallelStreamingPCA
from repro.streams import (
    CheckpointSink,
    CSVFileSource,
    Graph,
    SynchronousEngine,
)
from repro.parallel.pca_operator import StreamingPCAOperator
from repro.streams.operators import Sink


class TestGalaxyPipeline:
    """The paper's headline use case, end to end: gappy, noisy,
    brightness-scattered galaxy spectra → converged eigenspectra."""

    def test_streaming_matches_batch_robust_reference(self):
        model = GalaxySpectrumModel(
            grid=WavelengthGrid(n_bins=150),
            z_max=0.1,
            dropout_rate=0.1,
            outlier_rate=0.02,
            seed=21,
        )
        rng = np.random.default_rng(1)
        sample = model.sample(2500, rng)

        est = RobustIncrementalPCA(
            3, extra_components=2, alpha=0.9995, init_size=30
        )
        normalized_complete = []
        for flux in shuffled(sample.flux, np.random.default_rng(2)):
            try:
                x = unit_mean_flux(flux)
            except NormalizationError:
                continue
            est.update(x)
            if np.all(np.isfinite(x)) and len(normalized_complete) < 1500:
                normalized_complete.append(x)

        # Offline robust reference on the complete subset.
        complete = np.asarray(normalized_complete)
        reference = BatchRobustPCA(3).fit(complete)
        angles = principal_angles(
            est.state.basis[:, :3], reference.components_.T
        )
        # The dominant eigenspectrum is pinned down precisely; trailing
        # eigenvalues are near-degenerate (λ2 ≈ λ3), so individual
        # trailing directions are ill-determined — compare *function*,
        # not vectors: reconstruction error within a whisker of batch.
        assert angles[0] < 0.1
        y = complete - reference.mean_
        err_ref = np.mean(
            np.sum((y - (y @ reference.components_.T)
                    @ reference.components_) ** 2, axis=1)
        )
        basis = est.state.basis[:, :3]
        y2 = complete - est.state.mean
        err_stream = np.mean(
            np.sum((y2 - (y2 @ basis) @ basis.T) ** 2, axis=1)
        )
        assert err_stream < 1.2 * err_ref

    def test_csv_to_checkpoint_graph(self, tmp_path, rng):
        """File source → PCA operator → checkpoint sink, on the graph
        runtime (the paper's Fig. 2 I/O path)."""
        model = PlantedSubspaceModel(dim=20, seed=9)
        x = model.sample(400, rng)
        csv_path = tmp_path / "stream.csv"
        write_vectors_csv(csv_path, x)

        g = Graph("io-pipeline")
        src = g.add(CSVFileSource("src", csv_path))
        est = RobustIncrementalPCA(3, alpha=0.99, init_size=20)
        pca = g.add(
            StreamingPCAOperator(
                "pca", 0, est, snapshot_every=100, emit_diagnostics=False
            )
        )
        store = CheckpointStore(tmp_path / "ckpts", every=100)
        sink = g.add(CheckpointSink("ck", store))

        class Devnull(Sink):
            def consume(self, tup, port):
                pass

        ctl = g.add(Devnull("ctl-sink"))
        g.connect(src, pca, in_port=0)
        g.connect(pca, ctl, out_port=0)
        g.connect(pca, sink, out_port=1)
        SynchronousEngine(g).run()

        history = store.load_history()
        assert len(history) >= 3
        final = history[-1][1]
        assert largest_principal_angle(
            final.basis[:, :3], model.basis
        ) < 0.25
        # Convergence history is monotone-ish: last better than first.
        first = history[0][1]
        assert largest_principal_angle(
            final.basis[:, :3], model.basis
        ) <= largest_principal_angle(first.basis[:, :3], model.basis) + 1e-9


class TestClusterHealthMonitoring:
    """The conclusion's monitoring use case: telemetry anomalies surface
    as residual spikes of the streaming robust PCA."""

    def test_faults_raise_scaled_residuals(self):
        model = ClusterTelemetryModel(n_servers=10, fault_rate=0.0, seed=31)
        rng = np.random.default_rng(7)
        est = RobustIncrementalPCA(3, alpha=0.995, init_size=40)

        # Learn the healthy regime.
        for x in model.stream(2500, rng):
            est.update(x)

        # Now inject faults and watch the residuals.
        model.fault_rate = 0.02
        healthy_t, faulty_t = [], []
        step0 = model._step
        for x in model.stream(800, rng):
            res = est.update(x)
            if res is None:
                continue
            in_fault = any(
                ev.step <= model._step < ev.step + ev.duration
                for ev in model.faults
            )
            (faulty_t if in_fault else healthy_t).append(res.scaled_residual)
        assert model.faults, "no faults injected"
        assert faulty_t and healthy_t
        assert np.median(faulty_t) > 5 * np.median(healthy_t)

    def test_parallel_monitoring_pipeline(self):
        model = ClusterTelemetryModel(n_servers=8, fault_rate=0.005, seed=32)
        rng = np.random.default_rng(8)
        x = np.vstack(list(model.stream(3000, rng)))
        runner = ParallelStreamingPCA(
            3, n_engines=3, alpha=0.995, split_seed=3
        )
        result = runner.run(VectorStream.from_array(x))
        # Flags exist and correlate with fault windows.
        flagged = result.outlier_seqs()
        fault_steps = set(model.fault_steps().tolist())
        if flagged.size:
            hits = sum(1 for s in flagged if (s + 1) in fault_steps)
            assert hits / flagged.size > 0.5


class TestEpochReplay:
    def test_multi_epoch_refines_solution(self, rng):
        model = GalaxySpectrumModel(
            grid=WavelengthGrid(n_bins=120), dropout_rate=0.0,
            outlier_rate=0.0, z_max=0.05, seed=41,
        )
        sample = model.sample(600, rng)
        x = np.vstack([unit_mean_flux(f) for f in sample.flux])
        _, truth, _ = model.ground_truth_basis(2, n_mc=1000)

        est = RobustIncrementalPCA(2, alpha=0.999, init_size=30)
        angles = []
        for epoch in range(3):
            for row in shuffled(x, np.random.default_rng(epoch)):
                est.update(row)
            # Only the dominant eigenspectrum is well-separated (the
            # galaxy manifold's λ1/λ2 ratio is ~60); track that one.
            angles.append(
                float(principal_angles(est.state.basis[:, :2], truth)[0])
            )
        assert angles[-1] <= angles[0] + 0.02
        assert angles[-1] < 0.1
