"""Tests for the sliding-window PCA (block-merge strategy)."""

import numpy as np
import pytest

from repro.core import (
    BatchPCA,
    SlidingWindowPCA,
    largest_principal_angle,
)
from repro.data import PlantedSubspaceModel


class TestSlidingWindowPCA:
    def test_matches_batch_over_window(self, small_model, rng):
        x = small_model.sample(4000, rng)
        win = SlidingWindowPCA(
            3, block_size=250, window_blocks=4, robust=False
        )
        win.partial_fit(x)
        # Window covers exactly the last 1000 observations.
        batch = BatchPCA(3).fit(x[-1000:])
        state = win.state()
        assert largest_principal_angle(
            state.basis, batch.components_.T
        ) < 0.1
        assert np.allclose(
            state.eigenvalues, batch.eigenvalues_, rtol=0.15
        )

    def test_hard_expiry_of_old_regime(self, rng):
        """Data before the window must contribute nothing — the property
        damping cannot give."""
        d = 20
        regime_a = rng.standard_normal((2000, d)) * np.array(
            [6.0] + [0.2] * (d - 1)
        )
        regime_b = rng.standard_normal((2000, d)) * np.array(
            [0.2, 6.0] + [0.2] * (d - 2)
        )
        win = SlidingWindowPCA(
            1, block_size=200, window_blocks=3, robust=False
        )
        win.partial_fit(regime_a)
        win.partial_fit(regime_b)
        top = win.state().basis[:, 0]
        assert abs(top[1]) > 0.99  # regime B only
        assert abs(top[0]) < 0.05  # regime A fully expired

    def test_window_size_property(self):
        win = SlidingWindowPCA(2, block_size=100, window_blocks=5)
        assert win.window_size == 500

    def test_current_partial_block_contributes(self, small_model, rng):
        win = SlidingWindowPCA(
            2, block_size=1000, window_blocks=2, robust=False,
            estimator_kwargs={"init_size": 10},
        )
        win.partial_fit(small_model.sample(200, rng))  # < one block
        state = win.state()  # must not raise
        assert state.n_components >= 1

    def test_empty_window_raises(self):
        win = SlidingWindowPCA(2, block_size=100, window_blocks=2)
        with pytest.raises(RuntimeError, match="window is empty"):
            win.state()

    def test_robust_window_resists_outliers(self, small_model, rng):
        win = SlidingWindowPCA(
            3, block_size=400, window_blocks=3, robust=True,
        )
        for i, x in enumerate(small_model.stream(2400, rng)):
            if i % 25 == 0:
                x = 30.0 * rng.standard_normal(40)
            win.update(x)
        assert largest_principal_angle(
            win.state().basis, small_model.basis
        ) < 0.2

    def test_accessor_properties(self, small_model, rng):
        win = SlidingWindowPCA(2, block_size=100, window_blocks=2,
                               robust=False)
        win.partial_fit(small_model.sample(500, rng))
        assert win.components_.shape == (2, 40)
        assert win.eigenvalues_.shape == (2,)
        assert win.mean_.shape == (40,)
        assert win.n_seen == 500

    def test_validation(self):
        with pytest.raises(ValueError, match="n_components"):
            SlidingWindowPCA(0)
        with pytest.raises(ValueError, match="block_size"):
            SlidingWindowPCA(2, block_size=2)
        with pytest.raises(ValueError, match="window_blocks"):
            SlidingWindowPCA(2, window_blocks=0)
