"""Tests for live sources (TCP, tailing file) and the fusion optimizer."""

import threading
import time

import numpy as np
import pytest

from repro.data import VectorStream
from repro.streams import (
    CollectingSink,
    Functor,
    Graph,
    SynchronousEngine,
    TailingFileSource,
    TCPVectorSource,
    ThreadedEngine,
    VectorSource,
    optimize_fusion,
    serve_vectors,
)


class TestTCPVectorSource:
    def test_streams_vectors_over_socket(self, rng):
        x = rng.standard_normal((20, 5))
        port, thread = serve_vectors(x)
        g = Graph("tcp")
        src = g.add(TCPVectorSource("tcp-src", "127.0.0.1", port))
        sink = g.add(CollectingSink("sink"))
        g.connect(src, sink)
        SynchronousEngine(g).run()
        thread.join(timeout=5)
        got = np.vstack([t["x"] for t in sink.tuples])
        assert np.allclose(got, x)
        assert [t["seq"] for t in sink.tuples] == list(range(20))

    def test_nan_cells_become_gaps(self):
        x = np.array([[1.0, np.nan, 3.0]])
        port, thread = serve_vectors(x)
        src = TCPVectorSource("tcp-src", "127.0.0.1", port)
        tuples = list(src.generate())
        thread.join(timeout=5)
        assert np.isnan(tuples[0]["x"][1])

    def test_slow_feeder(self, rng):
        x = rng.standard_normal((5, 3))
        port, thread = serve_vectors(x, delay_s=0.02)
        src = TCPVectorSource("tcp-src", "127.0.0.1", port)
        assert len(list(src.generate())) == 5
        thread.join(timeout=5)

    def test_connect_failure(self):
        src = TCPVectorSource(
            "tcp-src", "127.0.0.1", 1, connect_timeout_s=0.2
        )
        with pytest.raises(OSError):
            list(src.generate())


class TestTailingFileSource:
    def test_follows_growing_file(self, tmp_path, rng):
        path = tmp_path / "feed.csv"
        path.write_text("")
        x = rng.standard_normal((10, 4))

        def writer():
            with path.open("a") as fh:
                for row in x:
                    fh.write(",".join(repr(float(v)) for v in row) + "\n")
                    fh.flush()
                    time.sleep(0.01)
                fh.write("__END__\n")

        t = threading.Thread(target=writer, daemon=True)
        src = TailingFileSource("tail", path, poll_interval_s=0.005)
        t.start()
        got = np.vstack([tup["x"] for tup in src.generate()])
        t.join(timeout=5)
        assert np.allclose(got, x)

    def test_idle_timeout_ends_stream(self, tmp_path):
        path = tmp_path / "feed.csv"
        path.write_text("1.0,2.0\n")
        src = TailingFileSource(
            "tail", path, poll_interval_s=0.01, idle_timeout_s=0.1
        )
        start = time.monotonic()
        tuples = list(src.generate())
        assert len(tuples) == 1
        assert time.monotonic() - start < 5.0

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TailingFileSource("tail", tmp_path / "nope.csv")

    def test_validation(self, tmp_path):
        path = tmp_path / "feed.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="poll_interval"):
            TailingFileSource("t", path, poll_interval_s=0.0)
        with pytest.raises(ValueError, match="idle_timeout"):
            TailingFileSource("t", path, idle_timeout_s=0.0)


class TestProfilingAndOptimizer:
    def _graph(self, n=400):
        g = Graph("opt")
        src = g.add(
            VectorSource("src", VectorStream.from_array(np.zeros((n, 4))))
        )

        def heavy(t):
            time.sleep(0.0002)
            return t

        f_light1 = g.add(Functor("light1", lambda t: t))
        f_heavy = g.add(Functor("heavy", heavy))
        f_light2 = g.add(Functor("light2", lambda t: t))
        sink = g.add(CollectingSink("sink"))
        g.connect(src, f_light1)
        g.connect(f_light1, f_heavy)
        g.connect(f_heavy, f_light2)
        g.connect(f_light2, sink)
        return g, f_heavy

    def test_profiling_attributes_exclusive_time(self):
        g, f_heavy = self._graph()
        stats = SynchronousEngine(g, profile=True).run()
        times = stats.processing_time_s
        assert times["heavy"] > 5 * times["light1"]
        assert times["heavy"] > 5 * times["light2"]

    def test_unprofiled_run_records_nothing(self):
        g, _ = self._graph(n=10)
        stats = SynchronousEngine(g).run()
        assert stats.processing_time_s == {}

    def test_optimizer_isolates_the_bottleneck(self):
        g, f_heavy = self._graph()
        stats = SynchronousEngine(g, profile=True).run()
        plan = optimize_fusion(g, stats, target_pes=2)
        heavy_pe = plan.pe_of(f_heavy)
        assert len(heavy_pe.operators) == 1  # the hot op stays alone
        # Light operators got fused somewhere (fewer PEs than operators).
        assert len(plan.pes) < len(g)

    def test_optimized_plan_runs(self):
        g, _ = self._graph(n=100)
        stats = SynchronousEngine(g, profile=True).run()
        # Fresh graph (the profiled one is consumed) with same names.
        g2, _ = self._graph(n=100)
        plan = optimize_fusion(g2, stats, target_pes=2)
        sink = next(op for op in g2 if op.name == "sink")
        ThreadedEngine(g2, fusion=plan).run(timeout_s=30)
        assert len(sink.tuples) == 100

    def test_requires_profiled_stats(self):
        g, _ = self._graph(n=10)
        stats = SynchronousEngine(g).run()
        with pytest.raises(ValueError, match="profile=True"):
            optimize_fusion(g, stats)

    def test_threaded_profiling(self):
        g, f_heavy = self._graph(n=100)
        stats = ThreadedEngine(g, profile=True).run(timeout_s=30)
        assert stats.processing_time_s["heavy"] > 0


class TestHTTPVectorSource:
    def _serve_http(self, body: bytes):
        import http.server
        import threading

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):
                self.send_response(200)
                self.send_header("Content-Type", "text/csv")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        server = http.server.HTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        return server, server.server_address[1]

    def test_fetches_csv_stream(self, rng):
        from repro.streams import HTTPVectorSource

        x = rng.standard_normal((8, 3))
        body = "\n".join(
            ",".join(repr(float(v)) for v in row) for row in x
        ).encode() + b"\n"
        server, port = self._serve_http(body)
        try:
            src = HTTPVectorSource(
                "http-src", f"http://127.0.0.1:{port}/feed.csv"
            )
            got = np.vstack([t["x"] for t in src.generate()])
            assert np.allclose(got, x)
        finally:
            server.shutdown()

    def test_end_marker_stops_stream(self):
        from repro.streams import HTTPVectorSource

        body = b"1.0,2.0\n__END__\n3.0,4.0\n"
        server, port = self._serve_http(body)
        try:
            src = HTTPVectorSource("h", f"http://127.0.0.1:{port}/x")
            assert len(list(src.generate())) == 1
        finally:
            server.shutdown()

    def test_rejects_non_http_url(self):
        from repro.streams import HTTPVectorSource

        with pytest.raises(ValueError, match="http"):
            HTTPVectorSource("h", "ftp://example/feed.csv")


class TestReconnect:
    """Sources survive connection flaps within the retry budget."""

    def test_tcp_reconnects_across_flaps(self, rng):
        from repro.streams import FlakyVectorServer

        x = rng.standard_normal((60, 4))
        server = FlakyVectorServer(
            x, flap_every=25, max_flaps=2, settle_s=0.05
        ).start()
        src = TCPVectorSource(
            "tcp-src", "127.0.0.1", server.port,
            max_retries=10, backoff_base_s=0.01,
        )
        tuples = list(src.generate())
        server.join(timeout=5)
        assert src.n_reconnects == 2
        seqs = [t["seq"] for t in tuples]
        assert len(set(seqs)) == len(seqs)  # no duplicates
        assert len(tuples) == 60  # settle window let the client drain
        assert np.allclose(np.vstack([t["x"] for t in tuples]), x)

    def test_retry_budget_exhaustion_raises(self):
        from repro.streams import FlakyVectorServer

        x = np.ones((30, 3))
        server = FlakyVectorServer(
            x, flap_every=5, max_flaps=1, settle_s=0.02
        ).start()
        src = TCPVectorSource(
            "tcp-src", "127.0.0.1", server.port,
            max_retries=0, backoff_base_s=0.01,
        )
        got = []
        with pytest.raises(OSError):
            for tup in src.generate():
                got.append(tup)
        assert len(got) == 5  # everything before the reset was delivered

    def test_connect_retries_until_listener_appears(self, rng):
        import socket as socket_mod

        x = rng.standard_normal((6, 3))
        server = socket_mod.socket(
            socket_mod.AF_INET, socket_mod.SOCK_STREAM
        )
        server.setsockopt(
            socket_mod.SOL_SOCKET, socket_mod.SO_REUSEADDR, 1
        )
        server.bind(("127.0.0.1", 0))  # bound but NOT listening yet
        port = server.getsockname()[1]

        def serve_late():
            time.sleep(0.2)
            server.listen(1)
            conn, _ = server.accept()
            with conn, conn.makefile("w", encoding="utf-8") as writer:
                for row in x:
                    writer.write(
                        ",".join(repr(float(v)) for v in row) + "\n"
                    )
                writer.write("__END__\n")
            server.close()

        t = threading.Thread(target=serve_late, daemon=True)
        t.start()
        src = TCPVectorSource(
            "tcp-src", "127.0.0.1", port,
            connect_timeout_s=1.0, max_retries=20, backoff_base_s=0.02,
        )
        got = np.vstack([tup["x"] for tup in src.generate()])
        t.join(timeout=5)
        assert np.allclose(got, x)
        # Pre-connect retries are not "reconnects": nothing was lost.
        assert src.n_reconnects == 0

    def test_zero_retries_fails_fast(self):
        src = TCPVectorSource(
            "tcp-src", "127.0.0.1", 1,
            connect_timeout_s=0.2, max_retries=0,
        )
        start = time.monotonic()
        with pytest.raises(OSError):
            list(src.generate())
        assert time.monotonic() - start < 2.0

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            TCPVectorSource("t", "127.0.0.1", 1, max_retries=-1)


class TestMalformedLines:
    """Unparsable input goes to the dead-letter queue, not up the stack."""

    def _feed(self, tmp_path, lines):
        path = tmp_path / "feed.csv"
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_tailing_source_quarantines_garbage(self, tmp_path):
        path = self._feed(
            tmp_path,
            ["1.0,2.0", "1.0,banana", "3.0,4.0", "__END__"],
        )
        src = TailingFileSource("tail", path, idle_timeout_s=1.0)
        tuples = list(src.generate())
        assert len(tuples) == 2
        assert [t["seq"] for t in tuples] == [0, 1]
        assert src.n_quarantined == 1
        [rec] = src.dlq.records
        assert rec.payload == "1.0,banana"
        assert "unparsable" in rec.reason
        assert rec.seq == 2  # line number, for finding it in the feed

    def test_strict_mode_raises_instead(self, tmp_path):
        path = self._feed(tmp_path, ["nope", "__END__"])
        src = TailingFileSource(
            "tail", path, idle_timeout_s=1.0, strict=True
        )
        with pytest.raises(ValueError, match="unparsable"):
            list(src.generate())

    def test_tcp_source_quarantines_garbage(self):
        import socket as socket_mod

        server = socket_mod.socket(
            socket_mod.AF_INET, socket_mod.SOCK_STREAM
        )
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        port = server.getsockname()[1]

        def serve():
            conn, _ = server.accept()
            with conn, conn.makefile("w", encoding="utf-8") as writer:
                writer.write("1.0,2.0\ngarbage line\n3.0,4.0\n__END__\n")
            server.close()

        t = threading.Thread(target=serve, daemon=True)
        t.start()
        src = TCPVectorSource("tcp-src", "127.0.0.1", port)
        tuples = list(src.generate())
        t.join(timeout=5)
        assert len(tuples) == 2
        assert src.n_quarantined == 1
        assert src.dlq.records[0].payload == "garbage line"

    def test_dlq_counter_exported_via_collector(self, tmp_path):
        from repro.streams import Telemetry, TelemetryConfig

        path = self._feed(tmp_path, ["1.0,2.0", "bad", "__END__"])
        g = Graph("dlq")
        src = g.add(TailingFileSource("tail", path, idle_timeout_s=1.0))
        sink = g.add(CollectingSink("sink"))
        g.connect(src, sink)
        tel = Telemetry(TelemetryConfig())
        tel.attach_graph(g)
        SynchronousEngine(g).run()
        samples = {
            s["name"]: s.get("value") for s in tel.metrics.snapshot()
        }
        assert samples.get("repro_dlq_total") == 1


class TestHTTPReconnect:
    def test_reset_body_resumes_without_duplicates(self, rng):
        # A raw socket server, because http.server half-closes (FIN)
        # before closing, which reads as a clean short body; only a
        # hard RST mid-body surfaces as the OSError the source retries.
        import socket as socket_mod

        from repro.streams import HTTPVectorSource

        x = rng.standard_normal((6, 3))
        lines = [
            ",".join(repr(float(v)) for v in row).encode() + b"\n"
            for row in x
        ]
        body = b"".join(lines)
        server = socket_mod.socket(
            socket_mod.AF_INET, socket_mod.SOCK_STREAM
        )
        server.setsockopt(
            socket_mod.SOL_SOCKET, socket_mod.SO_REUSEADDR, 1
        )
        server.bind(("127.0.0.1", 0))
        server.listen(2)
        port = server.getsockname()[1]
        requests = []

        def serve():
            head = (
                b"HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n"
                % len(body)
            )
            for attempt in range(2):
                conn, _ = server.accept()
                conn.recv(65536)  # the GET; one read is enough
                requests.append(1)
                if attempt == 0:
                    conn.sendall(head + b"".join(lines[:3]))
                    time.sleep(0.1)  # let the client drain the rows
                    conn.setsockopt(
                        socket_mod.SOL_SOCKET,
                        socket_mod.SO_LINGER,
                        b"\x01\x00\x00\x00\x00\x00\x00\x00",
                    )
                    conn.close()  # RST: a failure, not a short body
                else:
                    conn.sendall(head + body)
                    conn.close()
            server.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        src = HTTPVectorSource(
            "http-src", f"http://127.0.0.1:{port}/feed",
            max_retries=3, backoff_base_s=0.01,
        )
        tuples = list(src.generate())
        thread.join(timeout=5)
        assert len(requests) == 2
        assert src.n_reconnects == 1
        # The re-GET replays the body; already-delivered rows are
        # skipped so downstream sees each observation exactly once.
        assert [t["seq"] for t in tuples] == list(range(6))
        assert np.allclose(np.vstack([t["x"] for t in tuples]), x)
