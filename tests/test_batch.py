"""Tests for the offline batch baselines (BatchPCA, BatchRobustPCA)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BatchPCA,
    BatchRobustPCA,
    largest_principal_angle,
    make_rho,
    mscale_fixed_point,
)
from repro.data import contaminate_block


class TestBatchPCA:
    def test_matches_numpy_svd(self, rng):
        x = rng.standard_normal((200, 15))
        pca = BatchPCA(5).fit(x)
        y = x - x.mean(axis=0)
        _, s, vt = np.linalg.svd(y, full_matrices=False)
        assert np.allclose(pca.eigenvalues_, (s[:5] ** 2) / 200)
        # Row spans agree.
        # arccos near 1.0 limits angle precision to ~sqrt(eps)
        assert largest_principal_angle(pca.components_.T, vt[:5].T) < 1e-6

    def test_recovers_planted_subspace(self, small_model, small_data):
        pca = BatchPCA(3).fit(small_data)
        assert largest_principal_angle(
            pca.components_.T, small_model.basis
        ) < 0.06

    def test_caps_components_at_rank(self, rng):
        x = rng.standard_normal((5, 20))
        pca = BatchPCA(10).fit(x)
        assert pca.components_.shape[0] <= 5

    def test_scale_is_mean_residual(self, rng):
        x = rng.standard_normal((500, 10))
        pca = BatchPCA(3).fit(x)
        y = x - pca.mean_
        recon = (y @ pca.components_.T) @ pca.components_
        expected = float(np.mean(np.sum((y - recon) ** 2, axis=1)))
        assert pca.scale_ == pytest.approx(expected)

    def test_rejects_nan(self, rng):
        x = rng.standard_normal((50, 5))
        x[3, 2] = np.nan
        with pytest.raises(ValueError, match="complete data"):
            BatchPCA(2).fit(x)

    def test_to_eigensystem(self, small_data):
        st_ = BatchPCA(3).fit(small_data).to_eigensystem()
        st_.validate()
        assert st_.n_components == 3


class TestMScaleFixedPoint:
    def test_solves_the_equation(self, rng):
        rho = make_rho("bisquare", c2=4.0)
        r2 = rng.chisquare(5, size=5000)
        sigma2 = mscale_fixed_point(r2, rho, 0.5)
        lhs = float(np.mean(rho.rho(r2 / sigma2)))
        assert lhs == pytest.approx(0.5, abs=1e-6)

    def test_scale_equivariance(self, rng):
        rho = make_rho("bisquare", c2=4.0)
        r2 = rng.chisquare(5, size=2000)
        s1 = mscale_fixed_point(r2, rho, 0.5)
        s2 = mscale_fixed_point(9.0 * r2, rho, 0.5)
        assert s2 == pytest.approx(9.0 * s1, rel=1e-8)

    def test_all_zero_residuals(self):
        rho = make_rho("bisquare")
        assert mscale_fixed_point(np.zeros(10), rho, 0.5) == 0.0

    def test_validation(self):
        rho = make_rho("bisquare")
        with pytest.raises(ValueError, match="non-empty"):
            mscale_fixed_point(np.zeros(0), rho, 0.5)
        with pytest.raises(ValueError, match="non-negative"):
            mscale_fixed_point(np.array([-1.0]), rho, 0.5)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        delta=st.floats(0.2, 0.8),
        scale=st.floats(0.01, 100.0),
    )
    def test_hypothesis_fixed_point_property(self, seed, delta, scale):
        rho = make_rho("bisquare", c2=3.0)
        r2 = scale * np.random.default_rng(seed).chisquare(4, size=500)
        sigma2 = mscale_fixed_point(r2, rho, delta)
        if sigma2 > 0:
            lhs = float(np.mean(rho.rho(r2 / sigma2)))
            assert lhs == pytest.approx(delta, abs=1e-5)


class TestBatchRobustPCA:
    def test_matches_classic_on_clean_data(self, small_model, small_data):
        robust = BatchRobustPCA(3).fit(small_data)
        classic = BatchPCA(3).fit(small_data)
        assert largest_principal_angle(
            robust.components_.T, classic.components_.T
        ) < 0.1
        assert np.allclose(
            robust.eigenvalues_, classic.eigenvalues_, rtol=0.2
        )

    def test_survives_contamination(self, small_model, small_data, rng):
        x, mask = contaminate_block(small_data, 0.1, 25.0, rng)
        robust = BatchRobustPCA(3).fit(x)
        classic = BatchPCA(3).fit(x)
        ang_r = largest_principal_angle(robust.components_.T, small_model.basis)
        ang_c = largest_principal_angle(classic.components_.T, small_model.basis)
        assert ang_r < 0.1
        assert ang_c > 0.5

    def test_weights_downweight_outliers(self, small_data, rng):
        x, mask = contaminate_block(small_data, 0.1, 25.0, rng)
        robust = BatchRobustPCA(3).fit(x)
        assert robust.weights_[mask].mean() < 0.05 * robust.weights_[~mask].mean()

    def test_converges(self, small_data):
        robust = BatchRobustPCA(3).fit(small_data)
        assert robust.converged_
        assert robust.n_iter_ < robust.max_iter

    def test_mean_is_robust(self, small_model, small_data, rng):
        x = small_data.copy()
        # Scattered gross junk (coherent point-mass contamination is
        # legitimately structure; see test_robust.py for that case).
        x[:200] = 25.0 * rng.standard_normal((200, 40))
        robust = BatchRobustPCA(3).fit(x)
        assert np.linalg.norm(robust.mean_ - small_model.mean) < 1.0

    def test_to_eigensystem(self, small_data):
        st_ = BatchRobustPCA(2).fit(small_data).to_eigensystem()
        st_.validate()
        assert st_.scale > 0
