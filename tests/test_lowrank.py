"""Tests for the low-rank Gram-matrix eigensolver and update factors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.lowrank import (
    build_merge_factor,
    build_update_factor,
    eigensystem_of_factor,
    rank_one_update,
)


def _dense_top_eig(c: np.ndarray, p: int):
    w, v = np.linalg.eigh(c)
    w, v = w[::-1], v[:, ::-1]
    return v[:, :p], np.clip(w[:p], 0, None)


class TestEigensystemOfFactor:
    def test_matches_dense_eigendecomposition(self, rng):
        a = rng.standard_normal((50, 6))
        e, lam = eigensystem_of_factor(a, 6)
        e_ref, lam_ref = _dense_top_eig(a @ a.T, 6)
        assert np.allclose(lam, lam_ref, rtol=1e-10)
        # Compare projectors (eigenvectors are sign/rotation ambiguous
        # only under degeneracy; random A has distinct eigenvalues).
        assert np.allclose(np.abs(np.sum(e * e_ref, axis=0)), 1.0, atol=1e-8)

    def test_orthonormal_output(self, rng):
        a = rng.standard_normal((30, 5))
        e, _ = eigensystem_of_factor(a, 5)
        assert np.allclose(e.T @ e, np.eye(5), atol=1e-10)

    def test_truncation(self, rng):
        a = rng.standard_normal((30, 8))
        e, lam = eigensystem_of_factor(a, 3)
        assert e.shape == (30, 3)
        assert lam.shape == (3,)
        # Descending order.
        assert np.all(np.diff(lam) <= 0)

    def test_rank_deficient_factor(self, rng):
        col = rng.standard_normal((20, 1))
        a = np.concatenate([col, 2 * col, -col], axis=1)  # rank 1
        e, lam = eigensystem_of_factor(a, 3)
        assert e.shape[1] == 1
        assert lam.shape == (1,)
        assert lam[0] == pytest.approx(np.sum(a * a), rel=1e-10)

    def test_zero_factor(self):
        e, lam = eigensystem_of_factor(np.zeros((10, 3)), 2)
        assert e.shape == (10, 0)
        assert lam.shape == (0,)

    def test_empty_factor(self):
        e, lam = eigensystem_of_factor(np.zeros((10, 0)), 2)
        assert e.shape == (10, 0)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            eigensystem_of_factor(np.zeros(5), 2)
        with pytest.raises(ValueError, match="p must be"):
            eigensystem_of_factor(np.zeros((5, 2)), 0)

    @settings(max_examples=30, deadline=None)
    @given(
        a=arrays(
            np.float64,
            st.tuples(st.integers(2, 15), st.integers(1, 6)),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    def test_hypothesis_eigenvalues_match_dense(self, a):
        e, lam = eigensystem_of_factor(a, a.shape[1])
        w = np.linalg.eigvalsh(a @ a.T)[::-1]
        assert np.allclose(lam, w[: lam.size], atol=1e-8 * max(1, w.max(initial=1)))
        # Reconstruction never exceeds the original quadratic form.
        assert lam.sum() <= np.sum(a * a) + 1e-8 * max(1.0, np.sum(a * a))


class TestBuildUpdateFactor:
    def test_encodes_covariance_recursion(self, rng):
        d, p = 20, 4
        basis, _ = np.linalg.qr(rng.standard_normal((d, p)))
        lam = np.array([9.0, 4.0, 2.0, 1.0])
        y = rng.standard_normal(d)
        gamma, nw = 0.95, 0.05
        a = build_update_factor(basis, lam, y, gamma, nw)
        c_expected = gamma * (basis * lam) @ basis.T + nw * np.outer(y, y)
        assert np.allclose(a @ a.T, c_expected, atol=1e-12)

    def test_shape(self, rng):
        basis, _ = np.linalg.qr(rng.standard_normal((10, 3)))
        a = build_update_factor(basis, np.ones(3), rng.standard_normal(10),
                                0.9, 0.1)
        assert a.shape == (10, 4)

    def test_validation(self, rng):
        basis, _ = np.linalg.qr(rng.standard_normal((10, 3)))
        y = rng.standard_normal(10)
        with pytest.raises(ValueError, match="eigenvalues shape"):
            build_update_factor(basis, np.ones(2), y, 0.9, 0.1)
        with pytest.raises(ValueError, match="y shape"):
            build_update_factor(basis, np.ones(3), np.zeros(5), 0.9, 0.1)
        with pytest.raises(ValueError, match="non-negative"):
            build_update_factor(basis, np.ones(3), y, -0.1, 0.1)


class TestRankOneUpdate:
    def test_equals_dense_update(self, rng):
        """The paper's low-rank trick is exact when the old covariance is
        exactly rank p."""
        d, p = 15, 3
        basis, _ = np.linalg.qr(rng.standard_normal((d, p)))
        lam = np.array([5.0, 3.0, 1.0])
        y = rng.standard_normal(d)
        gamma, nw = 0.9, 0.1
        e_new, lam_new = rank_one_update(basis, lam, y, gamma, nw, p + 1)
        c_dense = gamma * (basis * lam) @ basis.T + nw * np.outer(y, y)
        e_ref, lam_ref = _dense_top_eig(c_dense, p + 1)
        assert np.allclose(lam_new, lam_ref[: lam_new.size], atol=1e-10)

    def test_eigenvalue_mass_conserved(self, rng):
        d, p = 12, 3
        basis, _ = np.linalg.qr(rng.standard_normal((d, p)))
        lam = np.array([5.0, 3.0, 1.0])
        y = rng.standard_normal(d)
        # Keeping p+1 components keeps the full trace of the update.
        _, lam_new = rank_one_update(basis, lam, y, 0.9, 0.1, p + 1)
        expected_trace = 0.9 * lam.sum() + 0.1 * float(y @ y)
        assert lam_new.sum() == pytest.approx(expected_trace, rel=1e-10)


class TestBuildMergeFactor:
    def test_encodes_weighted_sum(self, rng):
        d = 12
        b1, _ = np.linalg.qr(rng.standard_normal((d, 2)))
        b2, _ = np.linalg.qr(rng.standard_normal((d, 3)))
        l1, l2 = np.array([4.0, 1.0]), np.array([5.0, 2.0, 0.5])
        a = build_merge_factor(b1, l1, b2, l2, 0.6, 0.4)
        expected = 0.6 * (b1 * l1) @ b1.T + 0.4 * (b2 * l2) @ b2.T
        assert np.allclose(a @ a.T, expected, atol=1e-12)

    def test_mean_columns(self, rng):
        d = 8
        b1, _ = np.linalg.qr(rng.standard_normal((d, 2)))
        l1 = np.array([2.0, 1.0])
        m = rng.standard_normal(d)
        a = build_merge_factor(b1, l1, b1, l1, 0.5, 0.5, mean_columns=m)
        expected = (b1 * l1) @ b1.T + np.outer(m, m)
        assert np.allclose(a @ a.T, expected, atol=1e-12)

    def test_dimension_mismatch(self, rng):
        b1, _ = np.linalg.qr(rng.standard_normal((8, 2)))
        b2, _ = np.linalg.qr(rng.standard_normal((9, 2)))
        with pytest.raises(ValueError, match="dimension mismatch"):
            build_merge_factor(b1, np.ones(2), b2, np.ones(2), 0.5, 0.5)
