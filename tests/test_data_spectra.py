"""Tests for the synthetic galaxy spectrum generator."""

import numpy as np
import pytest

from repro.data.spectra import (
    EMISSION_LINES,
    GalaxySpectrumModel,
    WavelengthGrid,
    archetype_spectra,
)


class TestWavelengthGrid:
    def test_log_spacing(self):
        grid = WavelengthGrid(n_bins=100)
        lam = grid.wavelengths
        ratios = lam[1:] / lam[:-1]
        assert np.allclose(ratios, ratios[0])
        assert lam[0] == pytest.approx(grid.lam_min)
        assert lam[-1] == pytest.approx(grid.lam_max)

    def test_validation(self):
        with pytest.raises(ValueError):
            WavelengthGrid(lam_min=5000, lam_max=4000)
        with pytest.raises(ValueError):
            WavelengthGrid(n_bins=2)


class TestArchetypes:
    def test_shapes_and_normalization(self):
        lam = np.geomspace(3000, 10000, 800)
        spectra, names = archetype_spectra(lam)
        assert spectra.shape == (4, 800)
        assert len(names) == 4
        assert np.allclose(spectra.mean(axis=1), 1.0)
        assert np.all(spectra > 0)

    def test_starforming_has_emission_lines(self):
        lam = np.geomspace(3000, 10000, 3000)
        spectra, names = archetype_spectra(lam)
        sf = spectra[names.index("starforming")]
        passive = spectra[names.index("passive")]
        # H-alpha peak stands out in the star-forming archetype...
        ha_bin = np.argmin(np.abs(lam - 6563.0))
        local = slice(max(ha_bin - 60, 0), ha_bin + 60)
        assert sf[ha_bin] > 1.5 * np.median(sf[local])
        # ...but not in the passive one.
        assert passive[ha_bin] < 1.2 * np.median(passive[local])

    def test_passive_is_red(self):
        lam = np.geomspace(3000, 10000, 800)
        spectra, names = archetype_spectra(lam)
        passive = spectra[names.index("passive")]
        blue = passive[lam < 4000].mean()
        red = passive[lam > 7000].mean()
        assert red > 2 * blue  # 4000 Å break + red slope


class TestGalaxySpectrumModel:
    def test_sample_shapes(self, rng):
        model = GalaxySpectrumModel(grid=WavelengthGrid(n_bins=200))
        s = model.sample(50, rng)
        assert s.flux.shape == (50, 200)
        assert s.redshift.shape == (50,)
        assert s.brightness.shape == (50,)
        assert s.mixture.shape == (50, 4)
        assert len(s) == 50
        assert np.allclose(s.mixture.sum(axis=1), 1.0)

    def test_determinism(self):
        model = GalaxySpectrumModel(seed=3)
        a = model.sample(20, np.random.default_rng(7)).flux
        b = model.sample(20, np.random.default_rng(7)).flux
        assert np.array_equal(a, b, equal_nan=True)

    def test_redshift_creates_systematic_gaps(self):
        rng = np.random.default_rng(0)
        lo = GalaxySpectrumModel(z_max=0.0, dropout_rate=0.0, seed=1)
        hi = GalaxySpectrumModel(z_max=0.4, dropout_rate=0.0, seed=1)
        gaps_lo = np.mean(~np.isfinite(lo.sample(100, rng).flux))
        s_hi = hi.sample(200, rng)
        gaps_hi = np.mean(~np.isfinite(s_hi.flux))
        assert gaps_lo == 0.0
        assert gaps_hi > 0.02
        # Gap extent grows with redshift (the §II-D systematic mode)...
        per_gal = np.mean(~np.isfinite(s_hi.flux), axis=1)
        galaxies = ~s_hi.is_outlier
        corr = np.corrcoef(s_hi.redshift[galaxies], per_gal[galaxies])[0, 1]
        assert corr > 0.8
        # ...and sits at the blue end of the observed window.
        lam = hi.grid.wavelengths
        gap_bins = np.mean(~np.isfinite(s_hi.flux[galaxies]), axis=0)
        assert gap_bins[: 10].mean() > gap_bins[-10:].mean()

    def test_dropout_gaps(self, rng):
        model = GalaxySpectrumModel(
            dropout_rate=1.0, dropout_width=0.1, z_max=0.0, seed=1
        )
        s = model.sample(50, rng)
        gap_rows = np.any(~np.isfinite(s.flux), axis=1)
        assert gap_rows.all()
        # Gaps are contiguous snippets of ~10% width.
        row = s.flux[0]
        missing = np.where(~np.isfinite(row))[0]
        assert missing.size == pytest.approx(0.1 * row.size, abs=2)
        assert missing[-1] - missing[0] == missing.size - 1

    def test_brightness_variation_forces_normalization(self, rng):
        model = GalaxySpectrumModel(brightness_sigma=1.0, dropout_rate=0.0,
                                    noise_std=0.0, seed=1)
        s = model.sample(200, rng)
        means = np.nanmean(s.flux, axis=1)
        assert means.std() / means.mean() > 0.5

    def test_outlier_injection(self, rng):
        model = GalaxySpectrumModel(outlier_rate=0.3, seed=1)
        s = model.sample(300, rng)
        assert 0.2 < s.is_outlier.mean() < 0.4

    def test_clean_sample_is_complete(self, rng):
        model = GalaxySpectrumModel(seed=1)
        x = model.clean_sample(30, rng)
        assert np.all(np.isfinite(x))
        assert x.shape == (30, model.n_bins)

    def test_ground_truth_basis(self):
        model = GalaxySpectrumModel(grid=WavelengthGrid(n_bins=150), seed=1)
        mean, basis, lam = model.ground_truth_basis(3, n_mc=500)
        assert mean.shape == (150,)
        assert basis.shape == (150, 3)
        assert np.allclose(basis.T @ basis, np.eye(3), atol=1e-10)
        assert np.all(np.diff(lam) <= 0)

    def test_validation(self):
        with pytest.raises(ValueError, match="z_max"):
            GalaxySpectrumModel(z_max=3.0)
        with pytest.raises(ValueError, match="outlier_rate"):
            GalaxySpectrumModel(outlier_rate=1.0)
        with pytest.raises(ValueError, match="noise_std"):
            GalaxySpectrumModel(noise_std=-0.1)
