"""ProcessEngine: wire format, shm rings, parity, shutdown, restart."""

import multiprocessing as mp
import os
import signal
import threading
import time
import uuid

import numpy as np
import pytest

from repro.core.eigensystem import Eigensystem
from repro.data.streams import VectorStream
from repro.parallel.app import engine_restart_supervisor
from repro.parallel.runner import ParallelStreamingPCA
from repro.streams import (
    BlockRing,
    CollectingSink,
    Functor,
    Graph,
    ProcessEngine,
    Sink,
    StreamTuple,
    SynchronousEngine,
    TupleKind,
    VectorSource,
    from_wire,
    to_wire,
    wire_stats,
)
from repro.streams.batcher import BLOCK_SCHEMA
from repro.streams.tuples import reset_wire_stats, tuple_from_fields

# ---------------------------------------------------------------------------
# Wire round-trips
# ---------------------------------------------------------------------------


class TestWireRoundTrip:
    def test_scalar_data_tuple(self):
        tup = StreamTuple.data(x=np.arange(3.0), label="a")
        back = from_wire(to_wire(tup))
        assert back.is_data
        assert back.seq == tup.seq
        assert back.payload["label"] == "a"
        np.testing.assert_array_equal(back.payload["x"], tup.payload["x"])

    def test_block_schema_travels_by_name(self):
        xs = np.arange(12.0).reshape(3, 4)
        seqs = np.array([5, 6, 7], dtype=np.int64)
        tup = tuple_from_fields(
            {"xs": xs, "seqs": seqs, "count": 3},
            TupleKind.DATA,
            BLOCK_SCHEMA,
            123,
        )
        back = from_wire(to_wire(tup))
        assert back.schema is BLOCK_SCHEMA  # interned by registered name
        assert back.seq == 123
        np.testing.assert_array_equal(back.payload["xs"], xs)
        np.testing.assert_array_equal(back.payload["seqs"], seqs)

    def test_punctuation_and_control(self):
        punct = from_wire(to_wire(StreamTuple.punctuation()))
        assert punct.is_punctuation
        ctl = from_wire(to_wire(StreamTuple.control(type="share")))
        assert ctl.is_control
        assert ctl.payload["type"] == "share"

    def test_eigensystem_ships_as_dict_not_pickle(self):
        state = Eigensystem(
            mean=np.zeros(4),
            basis=np.eye(4, 2),
            eigenvalues=np.array([2.0, 1.0]),
            n_seen=10,
        )
        tup = StreamTuple.control(type="state", engine=0, state=state)
        reset_wire_stats()
        back = from_wire(to_wire(tup))
        assert wire_stats()["pickled_payloads"] == 0
        got = back.payload["state"]
        assert isinstance(got, Eigensystem)
        np.testing.assert_allclose(got.basis, state.basis)
        np.testing.assert_allclose(got.eigenvalues, state.eigenvalues)

    def test_opaque_payload_falls_back_to_counted_pickle(self):
        tup = StreamTuple.data(weird={"a", "b"})
        reset_wire_stats()
        back = from_wire(to_wire(tup))
        assert wire_stats()["pickled_payloads"] == 1
        assert back.payload["weird"] == {"a", "b"}


# ---------------------------------------------------------------------------
# BlockRing
# ---------------------------------------------------------------------------


def _ring_name():
    return f"repro-test-{uuid.uuid4().hex[:8]}"


class TestBlockRing:
    def test_fill_drain_wraparound(self):
        name = _ring_name()
        ring = BlockRing(name, slots=3, slot_rows=4, dim=2, create=True)
        try:
            for i in range(10):  # > slots: exercises cursor wraparound
                xs = np.full((2, 2), float(i))
                seqs = np.array([2 * i, 2 * i + 1])
                assert ring.try_put(7, 1, xs, seqs, tuple_seq=100 + i)
                item = ring.get()
                assert item is not None
                assert (item.dst_idx, item.dst_port) == (7, 1)
                assert item.tuple_seq == 100 + i
                np.testing.assert_array_equal(item.xs, xs)
                np.testing.assert_array_equal(item.seqs, seqs)
                ring.release()
            assert ring.depth() == 0
            assert ring.blocks_in == 10 and ring.blocks_out == 10
        finally:
            item = None  # drop the shared-memory views before unmapping
            ring.close()
            ring.unlink()

    def test_full_ring_rejects_put(self):
        ring = BlockRing(
            _ring_name(), slots=2, slot_rows=2, dim=1, create=True
        )
        try:
            xs = np.zeros((1, 1))
            assert ring.try_put(0, 0, xs, None, 1)
            assert ring.try_put(0, 0, xs, None, 2)
            assert not ring.try_put(0, 0, xs, None, 3)
            assert ring.depth() == 2
        finally:
            ring.close()
            ring.unlink()

    def test_oversized_block_raises(self):
        ring = BlockRing(
            _ring_name(), slots=2, slot_rows=2, dim=3, create=True
        )
        try:
            with pytest.raises(ValueError, match="does not fit"):
                ring.try_put(0, 0, np.zeros((4, 3)), None, 1)
            with pytest.raises(ValueError, match="does not fit"):
                ring.try_put(0, 0, np.zeros((1, 2)), None, 1)
        finally:
            ring.close()
            ring.unlink()

    def test_crashed_consumer_gets_redelivery(self):
        # A consumer that dies between get() and release() never commits
        # the read cursor: a re-attached consumer sees the same block.
        name = _ring_name()
        prod = BlockRing(name, slots=4, slot_rows=2, dim=2, create=True)
        try:
            a = np.array([[1.0, 2.0], [3.0, 4.0]])
            b = np.array([[5.0, 6.0]])
            assert prod.try_put(0, 0, a, None, 11)
            assert prod.try_put(0, 0, b, None, 12)

            dead = BlockRing(name, slots=4, slot_rows=2, dim=2)
            item = dead.get()
            assert item.tuple_seq == 11
            dead.close()  # dies without release()

            survivor = BlockRing(name, slots=4, slot_rows=2, dim=2)
            item = survivor.get()  # re-delivered, not lost
            assert item.tuple_seq == 11
            np.testing.assert_array_equal(item.xs, a)
            survivor.release()
            item = survivor.get()
            assert item.tuple_seq == 12
            survivor.release()
            assert survivor.get() is None
            item = None  # drop the shared-memory views before unmapping
            survivor.close()
        finally:
            prod.close()
            prod.unlink()


# ---------------------------------------------------------------------------
# End-to-end: parallel PCA on the process runtime
# ---------------------------------------------------------------------------


def _spectra(n=1200, d=24, seed=0):
    rng = np.random.default_rng(seed)
    basis = np.linalg.qr(rng.normal(size=(d, 4)))[0]
    scales = np.array([8.0, 5.0, 3.0, 1.5])
    return (
        rng.normal(size=(n, 4)) @ (basis.T * scales[:, None])
        + 0.1 * rng.normal(size=(n, d))
    )


def _pca_runner(runtime, **kw):
    # sync_gate_factor inf => no mid-run syncs, so each engine's input
    # subsequence (fixed by split_seed) fully determines its state and
    # the runtimes must agree to floating-point identity.
    return ParallelStreamingPCA(
        n_components=4,
        n_engines=2,
        alpha=1.0,
        runtime=runtime,
        batch_size=8,
        split_seed=7,
        sync_gate_factor=1e9,
        **kw,
    )


class TestProcessParity:
    def test_matches_synchronous_engine(self):
        X = _spectra()
        ref = _pca_runner("synchronous").run(VectorStream.from_array(X))
        got = _pca_runner("process", mp_context="fork").run(
            VectorStream.from_array(X)
        )

        assert set(got.engine_states) == set(ref.engine_states)
        for i, ref_state in ref.engine_states.items():
            state = got.engine_states[i]
            assert state.n_seen == ref_state.n_seen
            np.testing.assert_allclose(
                state.eigenvalues, ref_state.eigenvalues, rtol=1e-10
            )
            np.testing.assert_allclose(
                state.mean, ref_state.mean, rtol=0, atol=1e-10
            )
            np.testing.assert_allclose(
                state.basis, ref_state.basis, rtol=0, atol=1e-10
            )
        np.testing.assert_allclose(
            got.eigenvalues, ref.eigenvalues, rtol=1e-10
        )
        np.testing.assert_array_equal(
            got.outlier_seqs(), ref.outlier_seqs()
        )
        assert len(got.diagnostics) == len(ref.diagnostics)

    def test_zero_copy_block_transport(self):
        X = _spectra(n=800)
        runner = _pca_runner("process")
        app = runner.build(VectorStream.from_array(X))
        main_ops = {app.split.name, app.controller.name, app.batcher.name}
        reset_wire_stats()
        engine = ProcessEngine(
            app.graph, main_ops=main_ops, mp_context="fork"
        )
        engine.run(timeout_s=120)
        stats = engine.transport_stats
        assert stats["blocks_ring"] > 0
        # The hot path never pickles a block payload:
        assert stats["blocks_queue"] == 0
        assert stats["blocks_ring_in"] == stats["blocks_ring"]
        assert wire_stats()["pickled_payloads"] == 0
        rows = sum(r["n_local_rows"] for r in [
            op.diagnostics() for op in app.engines
        ])
        assert rows == X.shape[0]


# ---------------------------------------------------------------------------
# Shutdown drain across the process boundary (PR 1 race, reprised)
# ---------------------------------------------------------------------------


class _FinalOnClose(Functor):
    """Forwards tuples slowly; ships a ``final`` control tuple at close
    (module-level so worker processes can unpickle it)."""

    def __init__(self, name, delay_s=0.001):
        super().__init__(name, None)
        self._delay_s = delay_s

    def process(self, tup, port):
        time.sleep(self._delay_s)
        self.submit(tup)

    def close(self):
        self.submit(StreamTuple.control(type="final"))


class _LooseCollector(Sink):
    """Two-input sink completing as soon as port 0 punctuates — forcing
    the close-vs-late-arrivals race on port 1."""

    def __init__(self, name):
        super().__init__(name, n_inputs=2)
        self.punctuation_ports = {0}
        self.port1_data = 0
        self.finals = 0

    def consume(self, tup, port):
        if tup.is_control and tup.get("type") == "final":
            self.finals += 1
        elif port == 1:
            self.port1_data += 1


def _race_graph(n=5):
    g = Graph("proc-race")
    fast = g.add(
        VectorSource("fast", VectorStream.from_array(np.zeros((n, 1))))
    )
    slow_src = g.add(
        VectorSource("slow-src", VectorStream.from_array(np.ones((n, 1))))
    )
    slow = g.add(_FinalOnClose("slow"))  # the one worker-process PE
    col = g.add(_LooseCollector("collector"))
    g.connect(fast, col, in_port=0)
    g.connect(slow_src, slow)
    g.connect(slow, col, in_port=1)
    return g, col


class TestShutdownDrain:
    def test_final_tuple_never_lost_in_shutdown_race(self):
        for _ in range(8):
            g, col = _race_graph(n=5)
            engine = ProcessEngine(g, mp_context="fork")
            assert engine.n_workers == 1
            engine.run(timeout_s=60)
            assert col.finals == 1
            assert col.port1_data == 5

    def test_synchronous_engine_same_semantics(self):
        g, col = _race_graph(n=5)
        SynchronousEngine(g).run()
        assert col.finals == 1
        assert col.port1_data == 5


# ---------------------------------------------------------------------------
# Worker death → restart from checkpoint
# ---------------------------------------------------------------------------


class TestWorkerRestart:
    def test_sigkilled_worker_restarts_from_checkpoint(self, tmp_path):
        X = _spectra(n=20000, d=32, seed=3)
        runner = ParallelStreamingPCA(
            n_components=4,
            n_engines=2,
            alpha=0.999,
            runtime="process",
            batch_size=8,
            collect_diagnostics=False,
        )
        app = runner.build(VectorStream.from_array(X))
        supervisor = engine_restart_supervisor(
            app, directory=tmp_path, checkpoint_every=5
        )
        main_ops = {app.split.name, app.controller.name, app.batcher.name}
        # mp_context defaults: restart policies auto-prefer forkserver.
        engine = ProcessEngine(
            app.graph, main_ops=main_ops, supervisor=supervisor
        )
        wid0 = next(
            w
            for w, pe in engine._worker_pes.items()
            if any(op.name == "pca-0" for op in pe.operators)
        )

        errors: list[BaseException] = []
        done = threading.Event()

        def go():
            try:
                engine.run(timeout_s=180)
            except BaseException as exc:  # noqa: BLE001 - reraised below
                errors.append(exc)
            finally:
                done.set()

        t = threading.Thread(target=go)
        t.start()
        try:
            # Kill pca-0's process once it has persisted a checkpoint.
            ckpt_dir = tmp_path / "pca-0"
            deadline = time.time() + 120
            killed = False
            while not done.is_set() and time.time() < deadline:
                proc = engine._procs.get(wid0)
                if (
                    proc is not None
                    and proc.is_alive()
                    and ckpt_dir.is_dir()
                    # Ignore the hidden .tmp files save_eigensystem stages
                    # before os.replace: kill only once a checkpoint has
                    # actually been committed.
                    and any(
                        not p.name.startswith(".")
                        for p in ckpt_dir.iterdir()
                    )
                ):
                    os.kill(proc.pid, signal.SIGKILL)
                    killed = True
                    break
                time.sleep(0.001)
            assert killed, "run finished before a checkpoint appeared"
            assert done.wait(timeout=180)
        finally:
            t.join(timeout=10)

        assert not errors, errors
        assert engine._worker_deaths >= 1
        assert supervisor.stats.restarts.get("pca-0", 0) >= 1
        # Both engines still handed their final state to the controller;
        # the restarted one resumed from its checkpoint, so the global
        # merge is computable and loss is bounded, not total.
        assert set(app.controller.final_states) == {0, 1}
        resumed = app.controller.final_states[0]
        assert resumed.n_seen > 0
        merged = app.controller.global_state(4)
        assert merged.eigenvalues.shape == (4,)
        # Bounded loss AND bounded duplication.  Rows since the last
        # checkpoint are lost; but in-flight transport is at-least-once
        # across a crash — the worker checkpoints during dispatch and
        # releases its ring slot after, so a kill in between re-delivers
        # blocks already captured in the checkpoint.  Either way the
        # deviation is bounded by the per-edge backpressure window
        # (ring_slots x ring_slot_rows), never the whole stream.
        window = engine.ring_slots * engine.ring_slot_rows
        ckpt_slack = 5 * 8  # checkpoint_every dispatches x batch_size rows
        total_rows = sum(
            op.diagnostics()["n_local_rows"] for op in app.engines
        )
        lo = X.shape[0] - window - ckpt_slack
        hi = X.shape[0] + window
        assert lo <= total_rows <= hi, (total_rows, lo, hi)


# ---------------------------------------------------------------------------
# Wedged worker → watchdog kill → restart (not a coordinator hang)
# ---------------------------------------------------------------------------


class _WedgeOnce(Functor):
    """Spins forever on its Nth tuple — alive but progress-free, the
    failure mode process liveness checks cannot see.  A marker file on
    disk makes sure only the *first* incarnation wedges, so the
    respawned worker can finish the stream.  (Module-level so worker
    processes can unpickle it.)"""

    def __init__(self, name, marker, wedge_at=10):
        super().__init__(name, None)
        self.marker = str(marker)
        self.wedge_at = wedge_at
        self._seen = 0

    def process(self, tup, port):
        self._seen += 1
        if self._seen == self.wedge_at and not os.path.exists(self.marker):
            with open(self.marker, "w") as fh:
                fh.write("wedged")
            while True:
                time.sleep(0.05)
        self.submit(tup)


def _wedge_graph(tmp_path, n=40):
    g = Graph("wedge")
    src = g.add(
        VectorSource(
            "src", VectorStream.from_array(np.zeros((n, 2)))
        )
    )
    wedge = g.add(_WedgeOnce("wedge", tmp_path / "wedged.marker"))
    sink = g.add(CollectingSink("sink"))
    g.connect(src, wedge)
    g.connect(wedge, sink)
    return g, sink


class TestCmdQueueUnpoison:
    """A worker SIGKILLed inside ``Queue.get`` dies holding the queue's
    shared reader lock; the respawn path must force-release it or the
    new worker reads nothing and the run livelocks (producers spinning
    on Full, the replacement spinning on Empty)."""

    def _engine_with_queue(self, q):
        eng = ProcessEngine.__new__(ProcessEngine)
        eng._cmd_qs = {0: q}
        return eng

    def test_orphaned_reader_lock_is_released(self):
        ctx = mp.get_context("forkserver")
        q = ctx.Queue(maxsize=4)
        q.put({"t": "tuple"})
        # Simulate the victim's orphaned hold: take the reader lock and
        # never release it (the SIGKILLed process can't).
        assert q._rlock.acquire(block=False)
        eng = self._engine_with_queue(q)
        eng._unpoison_cmd_queue(0)
        # A fresh consumer can read again.
        assert q._rlock.acquire(block=False)
        q._rlock.release()
        assert q.get(timeout=5.0) == {"t": "tuple"}
        q.close()
        q.join_thread()

    def test_healthy_queue_is_left_alone(self):
        ctx = mp.get_context("forkserver")
        q = ctx.Queue(maxsize=4)
        eng = self._engine_with_queue(q)
        eng._unpoison_cmd_queue(0)
        eng._unpoison_cmd_queue(0)  # idempotent, never over-releases
        assert q._rlock.acquire(block=False)
        q._rlock.release()
        q.close()
        q.join_thread()

    def test_missing_worker_id_is_a_noop(self):
        eng = ProcessEngine.__new__(ProcessEngine)
        eng._cmd_qs = {}
        eng._unpoison_cmd_queue(7)


class TestStallRecovery:
    def test_wedged_worker_is_killed_and_restarted(self, tmp_path):
        from repro.streams import (
            RestartFromCheckpoint,
            Supervisor,
        )

        g, sink = _wedge_graph(tmp_path)
        supervisor = Supervisor(
            policies={"wedge": RestartFromCheckpoint(checkpoint_every=5)}
        )
        engine = ProcessEngine(
            g,
            supervisor=supervisor,
            stall_timeout_s=1.5,
            mp_context="fork",
        )
        engine.run(timeout_s=120)  # must complete, not hang
        assert (tmp_path / "wedged.marker").exists()
        assert engine._worker_deaths >= 1
        assert supervisor.stats.restarts.get("wedge", 0) >= 1
        # Only the tuple wedged mid-process may be lost; everything
        # queued behind the wedge is redelivered to the respawn.
        assert len(sink.tuples) >= 38

    def test_without_restart_policy_raises_instead_of_hanging(
        self, tmp_path
    ):
        from repro.streams import StallDetected

        g, _ = _wedge_graph(tmp_path)
        engine = ProcessEngine(
            g, stall_timeout_s=1.0, mp_context="fork"
        )
        start = time.monotonic()
        with pytest.raises(StallDetected, match="no coordinator-visible"):
            engine.run(timeout_s=120)
        assert time.monotonic() - start < 60
