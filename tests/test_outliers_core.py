"""Tests for streaming/batch outlier flagging."""

import numpy as np
import pytest

from repro.core import (
    BatchPCA,
    OutlierLog,
    RobustIncrementalPCA,
    flag_outliers,
    make_rho,
)
from repro.core.incremental import UpdateResult


class TestOutlierLog:
    def _result(self, outlier: bool) -> UpdateResult:
        return UpdateResult(
            weight=0.0 if outlier else 0.5,
            scaled_residual=50.0 if outlier else 1.0,
            residual_norm2=1.0,
            is_outlier=outlier,
        )

    def test_steps_are_one_based_stream_positions(self):
        log = OutlierLog()
        log.observe(None)                  # warm-up step 1
        log.observe(self._result(False))   # step 2
        log.observe(self._result(True))    # step 3
        assert list(log.steps) == [3]
        assert log.n_processed == 3

    def test_rate(self):
        log = OutlierLog()
        for i in range(10):
            log.observe(self._result(i < 2))
        assert log.rate == pytest.approx(0.2)
        assert OutlierLog().rate == 0.0

    def test_detection_stats(self):
        log = OutlierLog()
        flags = [False, True, True, False, True]
        for f in flags:
            log.observe(self._result(f))
        truth = np.array([2, 3, 4])  # flagged {2,3,5}
        stats = log.detection_stats(truth)
        assert stats["true_positives"] == 2
        assert stats["false_positives"] == 1
        assert stats["false_negatives"] == 1
        assert stats["precision"] == pytest.approx(2 / 3)
        assert stats["recall"] == pytest.approx(2 / 3)

    def test_stats_with_empty_sets(self):
        log = OutlierLog()
        stats = log.detection_stats(np.array([], dtype=int))
        assert stats["precision"] == 1.0
        assert stats["recall"] == 1.0


class TestFlagOutliersBatch:
    def test_flags_match_streaming_decisions(self, small_model, rng):
        x = small_model.sample(1000, rng)
        est = RobustIncrementalPCA(3, alpha=0.999).partial_fit(x)
        probe = small_model.sample(200, rng)
        probe[::10] = 30.0 * rng.standard_normal((20, 40))
        flags = flag_outliers(est.state, probe, est.rho)
        assert flags.shape == (200,)
        assert flags[::10].mean() > 0.9
        assert flags[1::10].mean() < 0.1

    def test_threshold_override(self, small_model, rng):
        x = small_model.sample(500, rng)
        state = BatchPCA(3).fit(x).to_eigensystem()
        rho = make_rho("bisquare", c2=4.0)
        none_flagged = flag_outliers(state, x, rho, threshold=1e12)
        assert not none_flagged.any()
        all_flagged = flag_outliers(state, x, rho, threshold=0.0)
        assert all_flagged.all()

    def test_single_vector(self, small_model, rng):
        x = small_model.sample(200, rng)
        est = RobustIncrementalPCA(3, alpha=0.999).partial_fit(x)
        flags = flag_outliers(
            est.state, 50.0 * np.ones(40), est.rho
        )
        assert flags.shape == (1,)
        assert flags[0]
