"""Tests for the operator model (lifecycle, punctuation, counters)."""

import pytest

from repro.streams.operators import (
    FilterOperator,
    Functor,
    Operator,
    Sink,
    Source,
    Union,
)
from repro.streams.tuples import StreamTuple


class Collect(Sink):
    def __init__(self, name="sink", n_inputs=1):
        super().__init__(name, n_inputs=n_inputs)
        self.got = []

    def consume(self, tup, port):
        self.got.append((tup, port))


def wire_to(op: Operator, downstream: list):
    """Bind op's emit to append (tuple, port) records."""
    op.bind(lambda tup, port: downstream.append((tup, port)))


class TestOperatorBase:
    def test_submit_requires_binding(self):
        op = Functor("f", lambda t: t)
        with pytest.raises(RuntimeError, match="not wired"):
            op.submit(StreamTuple.data(x=1))

    def test_submit_port_range(self):
        out = []
        op = Functor("f", lambda t: t)
        wire_to(op, out)
        with pytest.raises(ValueError, match="no output port"):
            op.submit(StreamTuple.data(x=1), port=3)

    def test_counters(self):
        out = []
        op = Functor("f", lambda t: t)
        wire_to(op, out)
        op._dispatch(StreamTuple.data(x=1), 0)
        op._dispatch(StreamTuple.data(x=2), 0)
        assert op.tuples_in == 2
        assert op.tuples_out == 2

    def test_punctuation_completes_and_propagates(self):
        out = []
        op = Functor("f", lambda t: t)
        wire_to(op, out)
        op._dispatch(StreamTuple.punctuation(), 0)
        assert op.is_closed
        assert len(out) == 1
        assert out[0][0].is_punctuation

    def test_duplicate_punctuation_ignored(self):
        out = []
        op = Functor("f", lambda t: t)
        wire_to(op, out)
        op._dispatch(StreamTuple.punctuation(), 0)
        op._dispatch(StreamTuple.punctuation(), 0)
        assert len(out) == 1

    def test_multi_input_waits_for_all_ports(self):
        out = []
        op = Union("u", 2)
        wire_to(op, out)
        op._dispatch(StreamTuple.punctuation(), 0)
        assert not op.is_closed
        op._dispatch(StreamTuple.punctuation(), 1)
        assert op.is_closed

    def test_excluded_control_port_does_not_block_completion(self):
        class Ctl(Operator):
            def __init__(self):
                super().__init__(
                    "c", n_inputs=2, n_outputs=1, punctuation_ports={0}
                )

            def process(self, tup, port):
                pass

        out = []
        op = Ctl()
        wire_to(op, out)
        op._dispatch(StreamTuple.punctuation(), 0)
        assert op.is_closed

    def test_invalid_punctuation_ports(self):
        with pytest.raises(ValueError, match="out of range"):
            Operator("x", n_inputs=1, punctuation_ports={5})

    def test_close_hook_called_once(self):
        calls = []

        class C(Sink):
            def consume(self, tup, port):
                pass

            def close(self):
                calls.append(1)

        op = C("c")
        op.bind(lambda t, p: None)
        op._dispatch(StreamTuple.punctuation(), 0)
        op._dispatch(StreamTuple.punctuation(), 0)
        assert calls == [1]


class TestFunctor:
    def test_transform(self):
        out = []
        op = Functor("f", lambda t: StreamTuple.data(x=t["x"] * 2))
        wire_to(op, out)
        op._dispatch(StreamTuple.data(x=3), 0)
        assert out[0][0]["x"] == 6

    def test_drop_with_none(self):
        out = []
        op = Functor("f", lambda t: None)
        wire_to(op, out)
        op._dispatch(StreamTuple.data(x=3), 0)
        assert out == []

    def test_fan_out_list(self):
        out = []
        op = Functor("f", lambda t: [t, t])
        wire_to(op, out)
        op._dispatch(StreamTuple.data(x=1), 0)
        assert len(out) == 2


class TestFilter:
    def test_predicate(self):
        out = []
        op = FilterOperator("f", lambda t: t["x"] > 0)
        wire_to(op, out)
        op._dispatch(StreamTuple.data(x=1), 0)
        op._dispatch(StreamTuple.data(x=-1), 0)
        assert len(out) == 1


class TestSource:
    def test_items_source(self):
        tuples = [StreamTuple.data(x=i) for i in range(3)]
        src = Source("s", items=tuples)
        assert list(src.generate()) == tuples

    def test_generate_not_implemented(self):
        src = Source("s")
        with pytest.raises(NotImplementedError):
            list(src.generate())

    def test_union_requires_input(self):
        with pytest.raises(ValueError):
            Union("u", 0)
