"""Tests for robust basis comparison (§II-B last paragraph)."""

import numpy as np
import pytest

from repro.core import (
    BatchPCA,
    BatchRobustPCA,
    compare_bases,
    robust_eigenvalues_along,
)
from repro.data import contaminate_block


class TestRobustEigenvaluesAlong:
    def test_matches_variance_on_clean_gaussian(self, rng):
        x = rng.standard_normal((5000, 6)) * np.array([3.0, 2.0, 1.0, 1, 1, 1])
        lam = robust_eigenvalues_along(x, np.eye(6)[:, :3])
        assert np.allclose(lam, [9.0, 4.0, 1.0], rtol=0.1)

    def test_ignores_outliers_along_direction(self, rng):
        x = rng.standard_normal((3000, 5))
        x[::50, 0] = 200.0  # gross outliers on axis 0
        lam = robust_eigenvalues_along(x, np.eye(5)[:, :1])
        classical = float(np.var(x[:, 0]))
        assert lam[0] == pytest.approx(1.0, rel=0.15)
        assert classical > 100  # what a naive estimate would report

    def test_normalizes_directions(self, rng):
        x = rng.standard_normal((2000, 4))
        lam1 = robust_eigenvalues_along(x, np.eye(4)[:, :1])
        lam5 = robust_eigenvalues_along(x, 5.0 * np.eye(4)[:, :1])
        assert lam1[0] == pytest.approx(lam5[0])

    def test_validation(self, rng):
        x = rng.standard_normal((100, 4))
        with pytest.raises(ValueError, match="basis shape"):
            robust_eigenvalues_along(x, np.eye(5))
        with pytest.raises(ValueError, match="nonzero"):
            robust_eigenvalues_along(x, np.zeros((4, 1)))
        with pytest.raises(ValueError, match="\\(n, d\\)"):
            robust_eigenvalues_along(np.zeros(4), np.eye(4))


class TestCompareBases:
    def test_robust_basis_wins_under_contamination(
        self, small_model, small_data, rng
    ):
        x, _ = contaminate_block(small_data, 0.08, 25.0, rng)
        classic = BatchPCA(3).fit(x)
        robust = BatchRobustPCA(3).fit(x)
        comparison = compare_bases(
            x,
            {"classic": classic.components_.T,
             "robust": robust.components_.T},
        )
        assert comparison.best.name == "robust"
        # The classic basis wasted directions on outliers: its captured
        # robust variance is well below the robust basis's.
        assert (
            comparison.score_of("classic").total_robust_variance
            < 0.8 * comparison.score_of("robust").total_robust_variance
        )

    def test_identical_bases_tie(self, small_data):
        basis = BatchPCA(3).fit(small_data).components_.T
        comparison = compare_bases(small_data, {"a": basis, "b": basis})
        assert comparison.score_of("a").total_robust_variance == (
            pytest.approx(comparison.score_of("b").total_robust_variance)
        )

    def test_empty_candidates(self, small_data):
        with pytest.raises(ValueError, match="at least one"):
            compare_bases(small_data, {})

    def test_unknown_name(self, small_data):
        basis = BatchPCA(2).fit(small_data).components_.T
        comparison = compare_bases(small_data, {"a": basis})
        with pytest.raises(KeyError):
            comparison.score_of("zz")
