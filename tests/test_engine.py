"""Tests for the synchronous and threaded runtimes."""

import threading
import time

import numpy as np
import pytest

from repro.data.streams import VectorStream
from repro.streams import (
    CollectingSink,
    Functor,
    FusionPlan,
    Graph,
    RunStats,
    Split,
    SynchronousEngine,
    ThreadedEngine,
    Union,
    VectorSource,
)
from repro.streams.operators import Sink, Source
from repro.streams.tuples import StreamTuple


def _fan_graph(x, n_ways=3, split_strategy="round_robin"):
    g = Graph("fan")
    src = g.add(VectorSource("src", VectorStream.from_array(x)))
    split = g.add(Split("split", n_ways, strategy=split_strategy, seed=1))
    uni = g.add(Union("union", n_ways))
    sink = g.add(CollectingSink("sink"))
    g.connect(src, split)
    for i in range(n_ways):
        g.connect(split, uni, out_port=i, in_port=i)
    g.connect(uni, sink)
    return g, sink


class TestSynchronousEngine:
    def test_delivers_everything_in_order_per_channel(self, rng):
        x = np.arange(60, dtype=float).reshape(30, 2)
        g, sink = _fan_graph(x)
        stats = SynchronousEngine(g).run()
        assert len(sink.tuples) == 30
        seqs = [t["seq"] for t in sink.tuples]
        assert sorted(seqs) == list(range(30))
        assert stats.source_tuples["src"] == 30

    def test_deterministic_across_runs(self):
        x = np.arange(40, dtype=float).reshape(20, 2)
        orders = []
        for _ in range(2):
            g, sink = _fan_graph(x, split_strategy="random")
            SynchronousEngine(g).run()
            orders.append([t["seq"] for t in sink.tuples])
        assert orders[0] == orders[1]

    def test_multiple_sources_interleaved(self):
        g = Graph("two-src")
        a = g.add(VectorSource("a", VectorStream.from_array(np.zeros((5, 1)))))
        b = g.add(VectorSource("b", VectorStream.from_array(np.ones((3, 1)))))
        uni = g.add(Union("u", 2))
        sink = g.add(CollectingSink("sink"))
        g.connect(a, uni, in_port=0)
        g.connect(b, uni, in_port=1)
        g.connect(uni, sink)
        SynchronousEngine(g).run()
        vals = [float(t["x"][0]) for t in sink.tuples]
        assert len(vals) == 8
        # Round-robin interleaving: first four alternate.
        assert vals[:4] == [0.0, 1.0, 0.0, 1.0]

    def test_control_loop_quiesces(self):
        """A cyclic request/response exchange terminates."""
        g = Graph("loop")

        class Pinger(Source):
            def generate(self):
                yield StreamTuple.control(type="ping", hops=0)

        class Bouncer(Functor):
            def __init__(self, name):
                super().__init__(name, None)

            def process(self, tup, port):
                hops = tup.get("hops", 0)
                if hops < 5:
                    self.submit(
                        StreamTuple.control(type="ping", hops=hops + 1)
                    )

        src = g.add(Pinger("src"))
        a = g.add(Union("in", 2))
        b = g.add(Bouncer("bounce"))
        sink = g.add(CollectingSink("sink"))
        g.connect(src, a, in_port=0)
        g.connect(a, b)
        g.connect(b, a, in_port=1)
        g.connect(b, sink)
        SynchronousEngine(g).run()  # must terminate

    def test_stats_collects_counters(self):
        x = np.zeros((10, 2))
        g, sink = _fan_graph(x)
        stats = SynchronousEngine(g).run()
        assert stats.tuples_in["sink"] == 10
        assert stats.wall_time_s > 0
        assert stats.throughput() > 0


class TestThreadedEngine:
    @pytest.mark.parametrize("fusion_name", ["per_operator", "fused", "fuse_chains"])
    def test_delivers_everything_under_all_fusions(self, fusion_name):
        x = np.arange(200, dtype=float).reshape(100, 2)
        g, sink = _fan_graph(x)
        plan = getattr(FusionPlan, fusion_name)(g)
        ThreadedEngine(g, fusion=plan).run(timeout_s=30)
        assert len(sink.tuples) == 100
        assert sorted(t["seq"] for t in sink.tuples) == list(range(100))

    def test_backpressure_with_tiny_queues(self):
        """A slow consumer with queue_size=1 must not lose tuples."""
        x = np.arange(60, dtype=float).reshape(30, 2)
        g = Graph("bp")
        src = g.add(VectorSource("src", VectorStream.from_array(x)))

        class SlowSink(Sink):
            def __init__(self):
                super().__init__("slow")
                self.got = []

            def consume(self, tup, port):
                time.sleep(0.002)
                self.got.append(tup)

        sink = g.add(SlowSink())
        g.connect(src, sink)
        ThreadedEngine(g, queue_size=1).run(timeout_s=30)
        assert len(sink.got) == 30

    def test_timeout_raises(self):
        g = Graph("hang")

        class Stuck(Source):
            def generate(self):
                yield StreamTuple.data(x=1)
                time.sleep(60)

        class Devnull(Sink):
            def consume(self, tup, port):
                pass

        src = g.add(Stuck("src"))
        sink = g.add(Devnull("sink"))
        g.connect(src, sink)
        with pytest.raises(RuntimeError, match="did not finish"):
            ThreadedEngine(g).run(timeout_s=0.3)

    def test_operator_exception_propagates(self):
        g = Graph("boom")
        src = g.add(
            VectorSource("src", VectorStream.from_array(np.zeros((5, 1))))
        )

        def explode(t):
            raise ValueError("kaboom")

        f = g.add(Functor("f", explode))
        sink = g.add(CollectingSink("sink"))
        g.connect(src, f)
        g.connect(f, sink)
        with pytest.raises(ValueError, match="kaboom"):
            ThreadedEngine(g).run(timeout_s=10)

    def test_least_loaded_probe_installed(self):
        x = np.zeros((50, 2))
        g, sink = _fan_graph(x, split_strategy="least_loaded")
        ThreadedEngine(g).run(timeout_s=30)
        assert len(sink.tuples) == 50

    def test_no_leftover_threads(self):
        before = threading.active_count()
        x = np.zeros((20, 2))
        g, sink = _fan_graph(x)
        ThreadedEngine(g).run(timeout_s=30)
        time.sleep(0.05)
        assert threading.active_count() <= before + 1

    def test_queue_size_validation(self):
        x = np.zeros((5, 2))
        g, _ = _fan_graph(x)
        with pytest.raises(ValueError, match="queue_size"):
            ThreadedEngine(g, queue_size=0)


class TestRunStats:
    def test_throughput_zero_cases(self):
        stats = RunStats()
        assert stats.throughput() == 0.0
