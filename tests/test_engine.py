"""Tests for the synchronous and threaded runtimes."""

import threading
import time

import numpy as np
import pytest

from repro.data.streams import VectorStream
from repro.streams import (
    CollectingSink,
    Functor,
    FusionPlan,
    Graph,
    RunStats,
    Split,
    SynchronousEngine,
    ThreadedEngine,
    Union,
    VectorSource,
)
from repro.streams.operators import Sink, Source
from repro.streams.tuples import StreamTuple


def _fan_graph(x, n_ways=3, split_strategy="round_robin"):
    g = Graph("fan")
    src = g.add(VectorSource("src", VectorStream.from_array(x)))
    split = g.add(Split("split", n_ways, strategy=split_strategy, seed=1))
    uni = g.add(Union("union", n_ways))
    sink = g.add(CollectingSink("sink"))
    g.connect(src, split)
    for i in range(n_ways):
        g.connect(split, uni, out_port=i, in_port=i)
    g.connect(uni, sink)
    return g, sink


class TestSynchronousEngine:
    def test_delivers_everything_in_order_per_channel(self, rng):
        x = np.arange(60, dtype=float).reshape(30, 2)
        g, sink = _fan_graph(x)
        stats = SynchronousEngine(g).run()
        assert len(sink.tuples) == 30
        seqs = [t["seq"] for t in sink.tuples]
        assert sorted(seqs) == list(range(30))
        assert stats.source_tuples["src"] == 30

    def test_deterministic_across_runs(self):
        x = np.arange(40, dtype=float).reshape(20, 2)
        orders = []
        for _ in range(2):
            g, sink = _fan_graph(x, split_strategy="random")
            SynchronousEngine(g).run()
            orders.append([t["seq"] for t in sink.tuples])
        assert orders[0] == orders[1]

    def test_multiple_sources_interleaved(self):
        g = Graph("two-src")
        a = g.add(VectorSource("a", VectorStream.from_array(np.zeros((5, 1)))))
        b = g.add(VectorSource("b", VectorStream.from_array(np.ones((3, 1)))))
        uni = g.add(Union("u", 2))
        sink = g.add(CollectingSink("sink"))
        g.connect(a, uni, in_port=0)
        g.connect(b, uni, in_port=1)
        g.connect(uni, sink)
        SynchronousEngine(g).run()
        vals = [float(t["x"][0]) for t in sink.tuples]
        assert len(vals) == 8
        # Round-robin interleaving: first four alternate.
        assert vals[:4] == [0.0, 1.0, 0.0, 1.0]

    def test_control_loop_quiesces(self):
        """A cyclic request/response exchange terminates."""
        g = Graph("loop")

        class Pinger(Source):
            def generate(self):
                yield StreamTuple.control(type="ping", hops=0)

        class Bouncer(Functor):
            def __init__(self, name):
                super().__init__(name, None)

            def process(self, tup, port):
                hops = tup.get("hops", 0)
                if hops < 5:
                    self.submit(
                        StreamTuple.control(type="ping", hops=hops + 1)
                    )

        src = g.add(Pinger("src"))
        a = g.add(Union("in", 2))
        b = g.add(Bouncer("bounce"))
        sink = g.add(CollectingSink("sink"))
        g.connect(src, a, in_port=0)
        g.connect(a, b)
        g.connect(b, a, in_port=1)
        g.connect(b, sink)
        SynchronousEngine(g).run()  # must terminate

    def test_stats_collects_counters(self):
        x = np.zeros((10, 2))
        g, sink = _fan_graph(x)
        stats = SynchronousEngine(g).run()
        assert stats.tuples_in["sink"] == 10
        assert stats.wall_time_s > 0
        assert stats.throughput() > 0


class TestThreadedEngine:
    @pytest.mark.parametrize("fusion_name", ["per_operator", "fused", "fuse_chains"])
    def test_delivers_everything_under_all_fusions(self, fusion_name):
        x = np.arange(200, dtype=float).reshape(100, 2)
        g, sink = _fan_graph(x)
        plan = getattr(FusionPlan, fusion_name)(g)
        ThreadedEngine(g, fusion=plan).run(timeout_s=30)
        assert len(sink.tuples) == 100
        assert sorted(t["seq"] for t in sink.tuples) == list(range(100))

    def test_backpressure_with_tiny_queues(self):
        """A slow consumer with queue_size=1 must not lose tuples."""
        x = np.arange(60, dtype=float).reshape(30, 2)
        g = Graph("bp")
        src = g.add(VectorSource("src", VectorStream.from_array(x)))

        class SlowSink(Sink):
            def __init__(self):
                super().__init__("slow")
                self.got = []

            def consume(self, tup, port):
                time.sleep(0.002)
                self.got.append(tup)

        sink = g.add(SlowSink())
        g.connect(src, sink)
        ThreadedEngine(g, queue_size=1).run(timeout_s=30)
        assert len(sink.got) == 30

    def test_timeout_raises(self):
        g = Graph("hang")

        class Stuck(Source):
            def generate(self):
                yield StreamTuple.data(x=1)
                time.sleep(60)

        class Devnull(Sink):
            def consume(self, tup, port):
                pass

        src = g.add(Stuck("src"))
        sink = g.add(Devnull("sink"))
        g.connect(src, sink)
        with pytest.raises(RuntimeError, match="did not finish"):
            ThreadedEngine(g).run(timeout_s=0.3)

    def test_operator_exception_propagates(self):
        g = Graph("boom")
        src = g.add(
            VectorSource("src", VectorStream.from_array(np.zeros((5, 1))))
        )

        def explode(t):
            raise ValueError("kaboom")

        f = g.add(Functor("f", explode))
        sink = g.add(CollectingSink("sink"))
        g.connect(src, f)
        g.connect(f, sink)
        with pytest.raises(ValueError, match="kaboom"):
            ThreadedEngine(g).run(timeout_s=10)

    def test_least_loaded_probe_installed(self):
        x = np.zeros((50, 2))
        g, sink = _fan_graph(x, split_strategy="least_loaded")
        ThreadedEngine(g).run(timeout_s=30)
        assert len(sink.tuples) == 50

    def test_no_leftover_threads(self):
        before = threading.active_count()
        x = np.zeros((20, 2))
        g, sink = _fan_graph(x)
        ThreadedEngine(g).run(timeout_s=30)
        time.sleep(0.05)
        assert threading.active_count() <= before + 1

    def test_queue_size_validation(self):
        x = np.zeros((5, 2))
        g, _ = _fan_graph(x)
        with pytest.raises(ValueError, match="queue_size"):
            ThreadedEngine(g, queue_size=0)


class _FinalOnClose(Functor):
    """Forwards tuples slowly; ships a ``final`` control tuple at close
    (the same shape as the PCA engines' final-state handoff)."""

    def __init__(self, name, delay_s=0.001):
        super().__init__(name, None)
        self._delay_s = delay_s

    def process(self, tup, port):
        time.sleep(self._delay_s)
        self.submit(tup)

    def close(self):
        self.submit(StreamTuple.control(type="final"))


class _LooseCollector(Sink):
    """Two-input sink that completes as soon as port 0 punctuates —
    forcing the close-vs-late-arrivals race on port 1."""

    def __init__(self, name):
        super().__init__(name, n_inputs=2)
        self.punctuation_ports = {0}
        self.port1_data = 0
        self.finals = 0

    def consume(self, tup, port):
        if tup.is_control and tup.get("type") == "final":
            self.finals += 1
        elif port == 1:
            self.port1_data += 1


def _race_graph(n=5):
    g = Graph("race")
    fast = g.add(
        VectorSource("fast", VectorStream.from_array(np.zeros((n, 1))))
    )
    slow_src = g.add(
        VectorSource("slow-src", VectorStream.from_array(np.ones((n, 1))))
    )
    slow = g.add(_FinalOnClose("slow"))
    col = g.add(_LooseCollector("collector"))
    g.connect(fast, col, in_port=0)
    g.connect(slow_src, slow)
    g.connect(slow, col, in_port=1)
    return g, col


class TestShutdownDrain:
    """Regression: `_PERunner` must drain tuples racing in during close
    (a lost `final` state would corrupt the global merge)."""

    def test_final_tuple_never_lost_in_shutdown_race(self):
        # The collector closes as soon as the fast path punctuates, while
        # the slow path is still streaming; 50 iterations of the race must
        # lose nothing.
        for _ in range(50):
            g, col = _race_graph(n=5)
            ThreadedEngine(g).run(timeout_s=30)
            assert col.finals == 1
            assert col.port1_data == 5

    def test_synchronous_engine_same_semantics(self):
        g, col = _race_graph(n=5)
        SynchronousEngine(g).run()
        assert col.finals == 1
        assert col.port1_data == 5


class _EarlyEOSSource(Source):
    """Two-port source that ends port 1 early with explicit punctuation —
    more than one punctuation flows on that port overall."""

    def __init__(self, name, n):
        super().__init__(name, n_outputs=2)
        self._n = n

    def generate(self):
        for i in range(self._n):
            if i == 2:
                self.submit(StreamTuple.data(x=np.zeros(1)), 1)
                self.submit(StreamTuple.punctuation(), 1)
            yield StreamTuple.data(x=np.zeros(1))


class TestRunStats:
    def test_throughput_zero_cases(self):
        stats = RunStats()
        assert stats.throughput() == 0.0

    def test_source_tuples_counts_punctuation_explicitly(self):
        """Regression: source_tuples assumed exactly one punctuation per
        output port; a source flowing extra punctuation was miscounted."""
        n = 6
        g = Graph("early-eos")
        src = g.add(_EarlyEOSSource("src", n))
        a = g.add(CollectingSink("a"))
        b = g.add(CollectingSink("b"))
        g.connect(src, a, out_port=0)
        g.connect(src, b, out_port=1)
        stats = SynchronousEngine(g).run()
        # n data tuples on port 0 plus one on port 1; three punctuation
        # marks total (early EOS + one per port at completion).
        assert stats.source_tuples["src"] == n + 1
        assert src.punct_out == 3

    def test_least_loaded_fallback_round_robin_synchronous(self):
        """Without a load probe the split degrades deterministically."""
        x = np.zeros((30, 2))
        g, sink = _fan_graph(x, n_ways=3, split_strategy="least_loaded")
        split = next(op for op in g if op.name == "split")
        with pytest.warns(RuntimeWarning, match="no load probe"):
            SynchronousEngine(g).run()
        assert len(sink.tuples) == 30
        assert list(split.sent_per_target) == [10, 10, 10]

    def test_least_loaded_threaded_has_probe_no_warning(self):
        import warnings as _warnings

        x = np.zeros((30, 2))
        g, sink = _fan_graph(x, n_ways=3, split_strategy="least_loaded")
        with _warnings.catch_warnings():
            _warnings.simplefilter("error", RuntimeWarning)
            ThreadedEngine(g).run(timeout_s=30)
        assert len(sink.tuples) == 30
