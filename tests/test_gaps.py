"""Tests for gap filling and gap-aware residual estimation (§II-D)."""

import numpy as np
import pytest

from repro.core import Eigensystem
from repro.core.gaps import (
    GAP_RESIDUAL_MODES,
    GapFiller,
    corrected_residual_norm2,
    estimate_residual_norm2,
    fill_from_basis,
    has_gaps,
    observed_mask,
)


@pytest.fixture
def subspace(rng):
    """A 3-dim subspace in R^30 with orthonormal basis and a mean."""
    basis, _ = np.linalg.qr(rng.standard_normal((30, 3)))
    mean = rng.standard_normal(30)
    return mean, basis


class TestMasks:
    def test_observed_mask(self):
        x = np.array([1.0, np.nan, 3.0, np.inf])
        assert list(observed_mask(x)) == [True, False, True, False]

    def test_has_gaps(self):
        assert has_gaps(np.array([1.0, np.nan]))
        assert not has_gaps(np.array([1.0, 2.0]))


class TestFillFromBasis:
    def test_exact_recovery_for_in_subspace_vectors(self, subspace, rng):
        mean, basis = subspace
        z = rng.standard_normal(3)
        x_true = mean + basis @ z
        x = x_true.copy()
        x[[2, 7, 19]] = np.nan
        result = fill_from_basis(x, mean, basis)
        assert result.n_filled == 3
        assert np.allclose(result.filled, x_true, atol=1e-6)
        assert np.allclose(result.coefficients, z, atol=1e-6)
        # Observed entries are untouched.
        assert np.array_equal(result.filled[result.mask], x[result.mask])

    def test_no_gaps_is_identity(self, subspace, rng):
        mean, basis = subspace
        x = rng.standard_normal(30)
        result = fill_from_basis(x, mean, basis)
        assert result.n_filled == 0
        assert np.array_equal(result.filled, x)
        # Returns a copy, not the input.
        result.filled[0] += 1
        assert x[0] != result.filled[0]

    def test_fully_missing_uses_mean(self, subspace):
        mean, basis = subspace
        x = np.full(30, np.nan)
        result = fill_from_basis(x, mean, basis)
        assert np.allclose(result.filled, mean)
        assert result.n_filled == 30

    def test_empty_basis_uses_mean(self, rng):
        mean = rng.standard_normal(10)
        x = rng.standard_normal(10)
        x[3] = np.nan
        result = fill_from_basis(x, mean, np.zeros((10, 0)))
        assert result.filled[3] == mean[3]

    def test_ridge_handles_degenerate_support(self, rng):
        """A gap that hides almost all of a basis vector's support must
        not blow up the fill."""
        basis = np.zeros((20, 2))
        basis[0, 0] = 1.0  # e1 supported on a single pixel...
        basis[1:, 1] = 1.0 / np.sqrt(19)
        mean = np.zeros(20)
        x = np.ones(20)
        x[0] = np.nan  # ...which is exactly the missing one
        result = fill_from_basis(x, mean, basis)
        assert np.all(np.isfinite(result.filled))
        assert abs(result.filled[0]) < 10.0

    def test_shape_mismatch(self, subspace):
        mean, basis = subspace
        with pytest.raises(ValueError, match="shape"):
            fill_from_basis(np.zeros(5), mean, basis)


class TestGapFiller:
    def test_counters(self, subspace, rng):
        mean, basis = subspace
        state = Eigensystem(
            mean=mean, basis=basis, eigenvalues=np.array([3.0, 2.0, 1.0])
        )
        filler = GapFiller(state)
        x = rng.standard_normal(30)
        filler.fill(x)  # no gaps
        x2 = x.copy()
        x2[:4] = np.nan
        filler.fill(x2)
        assert filler.n_vectors_filled == 1
        assert filler.n_entries_filled == 4

    def test_rebind_follows_new_state(self, subspace, rng):
        mean, basis = subspace
        s1 = Eigensystem(mean=mean, basis=basis,
                         eigenvalues=np.array([3.0, 2.0, 1.0]))
        s2 = Eigensystem(mean=mean + 100.0, basis=basis,
                         eigenvalues=np.array([3.0, 2.0, 1.0]))
        filler = GapFiller(s1)
        filler.rebind(s2)
        x = np.full(30, np.nan)
        out = filler.fill(x)
        assert np.allclose(out.filled, mean + 100.0)


class TestResidualEstimation:
    def _setup(self, rng):
        basis, _ = np.linalg.qr(rng.standard_normal((40, 6)))
        basis_p, basis_extra = basis[:, :3], basis[:, 3:]
        y = rng.standard_normal(40)
        mask = np.ones(40, dtype=bool)
        mask[5:15] = False
        return basis_p, basis_extra, y, mask

    def test_observed_mode_matches_manual(self, rng):
        bp, be, y, mask = self._setup(rng)
        got = estimate_residual_norm2(y, mask, bp, be, "observed")
        recon = bp @ (bp.T @ y)
        manual = float(np.sum((y - recon)[mask] ** 2))
        assert got == pytest.approx(manual)

    def test_higher_order_adds_structured_term(self, rng):
        bp, be, y, mask = self._setup(rng)
        obs = estimate_residual_norm2(y, mask, bp, be, "observed")
        ho = estimate_residual_norm2(y, mask, bp, be, "higher-order")
        extra = be @ (be.T @ y)
        assert ho == pytest.approx(obs + float(np.sum(extra[~mask] ** 2)))
        assert ho >= obs

    def test_extrapolate_scales_by_coverage(self, rng):
        bp, be, y, mask = self._setup(rng)
        obs = estimate_residual_norm2(y, mask, bp, be, "observed")
        ex = estimate_residual_norm2(y, mask, bp, be, "extrapolate")
        assert ex == pytest.approx(obs * 40 / mask.sum())

    def test_hybrid_dominates_both(self, rng):
        bp, be, y, mask = self._setup(rng)
        ho = estimate_residual_norm2(y, mask, bp, be, "higher-order")
        ex = estimate_residual_norm2(y, mask, bp, be, "extrapolate")
        hy = estimate_residual_norm2(y, mask, bp, be, "hybrid")
        assert hy >= max(ho, ex) - 1e-12

    def test_no_gaps_all_modes_agree(self, rng):
        bp, be, y, _ = self._setup(rng)
        mask = np.ones(40, dtype=bool)
        vals = {
            m: estimate_residual_norm2(y, mask, bp, be, m)
            for m in GAP_RESIDUAL_MODES
        }
        ref = vals["observed"]
        assert all(v == pytest.approx(ref) for v in vals.values())

    def test_corrected_residual_is_higher_order_mode(self, rng):
        bp, be, y, mask = self._setup(rng)
        assert corrected_residual_norm2(y, mask, bp, be) == pytest.approx(
            estimate_residual_norm2(y, mask, bp, be, "higher-order")
        )

    def test_unknown_mode(self, rng):
        bp, be, y, mask = self._setup(rng)
        with pytest.raises(ValueError, match="unknown gap residual mode"):
            estimate_residual_norm2(y, mask, bp, be, "bogus")

    def test_shape_mismatch(self, rng):
        bp, be, y, mask = self._setup(rng)
        with pytest.raises(ValueError, match="shape"):
            estimate_residual_norm2(y[:10], mask, bp, be, "observed")


class TestIterativeGapFill:
    """The offline multi-pass baseline the streaming method supersedes."""

    def test_recovers_subspace_and_values(self, rng):
        from repro.core import largest_principal_angle
        from repro.core.gaps import iterative_gap_fill
        from repro.data import PlantedSubspaceModel

        model = PlantedSubspaceModel(
            dim=30, signal_variances=(16.0, 9.0, 4.0), noise_std=0.2, seed=2
        )
        x = model.sample(800, rng)
        gappy = x.copy()
        mask = rng.random(x.shape) < 0.2
        gappy[mask] = np.nan
        filled, state, n_iter = iterative_gap_fill(gappy, 3)
        assert n_iter >= 1
        assert np.all(np.isfinite(filled))
        # Observed entries preserved.
        assert np.array_equal(filled[~mask], x[~mask])
        # Filled entries reconstructed to ~the noise floor.
        rmse = float(np.sqrt(np.mean((filled[mask] - x[mask]) ** 2)))
        assert rmse < 3 * model.noise_std
        assert largest_principal_angle(state.basis, model.basis) < 0.1

    def test_complete_data_converges_immediately(self, rng):
        from repro.core.gaps import iterative_gap_fill

        x = rng.standard_normal((50, 8))
        filled, _, n_iter = iterative_gap_fill(x, 2)
        assert np.array_equal(filled, x)
        assert n_iter == 1

    def test_validation(self, rng):
        from repro.core.gaps import iterative_gap_fill

        with pytest.raises(ValueError, match="\\(n, d\\)"):
            iterative_gap_fill(np.zeros(5), 2)
        bad = rng.standard_normal((5, 4))
        bad[0] = np.nan
        with pytest.raises(ValueError, match="at least one observed"):
            iterative_gap_fill(bad, 2)
