"""Chaos harness: scenarios, fault injection, reports, acceptance."""

import pytest

from repro.streams.chaos import (
    ChaosScenario,
    FaultSpec,
    kill_engine_scenario,
    load_chaos_reports,
    network_flap_scenario,
    poison_scenario,
    queue_stall_scenario,
    run_scenario,
    run_suite,
    slow_operator_scenario,
    smoke_suite,
    write_chaos_reports,
)

#: The acceptance bar: chaos must not push the merged global basis
#: further than this from the fault-free solution.
MIN_AFFINITY = 0.98


class TestSpecs:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor")

    def test_op_required_except_poison(self):
        with pytest.raises(ValueError, match="needs an op"):
            FaultSpec(kind="crash")
        FaultSpec(kind="poison")  # fine

    def test_windows_validated(self):
        with pytest.raises(ValueError, match="at_tuple"):
            FaultSpec(kind="poison", at_tuple=0)
        with pytest.raises(ValueError, match="duration"):
            FaultSpec(kind="poison", duration=0)

    def test_worker_kill_needs_process_runtime(self):
        with pytest.raises(ValueError, match="process runtime"):
            ChaosScenario(
                name="x",
                faults=(FaultSpec(kind="worker_kill", op="pca-0"),),
                runtime="threaded",
            )

    def test_kill_engine_rejected_on_process_runtime(self):
        with pytest.raises(ValueError, match="worker_kill"):
            ChaosScenario(
                name="x",
                faults=(FaultSpec(kind="kill_engine", op="pca-0"),),
                runtime="process",
            )

    def test_injector_cannot_target_worker_side_op(self):
        with pytest.raises(ValueError, match="pickle|worker process"):
            ChaosScenario(
                name="x",
                faults=(
                    FaultSpec(kind="delay", op="pca-0", seconds=0.01),
                ),
                runtime="process",
            )

    def test_unknown_runtime_rejected(self):
        with pytest.raises(ValueError, match="runtime"):
            ChaosScenario(name="x", runtime="quantum")


class TestKillEngine:
    """Acceptance: kill 1 of 4 engines mid-stream, merge must survive."""

    @pytest.mark.parametrize("runtime", ["synchronous", "threaded"])
    def test_evict_rejoin_reseed_and_affinity(self, runtime):
        report = run_scenario(kill_engine_scenario(runtime))
        assert report.ok, report.error
        assert report.n_evictions >= 1
        assert report.n_rejoins >= 1
        assert report.n_reseeds >= 1
        assert report.n_duplicated == 0
        # Only the blackout window is lost, never the whole partition.
        fault = kill_engine_scenario(runtime).faults[0]
        assert 0 < report.n_lost <= fault.duration
        assert report.affinity is not None
        assert report.affinity >= MIN_AFFINITY
        kinds = {
            (e.get("kind"), e.get("event") or e.get("fault"))
            for e in report.events
        }
        assert ("chaos", "kill_engine") in kinds
        assert ("membership", "evictions") in kinds
        assert ("membership", "rejoins") in kinds
        assert ("membership", "reseeds") in kinds
        assert report.recovery_time_s is not None
        assert report.recovery_time_s > 0

    def test_synchronous_runtime_is_deterministic(self):
        a = run_scenario(kill_engine_scenario("synchronous"))
        b = run_scenario(kill_engine_scenario("synchronous"))
        assert (a.n_lost, a.n_evictions, a.n_rejoins, a.n_reseeds) == (
            b.n_lost, b.n_evictions, b.n_rejoins, b.n_reseeds
        )
        assert a.affinity == pytest.approx(b.affinity, abs=0)
        assert a.membership == b.membership

    def test_worker_sigkill_on_process_runtime(self):
        report = run_scenario(kill_engine_scenario("process"))
        assert report.ok, report.error
        assert report.n_evictions >= 1
        assert report.n_rejoins >= 1
        assert report.affinity is not None
        assert report.affinity >= MIN_AFFINITY
        kinds = {
            (e.get("kind"), e.get("event") or e.get("fault"))
            for e in report.events
        }
        assert ("chaos", "worker_kill") in kinds
        assert ("membership", "evictions") in kinds
        assert ("membership", "rejoins") in kinds
        # A SIGKILL loses at most the in-flight transport window plus
        # updates since the last checkpoint — bounded, not the stream.
        assert report.n_lost < report.n_input // 2


class TestPoison:
    """Acceptance: poison tuples land in the DLQ, nothing crashes."""

    @pytest.mark.parametrize("runtime", ["synchronous", "threaded"])
    def test_output_is_input_minus_quarantined(self, runtime):
        scenario = poison_scenario(runtime, n_poison=12)
        report = run_scenario(scenario)
        assert report.ok, report.error
        assert report.n_quarantined == 12
        assert report.n_processed == report.n_input - 12
        assert report.n_lost == 0
        assert report.n_duplicated == 0
        dlq_events = [
            e for e in report.events if e.get("kind") == "dlq"
        ]
        assert len(dlq_events) == 12


class TestBackgroundFaults:
    def test_slow_operator_loses_nothing(self):
        report = run_scenario(slow_operator_scenario("threaded"))
        assert report.ok, report.error
        assert report.n_lost == 0
        assert report.n_duplicated == 0
        assert report.affinity >= MIN_AFFINITY

    def test_queue_stall_is_absorbed(self):
        report = run_scenario(queue_stall_scenario("threaded"))
        assert report.ok, report.error
        assert report.n_lost == 0
        assert report.affinity >= MIN_AFFINITY


class TestReports:
    def test_jsonl_round_trip(self, tmp_path):
        scenario = poison_scenario("synchronous", n_poison=4)
        reports = run_suite([scenario], out=tmp_path / "chaos.jsonl")
        loaded = load_chaos_reports(tmp_path / "chaos.jsonl")
        assert len(loaded) == 1
        back = loaded[0]
        assert back["scenario"] == scenario.name
        assert back["ok"] is True
        assert back["n_quarantined"] == 4
        assert back["n_input"] == reports[0].n_input
        assert isinstance(back["events"], list)

    def test_write_appends(self, tmp_path):
        path = tmp_path / "chaos.jsonl"
        r = run_scenario(poison_scenario("synchronous", n_poison=2))
        write_chaos_reports([r], path)
        write_chaos_reports([r], path)
        assert len(load_chaos_reports(path)) == 2

    def test_smoke_suite_covers_fault_families(self):
        suite = smoke_suite("threaded")
        kinds = {f.kind for s in suite for f in s.faults}
        assert kinds == {"kill_engine", "poison", "delay"}
        assert all(s.runtime == "threaded" for s in suite)
        suite = smoke_suite("process")
        assert {f.kind for s in suite for f in s.faults} == {
            "worker_kill", "poison", "delay"
        }


class TestNetworkFlap:
    def test_reconnects_and_completes(self):
        report = network_flap_scenario(
            seed=3, n_samples=150, flap_every=40, max_flaps=2
        )
        assert report.ok, report.error
        assert report.n_reconnects >= 1
        assert report.n_duplicated == 0
        # RST may discard in-flight rows; the loss must stay bounded by
        # what was on the wire, never a whole connection's worth.
        assert report.n_lost <= 2 * 40
        assert report.n_observed + report.n_lost == report.n_input
