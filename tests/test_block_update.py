"""Tests for the batched hot path: the rank-k kernel, the block update
routes of both estimators, their equivalence contract against the
sequential path, the preallocated warm-up buffer, and NotFittedError."""

import numpy as np
import pytest

from repro.core import (
    BlockUpdateResult,
    Eigensystem,
    IncrementalPCA,
    NotFittedError,
    RobustIncrementalPCA,
    fill_block_from_basis,
    rank_k_update,
    rank_one_update,
)
from repro.core.metrics import principal_angles


def planted(rng, n, d, p, variances=None, noise=0.0):
    basis = np.linalg.qr(rng.standard_normal((d, p)))[0]
    if variances is None:
        variances = np.arange(2 * p, p, -1, dtype=float)
    z = rng.standard_normal((n, p)) * np.sqrt(variances)
    x = z @ basis.T
    if noise:
        x = x + noise * rng.standard_normal((n, d))
    return x, basis


def subspace_affinity(a, b):
    """min cos of the principal angles between two (d, p) bases."""
    return float(np.cos(principal_angles(a, b).max()))


class TestRankKKernel:
    def test_matches_dense_eigendecomposition(self):
        """γ·EΛEᵀ + Σ cᵢ yᵢyᵢᵀ, solved low-rank vs dense."""
        rng = np.random.default_rng(0)
        d, p, k = 30, 4, 12
        basis = np.linalg.qr(rng.standard_normal((d, p)))[0]
        lam = np.array([5.0, 3.0, 2.0, 1.0])
        block = rng.standard_normal((k, d))
        weights = rng.random(k) + 0.1
        gamma = 0.8

        dense = gamma * basis @ np.diag(lam) @ basis.T
        dense += (block.T * weights) @ block
        ew_dense = np.linalg.eigvalsh(dense)[::-1]

        e_new, lam_new = rank_k_update(basis, lam, block, gamma, weights, p)
        assert lam_new.shape == (p,)
        assert np.allclose(lam_new, ew_dense[:p], atol=1e-10)
        # Returned basis is orthonormal and spans the dense top-p space.
        assert np.allclose(e_new.T @ e_new, np.eye(p), atol=1e-10)
        ew, ev = np.linalg.eigh(dense)
        top = ev[:, ::-1][:, :p]
        assert subspace_affinity(e_new, top) > 1 - 1e-10

    def test_single_row_matches_rank_one(self):
        rng = np.random.default_rng(1)
        d, p = 20, 3
        basis = np.linalg.qr(rng.standard_normal((d, p)))[0]
        lam = np.array([4.0, 2.0, 1.0])
        y = rng.standard_normal(d)
        e1, l1 = rank_one_update(basis, lam, y, 0.9, 0.1, p)
        ek, lk = rank_k_update(basis, lam, y[None, :], 0.9, np.array([0.1]), p)
        assert np.allclose(l1, lk, atol=1e-10)
        assert subspace_affinity(e1, ek) > 1 - 1e-10

    def test_zero_weight_rows_are_dropped(self):
        rng = np.random.default_rng(2)
        d, p = 15, 3
        basis = np.linalg.qr(rng.standard_normal((d, p)))[0]
        lam = np.array([3.0, 2.0, 1.0])
        block = rng.standard_normal((5, d))
        w = np.array([0.5, 0.0, 0.3, 0.0, 0.2])
        e_a, l_a = rank_k_update(basis, lam, block, 0.9, w, p)
        e_b, l_b = rank_k_update(
            basis, lam, block[w > 0], 0.9, w[w > 0], p
        )
        assert np.allclose(l_a, l_b, atol=1e-12)
        assert subspace_affinity(e_a, e_b) > 1 - 1e-12

    def test_all_zero_weights_is_pure_decay(self):
        rng = np.random.default_rng(3)
        d, p = 10, 2
        basis = np.linalg.qr(rng.standard_normal((d, p)))[0]
        lam = np.array([2.0, 1.0])
        e, l = rank_k_update(
            basis, lam, rng.standard_normal((4, d)), 0.5, np.zeros(4), p
        )
        assert np.allclose(e, basis)
        assert np.allclose(l, 0.5 * lam)

    def test_empty_basis_bootstraps_from_block(self):
        rng = np.random.default_rng(4)
        d, p, k = 12, 3, 8
        block = rng.standard_normal((k, d))
        w = np.ones(k)
        e, l = rank_k_update(np.zeros((d, 0)), np.zeros(0), block, 1.0, w, p)
        ew = np.linalg.eigvalsh(block.T @ block)[::-1]
        assert np.allclose(l, ew[:p], atol=1e-10)

    def test_validation(self):
        rng = np.random.default_rng(5)
        d, p = 10, 2
        basis = np.linalg.qr(rng.standard_normal((d, p)))[0]
        lam = np.array([2.0, 1.0])
        block = rng.standard_normal((3, d))
        with pytest.raises(ValueError):
            rank_k_update(basis, lam, block, 1.0, np.ones(2), p)  # k mismatch
        with pytest.raises(ValueError):
            rank_k_update(basis, lam, block, 1.0, -np.ones(3), p)
        with pytest.raises(ValueError):
            rank_k_update(basis, lam, block[:, :5], 1.0, np.ones(3), p)


class TestClassicalEquivalence:
    def test_alpha_one_exact(self):
        """α=1, data of rank ≤ p: block path equals sequential to 1e-8."""
        rng = np.random.default_rng(10)
        d, p = 50, 5
        x, _ = planted(rng, 600, d, p, noise=0.0)
        seq = IncrementalPCA(p, alpha=1.0, init_size=10)
        blk = IncrementalPCA(p, alpha=1.0, init_size=10)
        for row in x:
            seq.update(row)
        blk.update_block(x)
        assert np.allclose(seq.mean_, blk.mean_, atol=1e-8)
        assert np.allclose(seq.eigenvalues_, blk.eigenvalues_, atol=1e-8)
        assert subspace_affinity(seq.state.basis, blk.state.basis) > 1 - 1e-8
        assert seq.state.sum_count == pytest.approx(blk.state.sum_count)
        assert seq.n_seen == blk.n_seen

    def test_alpha_one_mean_exact_on_noisy_data(self):
        """The mean recursion is exact for any data (no truncation)."""
        rng = np.random.default_rng(11)
        x = rng.standard_normal((400, 30)) + 5.0
        seq = IncrementalPCA(4, alpha=1.0, init_size=8)
        blk = IncrementalPCA(4, alpha=1.0, init_size=8)
        for row in x:
            seq.update(row)
        blk.update_block(x)
        assert np.allclose(seq.mean_, blk.mean_, atol=1e-10)

    def test_forgetting_subspace_affinity(self):
        """α<1 per-block approximation: affinity ≥ 0.99 on the Gaussian
        stream (the documented equivalence contract)."""
        rng = np.random.default_rng(12)
        d, p = 60, 5
        x, truth = planted(rng, 2000, d, p, noise=0.1)
        seq = IncrementalPCA(p, alpha=0.995, init_size=10)
        blk = IncrementalPCA(p, alpha=0.995, init_size=10)
        for row in x:
            seq.update(row)
        blk.update_block(x)
        assert subspace_affinity(seq.state.basis, blk.state.basis) >= 0.99
        assert np.allclose(seq.mean_, blk.mean_, atol=1e-8)
        assert seq.state.sum_count == pytest.approx(blk.state.sum_count)

    def test_forgetting_exact_on_rank_p_data(self):
        """With no truncation loss the α<1 unrolling is exact too."""
        rng = np.random.default_rng(13)
        d, p = 40, 4
        x, _ = planted(rng, 500, d, p, noise=0.0)
        seq = IncrementalPCA(p, alpha=0.99, init_size=10)
        blk = IncrementalPCA(p, alpha=0.99, init_size=10)
        for row in x:
            seq.update(row)
        blk.update_block(x)
        assert np.allclose(seq.eigenvalues_, blk.eigenvalues_, atol=1e-8)
        assert np.allclose(seq.mean_, blk.mean_, atol=1e-8)

    def test_chunking_invariance(self):
        """Feeding one big block or many small ones converges to the
        same subspace (chunk boundaries only move diagnostics)."""
        rng = np.random.default_rng(14)
        x, _ = planted(rng, 900, 30, 3, noise=0.05)
        one = IncrementalPCA(3, alpha=1.0, init_size=10)
        many = IncrementalPCA(3, alpha=1.0, init_size=10)
        one.update_block(x)
        for start in range(0, 900, 37):
            many.update_block(x[start : start + 37])
        assert np.allclose(one.mean_, many.mean_, atol=1e-8)
        assert (
            subspace_affinity(one.state.basis, many.state.basis) > 1 - 1e-6
        )

    def test_block_result_diagnostics(self):
        rng = np.random.default_rng(15)
        x = rng.standard_normal((50, 20))
        est = IncrementalPCA(3, init_size=10)
        res = est.update_block(x)
        assert isinstance(res, BlockUpdateResult)
        assert res.n_buffered == 10
        assert res.n_processed == 40
        assert res.weights.shape == (40,)
        assert np.all(res.weights == 1.0)
        assert res.n_outliers == 0
        assert np.array_equal(
            res.indices, np.arange(10, 50, dtype=np.int64)
        )


class TestRobustEquivalence:
    def test_outlier_parity_and_affinity(self):
        """Block and sequential robust paths flag the same outliers and
        agree on the subspace to ≥ 0.99 affinity."""
        rng = np.random.default_rng(20)
        d, p = 60, 5
        x, truth = planted(
            rng, 1500, d, p, variances=[100, 64, 36, 16, 9], noise=0.1
        )
        out_rows = rng.random(1500) < 0.05
        # Keep the warm-up buffer clean: an outlier inside it poisons the
        # initial scale for both paths alike (a robust_init=False
        # transient, orthogonal to what this test compares).
        out_rows[:50] = False
        x[out_rows] += 50.0 * rng.standard_normal((int(out_rows.sum()), d))

        seq = RobustIncrementalPCA(p, alpha=0.999, init_size=20)
        blk = RobustIncrementalPCA(p, alpha=0.999, init_size=20)
        seq_flags = np.zeros(1500, dtype=bool)
        for i, row in enumerate(x):
            r = seq.update(row)
            if r is not None:
                seq_flags[i] = r.is_outlier
        res = blk.update_block(x)
        blk_flags = np.zeros(1500, dtype=bool)
        blk_flags[res.indices] = res.is_outlier
        assert subspace_affinity(
            seq.components_.T, blk.components_.T
        ) >= 0.99
        assert res.n_processed + res.n_buffered == 1500
        # Every planted outlier past warm-up is caught by both paths,
        # and the per-row decisions agree almost everywhere (borderline
        # inliers may flip with the block-start scale approximation).
        planted_out = out_rows.copy()
        planted_out[:20] = False
        assert np.all(seq_flags[planted_out])
        assert np.all(blk_flags[planted_out])
        assert np.mean(seq_flags == blk_flags) >= 0.97
        # And both reject the contamination (vs the planted truth).
        assert subspace_affinity(blk.components_.T, truth) >= 0.99

    def test_gappy_block(self):
        rng = np.random.default_rng(21)
        d, p = 40, 4
        x, _ = planted(rng, 600, d, p, noise=0.1)
        gap_mask = rng.random(x.shape) < 0.1
        x_gappy = x.copy()
        x_gappy[gap_mask] = np.nan
        # One row almost fully missing -> skipped.
        x_gappy[300, 1:] = np.nan

        seq = RobustIncrementalPCA(
            p, alpha=0.999, init_size=20, extra_components=2
        )
        blk = RobustIncrementalPCA(
            p, alpha=0.999, init_size=20, extra_components=2
        )
        for row in x_gappy:
            seq.update(row)
        res = blk.update_block(x_gappy)
        assert blk.n_skipped == seq.n_skipped >= 1
        assert res.n_filled > 0
        assert subspace_affinity(
            seq.components_.T, blk.components_.T
        ) >= 0.99
        # Skipped row is absent from the processed index map.
        assert 300 not in set(res.indices.tolist())

    def test_nan_without_handle_gaps_raises(self):
        est = RobustIncrementalPCA(2, init_size=4, handle_gaps=False)
        est.update_block(np.random.default_rng(0).standard_normal((4, 10)))
        bad = np.ones((3, 10))
        bad[1, 2] = np.nan
        with pytest.raises(ValueError, match="handle_gaps=False"):
            est.update_block(bad)

    def test_counters_match_sequential(self):
        rng = np.random.default_rng(22)
        x = rng.standard_normal((400, 30))
        seq = RobustIncrementalPCA(3, alpha=0.99, init_size=10)
        blk = RobustIncrementalPCA(3, alpha=0.99, init_size=10)
        for row in x:
            seq.update(row)
        blk.update_block(x)
        assert blk.n_seen == seq.n_seen
        assert blk.state.sum_count == pytest.approx(
            seq.state.sum_count, rel=1e-9
        )


class TestPartialFitRouting:
    def test_partial_fit_does_not_loop_rank_one(self, monkeypatch):
        """Regression (satellite 1): post-init blocks must go through the
        block kernel, not a per-row rank_one_update loop."""
        import repro.core.incremental as inc

        calls = {"rank_one": 0, "rank_k": 0}
        real_k = inc.rank_k_update

        def counting_rank_one(*a, **kw):  # pragma: no cover - must not run
            calls["rank_one"] += 1
            raise AssertionError("partial_fit fell back to rank_one_update")

        def counting_rank_k(*a, **kw):
            calls["rank_k"] += 1
            return real_k(*a, **kw)

        monkeypatch.setattr(inc, "rank_one_update", counting_rank_one)
        monkeypatch.setattr(inc, "rank_k_update", counting_rank_k)

        rng = np.random.default_rng(30)
        est = IncrementalPCA(3, init_size=10)
        est.partial_fit(rng.standard_normal((200, 25)))
        assert calls["rank_one"] == 0
        # One eigensolve per chunk, nowhere near one per row.
        assert 1 <= calls["rank_k"] <= 4

    def test_robust_partial_fit_does_not_loop_rank_one(self, monkeypatch):
        import repro.core.robust as rob

        calls = {"rank_one": 0}

        def counting_rank_one(*a, **kw):  # pragma: no cover - must not run
            calls["rank_one"] += 1
            raise AssertionError(
                "robust partial_fit fell back to rank_one_update"
            )

        monkeypatch.setattr(rob, "rank_one_update", counting_rank_one)
        rng = np.random.default_rng(31)
        est = RobustIncrementalPCA(3, alpha=0.999, init_size=10)
        est.partial_fit(rng.standard_normal((300, 25)))
        assert calls["rank_one"] == 0
        assert est.is_initialized

    def test_sequential_update_still_uses_rank_one(self, monkeypatch):
        """The per-row entry point keeps its rank-one cost profile."""
        import repro.core.incremental as inc

        calls = {"n": 0}
        real = inc.rank_one_update

        def counting(*a, **kw):
            calls["n"] += 1
            return real(*a, **kw)

        monkeypatch.setattr(inc, "rank_one_update", counting)
        rng = np.random.default_rng(32)
        est = IncrementalPCA(3, init_size=10)
        for row in rng.standard_normal((30, 12)):
            est.update(row)
        assert calls["n"] == 20


class TestWarmupBuffer:
    def test_no_python_list_buffer(self):
        """Regression (satellite 2): warm-up storage is a preallocated
        array, not a list of row copies."""
        est = IncrementalPCA(3, init_size=8)
        est.update(np.zeros(16))
        assert not isinstance(est._buffer, list)
        assert isinstance(est._buffer._rows, np.ndarray)
        assert est._buffer._rows.shape == (8, 16)
        rob = RobustIncrementalPCA(3, init_size=8)
        rob.update(np.zeros(16))
        assert not isinstance(rob._buffer, list)
        assert isinstance(rob._buffer._rows, np.ndarray)

    def test_buffer_freed_after_initialize(self):
        rng = np.random.default_rng(40)
        est = IncrementalPCA(3, init_size=8)
        est.update_block(rng.standard_normal((8, 16)))
        assert est.is_initialized
        assert est._buffer._rows is None

    def test_dimension_mismatch_during_warmup(self):
        est = IncrementalPCA(3, init_size=8)
        est.update(np.zeros(16))
        with pytest.raises(ValueError, match="dim"):
            est.update(np.zeros(12))

    def test_block_spanning_warmup_boundary(self):
        rng = np.random.default_rng(41)
        x, _ = planted(rng, 60, 20, 3, noise=0.05)
        est = IncrementalPCA(3, init_size=10)
        res1 = est.update_block(x[:7])
        assert res1.n_buffered == 7 and res1.n_processed == 0
        assert not est.is_initialized
        res2 = est.update_block(x[7:])
        assert res2.n_buffered == 3
        assert res2.n_processed == 50
        assert est.is_initialized
        assert est.n_seen == 60

    def test_robust_warmup_gap_patching_preserved(self):
        rng = np.random.default_rng(42)
        x = rng.standard_normal((30, 12)) + 3.0
        x[2, 4] = np.nan
        x[5, 0] = np.nan
        est = RobustIncrementalPCA(2, init_size=20)
        res = est.update_block(x)
        assert est.is_initialized
        assert np.all(np.isfinite(est.mean_))
        assert res.n_buffered == 20


class TestNotFittedError:
    @pytest.mark.parametrize(
        "method,arg",
        [
            ("transform", np.zeros(8)),
            ("inverse_transform", np.zeros(3)),
            ("reconstruction_error", np.zeros(8)),
        ],
    )
    def test_incremental_inference_before_fit(self, method, arg):
        est = IncrementalPCA(3, init_size=5)
        with pytest.raises(NotFittedError, match="not initialized"):
            getattr(est, method)(arg)

    def test_robust_inference_before_fit(self):
        est = RobustIncrementalPCA(3, init_size=5)
        with pytest.raises(NotFittedError, match="not initialized"):
            est.transform(np.zeros(8))
        with pytest.raises(NotFittedError, match="not calibrated"):
            est.rho

    def test_notfitted_is_runtimeerror(self):
        """Back-compat: existing RuntimeError catches keep working."""
        assert issubclass(NotFittedError, RuntimeError)
        est = IncrementalPCA(3, init_size=5)
        with pytest.raises(RuntimeError, match="not initialized"):
            est.state

    def test_message_reports_warmup_progress(self):
        est = IncrementalPCA(3, init_size=5)
        est.update(np.zeros(4))
        est.update(np.zeros(4))
        with pytest.raises(NotFittedError, match="2/5"):
            est.state


class TestBlockGapFill:
    def test_complete_rows_untouched(self):
        rng = np.random.default_rng(50)
        d, p = 12, 3
        basis = np.linalg.qr(rng.standard_normal((d, p)))[0]
        mean = rng.standard_normal(d)
        x = rng.standard_normal((6, d))
        x[2, 3] = np.nan
        x[4, 0] = np.nan
        x[4, 7] = np.nan
        res = fill_block_from_basis(x, mean, basis)
        assert np.all(np.isfinite(res.filled))
        clean = [0, 1, 3, 5]
        assert np.array_equal(res.filled[clean], x[clean])
        assert list(res.gappy_rows) == [2, 4]
        assert res.n_filled_per_row[2] == 1
        assert res.n_filled_per_row[4] == 2
        assert res.n_filled == 3
