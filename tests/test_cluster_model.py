"""Tests for the cluster model: topology, network, costs, placement,
and the simulated streaming-PCA application."""

import numpy as np
import pytest

from repro.cluster import (
    PAPER_TESTBED,
    ClusterSpec,
    Network,
    PCACostModel,
    Placement,
    SimConfig,
    Simulator,
    simulate_streaming_pca,
)


class TestClusterSpec:
    def test_paper_testbed_matches_paper(self):
        assert PAPER_TESTBED.n_nodes == 10
        assert PAPER_TESTBED.cores_per_node == 4
        assert PAPER_TESTBED.link_bandwidth_bps == 1e9
        assert PAPER_TESTBED.total_cores == 40

    def test_wire_time(self):
        spec = ClusterSpec(link_bandwidth_bps=1e9, frame_overhead_bytes=0)
        assert spec.wire_time(125) == pytest.approx(1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(link_bandwidth_bps=0)
        with pytest.raises(ValueError):
            ClusterSpec(connection_overhead_s=-1)


class TestNetwork:
    def test_local_transfer_is_free(self):
        sim = Simulator()
        net = Network(sim, PAPER_TESTBED)

        def proc():
            yield from net.transfer(2, 2, 10_000)

        sim.process(proc())
        sim.run()
        assert sim.now == 0.0
        assert net.bytes_sent[2] == 0

    def test_remote_transfer_time(self):
        spec = ClusterSpec(connection_overhead_s=0.0)
        sim = Simulator()
        net = Network(sim, spec)
        done = []

        def proc():
            yield from net.transfer(0, 1, 1000)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        expected = 2 * spec.wire_time(1000) + spec.hop_latency_s
        assert done[0] == pytest.approx(expected)
        assert net.bytes_sent[0] == 1000
        assert net.messages_sent[0] == 1

    def test_connection_overhead_scales_with_flows(self):
        spec = ClusterSpec(connection_overhead_s=1e-3)
        sim = Simulator()
        net = Network(sim, spec)
        for dst in (1, 2, 3):
            net.register_flow(0, dst)
        assert net.active_flows(0) == 3
        done = []

        def proc():
            yield from net.transfer(0, 1, 1000)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        base = 2 * spec.wire_time(1000) + spec.hop_latency_s
        assert done[0] == pytest.approx(base + 3e-3)

    def test_self_flow_not_counted(self):
        sim = Simulator()
        net = Network(sim, PAPER_TESTBED)
        net.register_flow(1, 1)
        assert net.active_flows(1) == 0

    def test_egress_serializes(self):
        """Two messages from one node queue on the NIC."""
        spec = ClusterSpec(connection_overhead_s=0.0, link_latency_s=0.0,
                           connector_latency_s=0.0, frame_overhead_bytes=0)
        sim = Simulator()
        net = Network(sim, spec)
        done = []

        def proc(tag):
            yield from net.transfer(0, 1, 10_000_000)  # 80 ms wire
            done.append((sim.now, tag))

        sim.process(proc("a"))
        sim.process(proc("b"))
        sim.run()
        # a: egress 0.08 + ingress 0.08 = 0.16; b waits for a's egress.
        assert done[0][0] == pytest.approx(0.16)
        assert done[1][0] == pytest.approx(0.24)

    def test_node_range_checked(self):
        sim = Simulator()
        net = Network(sim, ClusterSpec(n_nodes=2))
        with pytest.raises(ValueError, match="out of range"):
            net.register_flow(0, 5)


class TestCostModel:
    def test_update_cost_monotone(self):
        cost = PCACostModel.paper_scale()
        assert cost.update_cost(500, 8) > cost.update_cost(250, 8)
        assert cost.update_cost(250, 16) > cost.update_cost(250, 8)

    def test_merge_more_expensive_than_update(self):
        cost = PCACostModel.paper_scale()
        assert cost.merge_cost(250, 8) > cost.update_cost(250, 8)

    def test_wire_sizes(self):
        assert PCACostModel.tuple_bytes(250) == 8 * 250 + 64
        assert PCACostModel.state_bytes(250, 8) == 8 * 250 * 10 + 128

    def test_send_recv_costs(self):
        cost = PCACostModel.paper_scale()
        assert cost.send_cost(1000) > cost.send_cost(0)
        assert cost.recv_cost(1000) > cost.recv_cost(0)

    def test_paper_scale_operating_point(self):
        cost = PCACostModel.paper_scale()
        # ~1.2k tuples/s for one engine at the paper's d=250, p=8.
        rate = 1.0 / cost.update_cost(250, 8)
        assert 1000 < rate < 1500

    def test_calibrate_fits_real_operator(self):
        cost = PCACostModel.calibrate(
            dims=(64, 1024), ps=(4, 8), n_updates=40
        )
        assert cost.a >= 0 and cost.b >= 0 and cost.c >= 0
        # Cost increases with dimension after calibration.
        assert cost.update_cost(2000, 8) > cost.update_cost(64, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            PCACostModel(a=-1, b=0, c=0)


class TestPlacement:
    def test_single_node(self):
        p = Placement.single_node(5, node=2)
        assert p.splitter_node == 2
        assert p.engine_nodes == (2,) * 5
        assert p.engines_on(2) == 5
        assert p.max_node() == 2

    def test_distributed_even(self):
        p = Placement.distributed_even(20, 10)
        counts = [p.engines_on(n) for n in range(10)]
        assert counts == [2] * 10  # the paper's "grouped by 2" layout
        assert p.engine_nodes[0] == 1  # starts after the splitter

    def test_default_unoptimized_relay_rule(self):
        # Few engines on a big cluster: relay hop appears.
        p1 = Placement.default_unoptimized(1, 10)
        assert p1.relay_node is not None
        assert p1.relay_node not in (p1.splitter_node, *p1.engine_nodes)
        # Busy cluster: no relay.
        p20 = Placement.default_unoptimized(20, 10)
        assert p20.relay_node is None
        p5 = Placement.default_unoptimized(5, 10)
        assert p5.relay_node is None

    def test_validation(self):
        with pytest.raises(ValueError):
            Placement.single_node(0)
        with pytest.raises(ValueError):
            Placement(splitter_node=-1, engine_nodes=(0,))
        with pytest.raises(ValueError):
            Placement(splitter_node=0, engine_nodes=())


class TestSimulatedApplication:
    def _config(self, placement, **kwargs):
        defaults = dict(
            spec=PAPER_TESTBED,
            placement=placement,
            cost=PCACostModel.paper_scale(),
            warmup_s=0.2,
            window_s=0.5,
        )
        defaults.update(kwargs)
        return SimConfig(**defaults)

    def test_single_engine_rate_matches_cost_model(self):
        report = simulate_streaming_pca(
            self._config(Placement.single_node(1))
        )
        cost = PCACostModel.paper_scale()
        ideal = 1.0 / cost.update_cost(250, 8)
        assert report.throughput == pytest.approx(ideal, rel=0.05)

    def test_single_node_saturates_at_core_count(self):
        r4 = simulate_streaming_pca(self._config(Placement.single_node(4)))
        r8 = simulate_streaming_pca(self._config(Placement.single_node(8)))
        assert r8.throughput == pytest.approx(r4.throughput, rel=0.05)
        assert max(r8.node_cpu_utilization) > 0.95

    def test_distributed_beats_single_at_scale(self):
        single = simulate_streaming_pca(
            self._config(Placement.single_node(10))
        )
        dist = simulate_streaming_pca(
            self._config(Placement.distributed_even(10, 10))
        )
        assert dist.throughput > 2 * single.throughput

    def test_determinism(self):
        cfg = self._config(Placement.distributed_even(5, 10))
        r1 = simulate_streaming_pca(cfg)
        r2 = simulate_streaming_pca(cfg)
        assert r1.throughput == r2.throughput
        assert r1.n_events == r2.n_events

    def test_sync_traffic_occurs(self):
        report = simulate_streaming_pca(
            self._config(
                Placement.distributed_even(4, 10), sync_window=100
            )
        )
        assert report.n_syncs > 0

    def test_sync_can_be_disabled(self):
        report = simulate_streaming_pca(
            self._config(
                Placement.distributed_even(4, 10),
                sync_window=100,
                sync_enabled=False,
            )
        )
        assert report.n_syncs == 0

    def test_batching_preserves_rates(self):
        cfg1 = self._config(Placement.distributed_even(5, 10), batch_size=1)
        cfg4 = self._config(Placement.distributed_even(5, 10), batch_size=4)
        r1, r4 = simulate_streaming_pca(cfg1), simulate_streaming_pca(cfg4)
        assert r4.throughput == pytest.approx(r1.throughput, rel=0.1)
        assert r4.n_events < r1.n_events

    def test_per_thread_property(self):
        report = simulate_streaming_pca(
            self._config(Placement.distributed_even(5, 10))
        )
        assert report.per_thread == pytest.approx(report.throughput / 5)

    def test_placement_must_fit_cluster(self):
        with pytest.raises(ValueError, match="placement references node"):
            self._config(
                Placement(splitter_node=0, engine_nodes=(15,))
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            self._config(Placement.single_node(1), dim=0)
        with pytest.raises(ValueError):
            self._config(Placement.single_node(1), window_s=0.0)
        with pytest.raises(ValueError):
            self._config(Placement.single_node(1), batch_size=0)


class TestLatencyAndOpenLoop:
    def _cfg(self, placement, **kwargs):
        defaults = dict(
            spec=PAPER_TESTBED,
            placement=placement,
            cost=PCACostModel.paper_scale(),
            warmup_s=0.2,
            window_s=0.5,
        )
        defaults.update(kwargs)
        return SimConfig(**defaults)

    def test_open_loop_matches_offered_rate(self):
        report = simulate_streaming_pca(
            self._cfg(
                Placement.distributed_even(4, 10),
                offered_rate_per_engine=300.0,
            )
        )
        assert report.throughput == pytest.approx(4 * 300.0, rel=0.05)

    def test_open_loop_cannot_exceed_capacity(self):
        cost = PCACostModel.paper_scale()
        capacity = 1.0 / cost.update_cost(250, 8)
        report = simulate_streaming_pca(
            self._cfg(
                Placement.single_node(1),
                offered_rate_per_engine=10 * capacity,
            )
        )
        assert report.throughput == pytest.approx(capacity, rel=0.05)

    def test_fused_latency_below_distributed(self):
        kwargs = dict(offered_rate_per_engine=500.0)
        fused = simulate_streaming_pca(
            self._cfg(Placement.single_node(4), **kwargs)
        )
        dist = simulate_streaming_pca(
            self._cfg(Placement.distributed_even(4, 10), **kwargs)
        )
        assert 0 < fused.latency_p50_s < dist.latency_p50_s
        assert fused.latency_p95_s <= dist.latency_p95_s

    def test_latency_percentiles_ordered(self):
        report = simulate_streaming_pca(
            self._cfg(
                Placement.distributed_even(4, 10),
                offered_rate_per_engine=500.0,
            )
        )
        assert (
            report.latency_p50_s
            <= report.latency_mean_s * 1.5 + 1e-12
        )
        assert report.latency_p50_s <= report.latency_p95_s

    def test_offered_rate_validation(self):
        with pytest.raises(ValueError, match="offered_rate"):
            self._cfg(
                Placement.single_node(1), offered_rate_per_engine=0.0
            )


class TestTuning:
    def test_finds_the_paper_optimum(self):
        from repro.cluster import optimal_thread_count, scaling_efficiency

        result = optimal_thread_count(
            PAPER_TESTBED,
            PCACostModel.paper_scale(),
            candidates=(1, 5, 10, 20, 30),
        )
        # "The optimum number is 2 instances per node" — 20 on 10 nodes.
        assert result.best_threads == 20
        assert result.best_throughput > result.throughput_of(30)
        eff = scaling_efficiency(result)
        assert eff[5] > 0.9          # near-linear early
        assert eff[30] < eff[5]      # saturation knee

    def test_custom_placement_rule(self):
        from repro.cluster import optimal_thread_count

        result = optimal_thread_count(
            PAPER_TESTBED,
            PCACostModel.paper_scale(),
            candidates=(1, 4),
            placement_rule=lambda n, nodes: Placement.single_node(n),
        )
        assert result.best_threads == 4  # core-bound single node

    def test_efficiency_requires_base_point(self):
        from repro.cluster import optimal_thread_count, scaling_efficiency

        result = optimal_thread_count(
            PAPER_TESTBED, PCACostModel.paper_scale(), candidates=(5, 10)
        )
        with pytest.raises(ValueError, match="single-engine"):
            scaling_efficiency(result)


class TestHeterogeneousNodes:
    def test_faster_nodes_get_more_data(self):
        """The paper's load-balancer property: work-conserving delivery
        sends more tuples to faster engines."""
        spec = ClusterSpec(n_nodes=3)
        factors = (1.0, 1.0, 2.0)  # node 2 twice as fast
        placement = Placement(splitter_node=0, engine_nodes=(1, 2))
        # d=1000 keeps even the fast engine compute-bound (below the
        # per-channel supply cap), so the ratio is purely speed-driven.
        cfg = SimConfig(
            spec=spec,
            placement=placement,
            cost=PCACostModel.paper_scale(),
            node_speed_factors=factors,
            dim=1000,
            warmup_s=0.2,
            window_s=0.5,
        )
        report = simulate_streaming_pca(cfg)
        slow, fast = report.per_engine
        assert fast == pytest.approx(2 * slow, rel=0.1)

    def test_homogeneous_default_unchanged(self):
        placement = Placement.distributed_even(4, 10)
        base = SimConfig(
            spec=PAPER_TESTBED, placement=placement,
            cost=PCACostModel.paper_scale(), warmup_s=0.2, window_s=0.5,
        )
        uniform = SimConfig(
            spec=PAPER_TESTBED, placement=placement,
            cost=PCACostModel.paper_scale(),
            node_speed_factors=(1.0,) * 10,
            warmup_s=0.2, window_s=0.5,
        )
        assert simulate_streaming_pca(base).throughput == pytest.approx(
            simulate_streaming_pca(uniform).throughput
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="one entry per node"):
            SimConfig(
                spec=PAPER_TESTBED,
                placement=Placement.single_node(1),
                cost=PCACostModel.paper_scale(),
                node_speed_factors=(1.0, 2.0),
            )
        with pytest.raises(ValueError, match="positive"):
            SimConfig(
                spec=PAPER_TESTBED,
                placement=Placement.single_node(1),
                cost=PCACostModel.paper_scale(),
                node_speed_factors=(0.0,) * 10,
            )
