"""Tests for the Gaussian planted-subspace workload generators."""

import numpy as np
import pytest

from repro.data.gaussian import (
    DriftingSubspaceModel,
    PlantedSubspaceModel,
    random_orthonormal,
)


class TestRandomOrthonormal:
    def test_orthonormal_columns(self, rng):
        q = random_orthonormal(20, 5, rng)
        assert q.shape == (20, 5)
        assert np.allclose(q.T @ q, np.eye(5), atol=1e-12)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_orthonormal(5, 6, rng)
        with pytest.raises(ValueError):
            random_orthonormal(5, 0, rng)


class TestPlantedSubspaceModel:
    def test_deterministic_structure(self):
        m1 = PlantedSubspaceModel(dim=30, seed=5)
        m2 = PlantedSubspaceModel(dim=30, seed=5)
        assert np.array_equal(m1.basis, m2.basis)
        assert np.array_equal(m1.mean, m2.mean)
        m3 = PlantedSubspaceModel(dim=30, seed=6)
        assert not np.allclose(m1.basis, m3.basis)

    def test_sample_shape_and_determinism(self, small_model):
        a = small_model.sample(100, np.random.default_rng(1))
        b = small_model.sample(100, np.random.default_rng(1))
        assert a.shape == (100, 40)
        assert np.array_equal(a, b)

    def test_sample_covariance_matches_model(self, small_model):
        rng = np.random.default_rng(2)
        x = small_model.sample(40_000, rng)
        y = x - x.mean(axis=0)
        # Variance along planted directions = signal + noise.
        proj_var = np.var(y @ small_model.basis, axis=0)
        assert np.allclose(proj_var, small_model.eigenvalues, rtol=0.05)
        # Total variance.
        assert float(np.mean(np.sum(y * y, axis=1))) == pytest.approx(
            small_model.total_variance, rel=0.05
        )

    def test_stream_matches_sample_semantics(self, small_model):
        got = list(small_model.stream(10, np.random.default_rng(3), block=4))
        assert len(got) == 10
        assert all(v.shape == (40,) for v in got)

    def test_validation(self):
        with pytest.raises(ValueError, match="smaller than planted rank"):
            PlantedSubspaceModel(dim=2, signal_variances=(3.0, 2.0, 1.0))
        with pytest.raises(ValueError, match="descending"):
            PlantedSubspaceModel(dim=10, signal_variances=(1.0, 2.0))
        with pytest.raises(ValueError, match="positive"):
            PlantedSubspaceModel(dim=10, signal_variances=(1.0, -1.0))
        with pytest.raises(ValueError, match="n must be"):
            PlantedSubspaceModel(dim=10).sample(-1, np.random.default_rng())


class TestDriftingSubspaceModel:
    def test_basis_rotates(self):
        model = DriftingSubspaceModel(dim=20, rotation_rate=1e-3, seed=1)
        b0 = model.basis_at(0)
        b1000 = model.basis_at(1000)
        # Orthonormality preserved through rotation.
        assert np.allclose(b0.T @ b0, np.eye(model.rank), atol=1e-12)
        assert np.allclose(b1000.T @ b1000, np.eye(model.rank), atol=1e-12)
        # First direction moved by ~1 radian.
        cos = abs(float(b0[:, 0] @ b1000[:, 0]))
        assert cos == pytest.approx(np.cos(1.0), abs=1e-6)

    def test_stream_advances_state(self):
        model = DriftingSubspaceModel(dim=20, seed=1)
        rng = np.random.default_rng(0)
        out = list(model.stream(50, rng))
        assert len(out) == 50
        assert model._step == 50

    def test_validation(self):
        with pytest.raises(ValueError, match="exceed planted rank"):
            DriftingSubspaceModel(dim=3, signal_variances=(2.0, 1.0, 0.5))
