"""Tests for the serving layer (``repro.serving``).

Covers the full stack bottom-up — immutable basis snapshots and the
copy-on-publish cache, tenant specs/queues/models, the rendezvous
router, the engine-lane pool with chaos kill/respawn, the
transport-independent service core, the asyncio HTTP/WS front end —
and finishes with the end-to-end acceptance test: ≥16 concurrent
clients over ≥2 tenants ingesting while querying, overload shedding
with zero loss on admitted traffic, and a lane kill driving
``/ready`` through 503 and back.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.robust import RobustIncrementalPCA
from repro.serving import (
    BasisSnapshot,
    EigenbasisCache,
    EnginePool,
    EventBus,
    IngestQueue,
    PCAService,
    QueueFull,
    ServingClient,
    ServingConfig,
    ServingServer,
    TenantModel,
    TenantRouter,
    TenantSpec,
    TenantState,
    WebSocketClient,
)

SEED = 20120513


def _rows(n, dim=8, seed=SEED):
    # One planted 3-d subspace shared by every draw (so rows from any
    # seed are inliers of a model fitted on any other seed's rows).
    plant = np.random.default_rng(SEED).normal(size=(3, dim))
    rng = np.random.default_rng(seed)
    coeff = rng.normal(size=(n, 3)) * np.array([5.0, 3.0, 2.0])
    return coeff @ plant + 0.1 * rng.normal(size=(n, dim))


def _fitted_state(n=400, dim=8, n_components=4):
    est = RobustIncrementalPCA(n_components, init_size=20)
    est.update_block(_rows(n, dim))
    return est.public_state()


def _spec(name="t0", **kw):
    kw.setdefault("n_components", 4)
    kw.setdefault("init_size", 10)
    kw.setdefault("publish_every_blocks", 1)
    return TenantSpec(name, **kw)


def _service(*specs, **cfg_kw):
    cfg_kw.setdefault("n_lanes", 2)
    cfg_kw.setdefault("elastic", False)
    svc = PCAService(ServingConfig(**cfg_kw))
    for spec in specs:
        svc.add_tenant(spec)
    return svc


def _wait(pred, timeout_s=10.0, interval_s=0.005):
    deadline = time.perf_counter() + timeout_s
    while time.perf_counter() < deadline:
        if pred():
            return True
        time.sleep(interval_s)
    return pred()


# ---------------------------------------------------------------------------
# snapshots: BasisSnapshot + EigenbasisCache
# ---------------------------------------------------------------------------


class TestBasisSnapshot:
    def _snap(self, version=1):
        return BasisSnapshot(
            tenant="t0",
            version=version,
            state=_fitted_state(),
            rows_applied=400,
            blocks_applied=1,
            outlier_t=9.0,
        )

    def test_transform_roundtrip_shapes(self):
        snap = self._snap()
        x = _rows(5)
        z = snap.transform(x)
        assert z.shape == (5, snap.n_components)
        back = snap.inverse_transform(z)
        assert back.shape == x.shape

    def test_transform_matches_manual_projection(self):
        snap = self._snap()
        x = _rows(7, seed=1)
        want = (x - snap.state.mean) @ snap.state.basis
        np.testing.assert_allclose(snap.transform(x), want)

    def test_reconstruction_error_small_on_inliers(self):
        snap = self._snap()
        err = snap.reconstruction_error(_rows(50, seed=2))
        assert err.shape == (50,)
        assert np.all(err >= 0)
        assert np.median(err) < 1.0

    def test_outlier_score_flags_gross_outliers(self):
        snap = self._snap()
        x = _rows(20, seed=3)
        x[::4] += 40.0  # blast a quarter of the rows off the subspace
        scores, flags = snap.outlier_score(x)
        assert scores.shape == flags.shape == (20,)
        assert flags[::4].all()
        assert not flags[1::4].any()

    def test_eigenspectra_topk(self):
        snap = self._snap()
        spec = snap.eigenspectra(top_k=2)
        assert len(spec["eigenvalues"]) == 2
        assert spec["eigenvalues"][0] >= spec["eigenvalues"][1]
        assert "basis" not in spec
        with_basis = snap.eigenspectra(top_k=2, include_basis=True)
        assert np.asarray(with_basis["basis"]).shape == (2, snap.dim)

    def test_meta_and_age(self):
        snap = self._snap(version=3)
        meta = snap.meta()
        assert meta["tenant"] == "t0"
        assert meta["snapshot_version"] == 3
        assert meta["model_rows"] == 400
        assert meta["n_components"] == snap.n_components
        assert meta["dim"] == snap.dim
        assert snap.age_s() >= 0.0

    def test_snapshot_state_is_a_copy(self):
        est = RobustIncrementalPCA(4, init_size=20)
        est.update_block(_rows(100))
        cache = EigenbasisCache()
        snap = cache.publish(
            "t0", est.state, rows_applied=100, blocks_applied=1
        )
        before = snap.state.basis.copy()
        est.update_block(_rows(500, seed=9) + 3.0)  # keep mutating
        np.testing.assert_array_equal(snap.state.basis, before)


class TestEigenbasisCache:
    def test_versions_monotone_per_tenant(self):
        cache = EigenbasisCache()
        state = _fitted_state()
        for i in range(1, 4):
            snap = cache.publish(
                "a", state, rows_applied=i, blocks_applied=i
            )
            assert snap.version == i
        assert cache.version("a") == 3
        assert cache.version("nope") == 0

    def test_get_counts_hits_and_misses(self):
        cache = EigenbasisCache()
        assert cache.get("a") is None
        cache.publish("a", _fitted_state(), rows_applied=1, blocks_applied=1)
        assert cache.get("a") is not None
        stats = cache.stats()
        assert stats["n_hits"] == 1
        assert stats["n_misses"] == 1
        # peek must not touch the counters
        cache.peek("a")
        assert cache.stats()["n_hits"] == 1

    def test_listener_fires_and_errors_are_swallowed(self):
        cache = EigenbasisCache()
        seen = []
        cache.add_listener(seen.append)
        cache.add_listener(lambda s: 1 / 0)
        snap = cache.publish(
            "a", _fitted_state(), rows_applied=1, blocks_applied=1
        )
        assert seen == [snap]

    def test_drop_and_tenants(self):
        cache = EigenbasisCache()
        cache.publish("a", _fitted_state(), rows_applied=1, blocks_applied=1)
        cache.publish("b", _fitted_state(), rows_applied=1, blocks_applied=1)
        assert sorted(cache.tenants()) == ["a", "b"]
        cache.drop("a")
        assert cache.tenants() == ["b"]


# ---------------------------------------------------------------------------
# tenancy: spec validation, ingest queue, tenant model, router
# ---------------------------------------------------------------------------


class TestTenantSpec:
    def test_rejects_bad_names(self):
        for bad in ("", ".hidden", "a/b", "x" * 65, "sp ace"):
            with pytest.raises(ValueError):
                TenantSpec(bad)

    def test_accepts_reasonable_names(self):
        for good in ("a", "bulk", "team-1", "a.b_c", "X" * 64):
            TenantSpec(good)

    def test_rejects_bad_numbers(self):
        with pytest.raises(ValueError):
            TenantSpec("t", n_components=0)
        with pytest.raises(ValueError):
            TenantSpec("t", max_rate_hz=-1.0)
        with pytest.raises(ValueError):
            TenantSpec("t", queue_capacity_rows=0)

    def test_unknown_runtime_rejected(self):
        with pytest.raises(ValueError):
            TenantSpec("t", runtime="quantum")


class TestIngestQueue:
    def test_push_pop_coalesces_blocks(self):
        q = IngestQueue(capacity_rows=1000)
        q.push(_rows(10))
        q.push(_rows(20, seed=1))
        got = q.pop(max_rows=256)
        assert got.shape[0] == 30
        assert q.depth_rows == 0

    def test_pop_respects_max_rows(self):
        q = IngestQueue(capacity_rows=1000)
        for i in range(5):
            q.push(_rows(10, seed=i))
        first = q.pop(max_rows=25)
        second = q.pop(max_rows=25)
        third = q.pop(max_rows=25)
        assert first.shape[0] == 20  # whole blocks only, under the cap
        assert second.shape[0] == 20
        assert third.shape[0] == 10
        assert q.pop(max_rows=25) is None

    def test_push_raises_when_full(self):
        q = IngestQueue(capacity_rows=25)
        q.push(_rows(20))
        with pytest.raises(QueueFull):
            q.push(_rows(10))
        assert q.depth_rows == 20  # rejected block not partially taken

    def test_requeue_front_preserves_rows(self):
        q = IngestQueue(capacity_rows=100)
        q.push(_rows(40))
        block = q.pop(max_rows=40)
        q.requeue_front(block)
        assert q.depth_rows == 40
        assert q.rows_requeued == 40


class TestTenantModel:
    def test_direct_apply_and_publish(self):
        model = TenantModel(_spec())
        cache = EigenbasisCache()
        model.apply_block(_rows(64))
        assert model.is_initialized
        assert model.should_publish()
        snap = model.publish(cache)
        assert snap is not None and snap.version == 1
        assert cache.get("t0").rows_applied == 64

    def test_reseed_adopts_snapshot(self):
        model = TenantModel(_spec())
        cache = EigenbasisCache()
        model.apply_block(_rows(128))
        snap = model.publish(cache)
        other = TenantModel(_spec())
        other.reseed(snap)
        assert other.is_initialized
        state = other._estimator.public_state()
        np.testing.assert_allclose(state.basis, snap.state.basis)


class TestTenantRouter:
    def test_assignment_is_deterministic(self):
        r = TenantRouter()
        lanes = [0, 1, 2]
        names = [f"tenant-{i}" for i in range(20)]
        a = {n: r.lane_of(n, lanes) for n in names}
        b = {n: r.lane_of(n, lanes) for n in names}
        assert a == b
        assert set(a.values()) == {0, 1, 2}  # spreads across lanes

    def test_rendezvous_minimal_movement(self):
        r = TenantRouter()
        names = [f"tenant-{i}" for i in range(50)]
        before = {n: r.lane_of(n, [0, 1, 2]) for n in names}
        after = {n: r.lane_of(n, [0, 1, 2, 3]) for n in names}
        # Adding a lane must never move a tenant between *surviving* lanes.
        moved = [n for n in names if after[n] != before[n]]
        assert all(after[n] == 3 for n in moved)
        assert 0 < len(moved) < len(names)


# ---------------------------------------------------------------------------
# pool: lanes drain queues, chaos kill → evict → reseed → respawn
# ---------------------------------------------------------------------------


class TestEnginePool:
    def _pool(self, tenants, **kw):
        cache = EigenbasisCache()
        kw.setdefault("n_lanes", 2)
        kw.setdefault("idle_wait_s", 0.005)
        pool = EnginePool(cache, lambda: tenants, **kw)
        return cache, pool

    def test_lanes_drain_and_publish(self):
        t = TenantState(_spec("a"))
        cache, pool = self._pool({"a": t})
        pool.start()
        try:
            t.queue.push(_rows(64))
            pool.work_event.set()
            assert _wait(lambda: cache.get("a") is not None)
            assert pool.drain(10.0)
            assert t.model.rows_applied == 64
        finally:
            pool.stop()

    def test_kill_lane_evicts_reseeds_respawns(self):
        tenants = {
            n: TenantState(_spec(n)) for n in ("a", "b", "c", "d")
        }
        events = []
        cache, pool = self._pool(
            tenants, on_event=lambda kind, **p: events.append(kind)
        )
        pool.start()
        try:
            for t in tenants.values():
                t.queue.push(_rows(64, seed=hash(t.name) % 1000))
            pool.work_event.set()
            assert pool.drain(10.0)

            victim_id = pool.live_lane_ids()[0]
            victims = {t.name for t in pool.tenants_for(victim_id)}
            with pool._lock:
                pool._lanes[victim_id].kill()
            pool.work_event.set()
            assert _wait(lambda: victim_id not in pool.live_lane_ids())
            assert pool.stats.n_evictions >= 1
            assert "lane_dead" in events
            # Tenants stranded on the dead lane are flagged for reseed.
            assert any(tenants[n].needs_reseed for n in victims) or not victims

            n = pool.respawn_dead()
            assert n == 1
            assert pool.stats.n_rejoins >= 1
            assert len(pool.live_lane_ids()) == pool.desired_lanes

            # The pool keeps serving after the rejoin.
            for t in tenants.values():
                t.queue.push(_rows(32, seed=7))
            pool.work_event.set()
            assert pool.drain(10.0)
        finally:
            pool.stop()

    def test_scale_to_and_membership_quorum(self):
        t = TenantState(_spec("a"))
        cache, pool = self._pool({"a": t}, n_lanes=2)
        pool.start()
        try:
            assert pool.scale_to(4) == 2
            assert _wait(lambda: len(pool.live_lane_ids()) == 4)
            m = pool.membership
            assert m.quorum == 4 // 2 + 1
            assert len(m.peers) == 4
            assert pool.scale_to(2) == -2
            assert _wait(lambda: len(pool.live_lane_ids()) == 2)
        finally:
            pool.stop()

    def test_backpressure_probe_shape(self):
        t = TenantState(_spec("a"))
        cache, pool = self._pool({"a": t})
        pool.start()
        try:
            per_pe, inflight, dispatched = pool.backpressure_probe()
            assert isinstance(per_pe, list)
            for label, depth, capacity in per_pe:
                assert label.startswith("lane-")
                assert depth >= 0
        finally:
            pool.stop()


# ---------------------------------------------------------------------------
# service core (transport-independent)
# ---------------------------------------------------------------------------


class TestPCAService:
    def test_ingest_and_query_codes(self):
        svc = _service(_spec("a"))
        svc.start()
        try:
            code, body = svc.ingest("nope", _rows(4).tolist())
            assert code == 404
            code, body = svc.ingest("a", {"bogus": True})
            assert code == 422
            code, body = svc.ingest("a", _rows(64).tolist())
            assert code == 202
            assert body["accepted_rows"] == 64

            # query before any snapshot exists on an unknown tenant
            code, body = svc.transform("nope", _rows(2).tolist())
            assert code == 404

            assert _wait(lambda: svc.cache.get("a") is not None)
            code, body = svc.transform("a", _rows(2).tolist())
            assert code == 200
            assert body["snapshot_version"] >= 1
            assert "snapshot_age_s" in body
            code, body = svc.outlier_score("a", _rows(2).tolist())
            assert code == 200
            code, body = svc.eigenspectra("a", top_k=2)
            assert code == 200
            assert len(body["spectra"]["eigenvalues"]) == 2
        finally:
            svc.stop()

    def test_query_409_before_first_snapshot(self):
        svc = _service(_spec("a"))
        svc.start()
        try:
            code, body = svc.transform("a", _rows(2).tolist())
            assert code == 409
            assert "snapshot" in body["error"]
        finally:
            svc.stop()

    def test_rate_limited_tenant_gets_429_with_retry_after(self):
        svc = _service(
            _spec("slow", max_rate_hz=64.0, burst_s=1.0)
        )
        svc.start()
        try:
            codes = []
            for _ in range(8):
                code, body = svc.ingest("slow", _rows(32).tolist())
                codes.append(code)
                if code == 429:
                    assert body["retry_after_s"] > 0
            assert 202 in codes and 429 in codes
            st = svc.tenant("slow")
            assert st.rows_shed > 0
            assert st.rows_accepted + st.rows_shed == 8 * 32
        finally:
            svc.stop()

    def test_queue_full_gets_429_shed_not_drop(self):
        svc = _service(_spec("tiny", queue_capacity_rows=64))
        svc.start()
        svc.pool.stop()  # freeze draining so the queue can actually fill
        try:
            codes = [
                svc.ingest("tiny", _rows(32).tolist())[0] for _ in range(4)
            ]
            assert codes.count(202) == 2
            assert codes.count(429) == 2
            st = svc.tenant("tiny")
            # shed-not-drop: everything admitted is still in the queue
            assert st.queue.depth_rows == st.rows_accepted == 64
            assert st.rows_rejected_full == 64
        finally:
            svc.stop()

    def test_ready_flips_on_lane_kill_and_recovers(self):
        svc = _service(_spec("a"), n_lanes=2)
        svc.start()
        try:
            code, _ = svc.ingest("a", _rows(64).tolist())
            assert code == 202
            assert _wait(lambda: svc.ready()[0] == 200)

            victim = svc.pool.live_lane_ids()[0]
            with svc.pool._lock:
                svc.pool._lanes[victim].kill()
            svc.pool.work_event.set()
            assert _wait(lambda: svc.ready()[0] == 503)
            code, body = svc.ready()
            assert body["health_status"] == "CRITICAL"

            svc.pool.respawn_dead()
            assert _wait(lambda: svc.ready()[0] == 200)
            # ingest still works end to end after the rejoin
            code, _ = svc.ingest("a", _rows(32).tolist())
            assert code == 202
            assert svc.pool.drain(10.0)
        finally:
            svc.stop()

    def test_status_and_metrics_exposed(self):
        svc = _service(_spec("a"))
        svc.start()
        try:
            svc.ingest("a", _rows(64).tolist())
            assert _wait(lambda: svc.cache.get("a") is not None)
            code, body = svc.status()
            assert code == 200
            assert "a" in body["tenants"]
            text = svc.telemetry.metrics.to_prometheus()
            assert "repro_serving_queue_depth" in text
            assert "repro_serving_live_lanes" in text
        finally:
            svc.stop()

    def test_auto_tenant_template(self):
        svc = PCAService(ServingConfig(
            n_lanes=1, elastic=False,
            auto_tenant_template=_spec("template"),
        ))
        svc.start()
        try:
            code, _ = svc.ingest("fresh", _rows(64).tolist())
            assert code == 202
            assert svc.tenant("fresh") is not None
        finally:
            svc.stop()


class TestEventBus:
    def test_publish_drain_and_overflow(self):
        bus = EventBus(max_queue=4)
        sid = bus.subscribe()
        for i in range(8):
            bus.publish({"i": i})
        got = bus.drain(sid)
        assert len(got) == 4
        assert got[-1]["i"] == 7  # oldest dropped, newest kept
        assert bus.n_dropped == 4
        bus.unsubscribe(sid)

    def test_waker_called_on_publish(self):
        bus = EventBus()
        woke = threading.Event()
        bus.subscribe(waker=woke.set)
        bus.publish({"k": 1})
        assert woke.is_set()


# ---------------------------------------------------------------------------
# HTTP/WS front end
# ---------------------------------------------------------------------------


@pytest.fixture
def server():
    svc = _service(_spec("a"), _spec("b"))
    srv = ServingServer(svc, port=0)
    srv.start()
    yield srv
    srv.stop()


class TestServingHTTP:
    def test_basic_routes(self, server):
        with ServingClient(server.host, server.port) as c:
            assert c.live().code == 200
            assert c.ready().code in (200, 503)
            r = c.ingest("a", _rows(64).tolist())
            assert r.code == 202
            assert _wait(lambda: c.snapshot("a").code == 200)
            meta = c.snapshot("a").body
            assert meta["snapshot_version"] >= 1
            r = c.transform("a", _rows(3).tolist())
            assert r.code == 200
            assert len(r.body["coefficients"]) == 3
            r = c.eigenspectra("a", top_k=2)
            assert r.code == 200
            assert len(r.body["spectra"]["eigenvalues"]) == 2
            assert "repro_serving_requests_total" in c.metrics_text()

    def test_json_errors(self, server):
        with ServingClient(server.host, server.port) as c:
            r = c.request("GET", "/no/such/path")
            assert r.code == 404 and "error" in r.body
            r = c.request("GET", "/v1/nope/snapshot")
            assert r.code == 404
            r = c.request("GET", "/v1/a/transform")  # GET on a POST route
            assert r.code == 405
            r = c.request("POST", "/v1/a/ingest", {"x": 1})
            assert r.code == 422

    def test_malformed_json_body_gets_400(self, server):
        import http.client

        conn = http.client.HTTPConnection(
            server.host, server.port, timeout=10.0
        )
        try:
            conn.request(
                "POST", "/v1/a/ingest", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            assert resp.status == 400
            assert "error" in json.loads(resp.read())
        finally:
            conn.close()

    def test_snapshot_409_then_200(self, server):
        with ServingClient(server.host, server.port) as c:
            assert c.transform("b", _rows(2).tolist()).code == 409
            c.ingest("b", _rows(64).tolist())
            assert _wait(
                lambda: c.transform("b", _rows(2).tolist()).code == 200
            )

    def test_websocket_event_push(self, server):
        with ServingClient(server.host, server.port) as c:
            with WebSocketClient(
                server.host, server.port, "a", timeout_s=10.0
            ) as ws:
                first = ws.recv_event()
                assert first["event"] == "subscribed"
                c.ingest("a", _rows(64).tolist())
                kinds = set()
                deadline = time.perf_counter() + 10.0
                while time.perf_counter() < deadline:
                    ev = ws.recv_event()
                    if ev is None:
                        break
                    kinds.add(ev["event"])
                    if "snapshot_published" in kinds:
                        break
                assert "snapshot_published" in kinds


# ---------------------------------------------------------------------------
# acceptance: the end-to-end contract from ISSUE.md
# ---------------------------------------------------------------------------


class TestServingEndToEnd:
    N_CLIENTS = 16
    DIM = 8

    def test_concurrent_clients_two_tenants_chaos(self):
        rng = np.random.default_rng(SEED)
        svc = _service(
            _spec("bulk", max_block_rows=128),
            _spec("throttled", max_rate_hz=600.0, burst_s=0.5),
            n_lanes=2,
        )
        srv = ServingServer(svc, port=0)
        srv.start()
        stop = threading.Event()
        errors: list[str] = []
        lock = threading.Lock()
        sent = {"bulk": 0, "throttled": 0}
        shed_seen = {"throttled": 0}
        queries_ok = [0]
        versions: dict[int, int] = {}

        def client_loop(cid: int) -> None:
            tenant = "bulk" if cid % 2 == 0 else "throttled"
            crng = np.random.default_rng(SEED + cid)
            try:
                with ServingClient(srv.host, srv.port) as c:
                    while not stop.is_set():
                        rows = _rows(16, self.DIM, seed=int(
                            crng.integers(0, 2**31)
                        ))
                        r = c.ingest(tenant, rows.tolist())
                        if r.code == 202:
                            with lock:
                                sent[tenant] += 16
                        elif r.code == 429:
                            with lock:
                                if tenant == "throttled":
                                    shed_seen[tenant] += 16
                            ra = r.retry_after_s
                            time.sleep(min(ra or 0.01, 0.02))
                        elif r.code >= 500:
                            with lock:
                                errors.append(f"{cid}: ingest {r.code}")
                            return
                        # interleave reads with writes on every pass
                        q = c.transform(tenant, rows[:2].tolist())
                        if q.code == 200:
                            v = q.body["snapshot_version"]
                            with lock:
                                queries_ok[0] += 1
                                # versions only ever move forward
                                if v < versions.get(cid, 0):
                                    errors.append(
                                        f"{cid}: version went backwards"
                                    )
                                versions[cid] = v
                        elif q.code not in (409,):
                            with lock:
                                errors.append(f"{cid}: query {q.code}")
                            return
            except Exception as exc:  # noqa: BLE001
                with lock:
                    errors.append(f"{cid}: {exc!r}")

        threads = [
            threading.Thread(target=client_loop, args=(i,), daemon=True)
            for i in range(self.N_CLIENTS)
        ]
        try:
            for t in threads:
                t.start()
            time.sleep(1.5)

            # chaos: kill one lane mid-traffic, watch /ready flip, recover
            with ServingClient(srv.host, srv.port) as probe:
                victim = svc.pool.live_lane_ids()[
                    int(rng.integers(0, 2))
                ]
                with svc.pool._lock:
                    svc.pool._lanes[victim].kill()
                svc.pool.work_event.set()
                assert _wait(lambda: probe.ready().code == 503, 10.0)
                svc.pool.respawn_dead()
                assert _wait(lambda: probe.ready().code == 200, 10.0)

            time.sleep(1.0)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10.0)

        try:
            assert not errors, errors[:5]
            assert svc.pool.drain(30.0)
            # zero loss on admitted traffic, per tenant
            for name in ("bulk", "throttled"):
                st = svc.tenant(name)
                assert st.model.rows_applied == sent[name], (
                    name, st.model.rows_applied, sent[name]
                )
                assert st.rows_accepted == sent[name]
            # overload actually happened and was shed, not dropped
            assert shed_seen["throttled"] > 0
            assert svc.tenant("throttled").rows_shed >= shed_seen[
                "throttled"
            ]
            # reads really ran against published snapshots
            assert queries_ok[0] > 0
            assert svc.cache.stats()["n_hits"] > 0
            assert svc.pool.stats.n_evictions >= 1
            assert svc.pool.stats.n_rejoins >= 1
        finally:
            srv.stop()

    def test_queries_never_take_the_model_lock(self):
        """Readers are served from the cache even while a writer holds
        the tenant model lock (the copy-on-publish contract)."""
        svc = _service(_spec("a"))
        svc.start()
        srv = ServingServer(svc, port=0)
        srv.start()
        try:
            with ServingClient(srv.host, srv.port) as c:
                c.ingest("a", _rows(64).tolist())
                assert _wait(
                    lambda: c.transform("a", _rows(2).tolist()).code == 200
                )
                st = svc.tenant("a")
                acquired = st.model.lock.acquire()
                assert acquired
                try:
                    t0 = time.perf_counter()
                    r = c.transform("a", _rows(2).tolist())
                    elapsed = time.perf_counter() - t0
                finally:
                    st.model.lock.release()
                assert r.code == 200
                # a lock-waiting reader would block until release; a
                # cache reader answers immediately
                assert elapsed < 1.0
        finally:
            srv.stop()


# ---------------------------------------------------------------------------
# smoke entrypoint (short run of the CI job's driver)
# ---------------------------------------------------------------------------


class TestSmokeDriver:
    def test_run_smoke_short(self, tmp_path):
        from repro.serving.smoke import run_smoke

        out = tmp_path / "telemetry.jsonl"
        report = run_smoke(
            n_clients=6,
            duration_s=2.0,
            seed=SEED,
            dim=8,
            block_rows=16,
            n_lanes=2,
            overload=True,
            telemetry_out=str(out),
            verbose=False,
        )
        assert report["ok"] is True
        assert report["failures"] == []
        assert out.exists()
        lines = [json.loads(l) for l in out.read_text().splitlines() if l]
        assert lines
