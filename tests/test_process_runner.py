"""Tests for the process-parallel runner (real worker processes)."""

import numpy as np
import pytest

from repro.core import largest_principal_angle
from repro.data import PlantedSubspaceModel, VectorStream
from repro.parallel import ProcessParallelStreamingPCA


@pytest.fixture(scope="module")
def model():
    return PlantedSubspaceModel(
        dim=50, signal_variances=(25.0, 16.0, 9.0), noise_std=0.4, seed=6
    )


class TestProcessParallelStreamingPCA:
    def test_global_solution_accurate(self, model):
        x = model.sample(6000, np.random.default_rng(2))
        runner = ProcessParallelStreamingPCA(
            3, n_engines=3, alpha=0.995, split_seed=1
        )
        result = runner.run(VectorStream.from_array(x))
        assert largest_principal_angle(
            result.global_state.basis, model.basis
        ) < 0.15
        assert result.eigenvalues.shape == (3,)

    def test_every_observation_processed(self, model):
        x = model.sample(3000, np.random.default_rng(3))
        runner = ProcessParallelStreamingPCA(
            3, n_engines=4, alpha=0.995, split_seed=2
        )
        result = runner.run(VectorStream.from_array(x))
        assert sum(r["n_local"] for r in result.engine_reports) == 3000
        assert len(result.engine_states) == 4

    def test_sync_traffic_happens(self, model):
        x = model.sample(6000, np.random.default_rng(4))
        runner = ProcessParallelStreamingPCA(
            3, n_engines=3, alpha=0.99, split_seed=3  # N=100: many syncs
        )
        result = runner.run(VectorStream.from_array(x))
        assert result.n_states_routed > 0
        assert result.n_merge_commands >= result.n_states_routed

    def test_single_engine(self, model):
        x = model.sample(2000, np.random.default_rng(5))
        runner = ProcessParallelStreamingPCA(3, n_engines=1, alpha=0.995)
        result = runner.run(VectorStream.from_array(x))
        assert result.n_merge_commands == 0
        assert largest_principal_angle(
            result.global_state.basis, model.basis
        ) < 0.2

    def test_too_short_stream_raises(self, model):
        x = model.sample(5, np.random.default_rng(6))
        runner = ProcessParallelStreamingPCA(3, n_engines=2)
        with pytest.raises(RuntimeError, match="no engine produced"):
            runner.run(VectorStream.from_array(x))

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessParallelStreamingPCA(0)
        with pytest.raises(ValueError):
            ProcessParallelStreamingPCA(2, n_engines=0)
        with pytest.raises(ValueError):
            ProcessParallelStreamingPCA(2, queue_size=0)
