"""Parity and dispatch tests for the compiled hot-path kernels.

Every kernel in :mod:`repro.core.kernels` has two faces: the pure-numpy
fallback and the numba-compilable source.  The contract is agreement to
1e-10 so the compiled path can be enabled (``REPRO_JIT``) without
changing any result.  The interpreted-source-vs-fallback comparisons run
everywhere; the compiled-vs-fallback comparisons are skipped when numba
is not installed (the CI matrix covers both legs).
"""

import numpy as np
import pytest

from repro.core import kernels
from repro.core.lowrank import rank_k_update
from repro.core.gaps import fill_block_from_basis, fill_from_basis

RHO_PAIRS = [
    (kernels._rho_weights_bisquare_np, kernels._rho_weights_bisquare_src),
    (kernels._rho_weights_cauchy_np, kernels._rho_weights_cauchy_src),
    (kernels._rho_weights_skipped_np, kernels._rho_weights_skipped_src),
]
RHO_IDS = ["bisquare", "cauchy", "skipped"]

needs_numba = pytest.mark.skipif(
    not kernels.HAVE_NUMBA, reason="numba not installed"
)


def _random_state(rng, d, m):
    basis, _ = np.linalg.qr(rng.standard_normal((d, m)))
    lam = np.sort(rng.uniform(0.5, 5.0, m))[::-1].copy()
    return np.ascontiguousarray(basis), lam


def _assert_same_eigensystem(result_a, result_b, tol=1e-10):
    e_a, lam_a = result_a
    e_b, lam_b = result_b
    assert e_a.shape == e_b.shape
    np.testing.assert_allclose(lam_a, lam_b, rtol=tol, atol=tol)
    if e_a.shape[1]:
        # Columns are defined up to sign: compare the cross-Gram to ±I.
        cross = np.abs(e_a.T @ e_b)
        np.testing.assert_allclose(cross, np.eye(e_a.shape[1]), atol=1e-8)


class TestInterpretedSourceParity:
    """JIT source (interpreted) vs vectorized fallback — runs everywhere."""

    @pytest.mark.parametrize(
        ("np_impl", "src_impl"), RHO_PAIRS, ids=RHO_IDS
    )
    def test_rho_weights(self, np_impl, src_impl):
        rng = np.random.default_rng(7)
        t = np.concatenate(
            [
                rng.uniform(0.0, 30.0, 200),
                [0.0, 1e-320, 1e-12, 4.0, 9.0, 1e155, 1e300, np.inf],
            ]
        )
        for c2 in (4.0, 9.0, 0.3):
            w_np, ws_np = np_impl(t, c2)
            w_src, ws_src = src_impl(t, c2)
            np.testing.assert_allclose(w_src, w_np, rtol=1e-10, atol=0)
            np.testing.assert_allclose(ws_src, ws_np, rtol=1e-10, atol=0)
            assert np.all(np.isfinite(w_src))
            assert np.all(np.isfinite(ws_src))

    def test_residual_norm2(self):
        rng = np.random.default_rng(11)
        y = rng.standard_normal((64, 300))
        basis, _ = _random_state(rng, 300, 6)
        r2_np = kernels._residual_norm2_block_np(y, basis)
        r2_src = kernels._residual_norm2_block_src(y, basis)
        np.testing.assert_allclose(r2_src, r2_np, rtol=1e-10)

    def test_rank_k_core_matches_public_update(self):
        # The public rank_k_update main path dispatches to the kernel;
        # both faces must agree with it.
        rng = np.random.default_rng(3)
        d, m, k, p = 120, 5, 16, 5
        basis, lam = _random_state(rng, d, m)
        block = rng.standard_normal((k, d))
        weights = rng.uniform(0.1, 1.0, k)
        gamma = 0.97
        got = rank_k_update(basis, lam, block, gamma, weights, p)
        yw = np.ascontiguousarray(block.T * np.sqrt(weights))
        _assert_same_eigensystem(
            got, kernels._rank_k_core_np(basis, lam, yw, gamma, p)
        )
        _assert_same_eigensystem(
            got, kernels._rank_k_core_src(basis, lam, yw, gamma, p)
        )

    def test_rank_k_core_src_vs_np_low_rank_block(self):
        # A block inside the current subspace exercises the q_rank == 0
        # branch of both faces.
        rng = np.random.default_rng(4)
        d, m, p = 80, 4, 4
        basis, lam = _random_state(rng, d, m)
        coeffs = rng.standard_normal((6, m))
        yw = np.ascontiguousarray((coeffs @ basis.T).T)
        _assert_same_eigensystem(
            kernels._rank_k_core_np(basis, lam, yw, 0.99, p),
            kernels._rank_k_core_src(basis, lam, yw, 0.99, p),
        )

    def test_fill_gappy_rows_matches_fill_from_basis(self):
        rng = np.random.default_rng(5)
        d, n, m = 40, 12, 4
        basis, _ = _random_state(rng, d, m)
        mean = rng.standard_normal(d)
        x = rng.standard_normal((n, d)) + mean
        x[1, :7] = np.nan
        x[4, ::3] = np.nan
        x[9, :] = np.nan          # nothing observed -> mean fill
        block = fill_block_from_basis(x, mean, basis)
        for i in (1, 4, 9):
            row = fill_from_basis(x[i], mean, basis)
            np.testing.assert_allclose(
                block.filled[i], row.filled, rtol=1e-10, atol=1e-12
            )
            assert block.n_filled_per_row[i] == row.n_filled
        # Complete rows untouched.
        np.testing.assert_array_equal(block.filled[0], x[0])

    def test_fill_gappy_rows_src_vs_np(self):
        rng = np.random.default_rng(8)
        d, n, m = 30, 10, 3
        basis, _ = _random_state(rng, d, m)
        mean = rng.standard_normal(d)
        x = rng.standard_normal((n, d))
        x[0, :5] = np.nan
        x[3, ::2] = np.nan
        x[8, :] = np.nan
        mask = np.ascontiguousarray(np.isfinite(x))
        rows = np.array([0, 3, 8], dtype=np.int64)
        filled_np = np.where(mask, x, 0.0)
        filled_src = filled_np.copy()
        n_np = kernels._fill_gappy_rows_np(
            filled_np, mask, mean, basis, 1e-8, rows
        )
        n_src = kernels._fill_gappy_rows_src(
            filled_src, mask, mean, basis, 1e-8, rows
        )
        np.testing.assert_array_equal(n_np, n_src)
        np.testing.assert_allclose(
            filled_np, filled_src, rtol=1e-10, atol=1e-12
        )

    def test_fill_gappy_rows_empty_basis(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((3, 10))
        x[2, 4:] = np.nan
        mean = rng.standard_normal(10)
        out = fill_block_from_basis(x, mean, np.zeros((10, 0)))
        np.testing.assert_allclose(out.filled[2, 4:], mean[4:])


@needs_numba
class TestCompiledParity:
    """Compiled vs fallback for every kernel — the 1e-10 contract."""

    @pytest.fixture(autouse=True)
    def _jit_kernels(self):
        with kernels.use_jit(True):
            assert kernels.jit_enabled()
            yield

    @pytest.mark.parametrize("name", list(kernels._SOURCES))
    def test_kernel_is_compiled(self, name):
        assert kernels._IMPL[name] is kernels._compiled[name]

    @pytest.mark.parametrize(
        "family", ["bisquare", "cauchy", "skipped"]
    )
    def test_rho_weights(self, family):
        rng = np.random.default_rng(17)
        t = np.concatenate(
            [rng.uniform(0.0, 30.0, 500), [0.0, 1e-320, 1e300, np.inf]]
        )
        compiled = getattr(kernels, f"rho_weights_{family}")
        fallback = getattr(kernels, f"_rho_weights_{family}_np")
        w_c, ws_c = compiled(t, 4.0)
        w_f, ws_f = fallback(t, 4.0)
        np.testing.assert_allclose(w_c, w_f, rtol=1e-10, atol=0)
        np.testing.assert_allclose(ws_c, ws_f, rtol=1e-10, atol=0)

    def test_residual_norm2(self):
        rng = np.random.default_rng(19)
        y = np.ascontiguousarray(rng.standard_normal((128, 500)))
        basis, _ = _random_state(rng, 500, 8)
        np.testing.assert_allclose(
            kernels.residual_norm2_block(y, basis),
            kernels._residual_norm2_block_np(y, basis),
            rtol=1e-10,
        )

    def test_rank_k_core(self):
        rng = np.random.default_rng(23)
        d, m, k, p = 200, 8, 32, 8
        basis, lam = _random_state(rng, d, m)
        block = rng.standard_normal((k, d))
        weights = rng.uniform(0.1, 1.0, k)
        yw = np.ascontiguousarray(block.T * np.sqrt(weights))
        compiled = kernels.rank_k_core(basis, lam, yw, 0.97, p)
        interpreted = kernels._rank_k_core_src(basis, lam, yw, 0.97, p)
        _assert_same_eigensystem(compiled, interpreted)

    def test_fill_gappy_rows(self):
        rng = np.random.default_rng(29)
        d, n, m = 60, 16, 5
        basis, _ = _random_state(rng, d, m)
        mean = rng.standard_normal(d)
        x = rng.standard_normal((n, d))
        x[2, :10] = np.nan
        x[7, ::4] = np.nan
        mask = np.ascontiguousarray(np.isfinite(x))
        rows = np.array([2, 7], dtype=np.int64)
        filled_c = x.copy()
        filled_f = x.copy()
        n_c = kernels.fill_gappy_rows(filled_c, mask, mean, basis, 1e-8, rows)
        n_f = kernels._fill_gappy_rows_src(
            filled_f, mask, mean, basis, 1e-8, rows
        )
        np.testing.assert_array_equal(n_c, n_f)
        np.testing.assert_allclose(filled_c, filled_f, rtol=1e-10, atol=1e-12)

    def test_end_to_end_estimator_parity(self):
        # A full robust block update must agree JIT-on vs JIT-off.
        from repro.core import RobustIncrementalPCA

        rng = np.random.default_rng(31)
        x = rng.standard_normal((300, 50))

        def run():
            est = RobustIncrementalPCA(4, alpha=0.999, seed_size=64)
            est.partial_fit(x)
            return est.public_state()

        with kernels.use_jit(False):
            off = run()
        on = run()
        np.testing.assert_allclose(
            on.eigenvalues, off.eigenvalues, rtol=1e-8
        )
        np.testing.assert_allclose(
            np.abs(on.basis.T @ off.basis),
            np.eye(on.basis.shape[1]),
            atol=1e-8,
        )


class TestDispatch:
    def test_status_keys(self):
        status = kernels.jit_status()
        assert set(status) == {
            "numba_available",
            "enabled",
            "requested",
            "numba_version",
        }
        assert status["numba_available"] == kernels.HAVE_NUMBA
        assert status["enabled"] == kernels.jit_enabled()

    def test_use_jit_restores_previous_state(self):
        before = kernels.jit_enabled()
        with kernels.use_jit(False):
            assert not kernels.jit_enabled()
        assert kernels.jit_enabled() == before

    @pytest.mark.skipif(kernels.HAVE_NUMBA, reason="numba installed")
    def test_requesting_jit_without_numba_warns_and_falls_back(self):
        with pytest.warns(RuntimeWarning, match="numba is not installed"):
            assert kernels.set_jit(True) is False
        assert not kernels.jit_enabled()
        # Fallbacks are installed, not compiled stubs.
        assert kernels._IMPL["rank_k_core"] is kernels._rank_k_core_np

    def test_env_selection_in_subprocess(self):
        import os
        import subprocess
        import sys

        code = (
            "from repro.core import kernels;"
            "import json;print(json.dumps(kernels.jit_status()))"
        )
        env = dict(os.environ, REPRO_JIT="0")
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.abspath("src"), env.get("PYTHONPATH", "")])
        )
        out = subprocess.run(
            [sys.executable, "-W", "ignore", "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        import json

        status = json.loads(out.stdout)
        assert status["requested"] == "0"
        assert status["enabled"] is False
