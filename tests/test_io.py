"""Tests for CSV vector IO and eigensystem checkpointing."""

import numpy as np
import pytest

from repro.core import Eigensystem
from repro.io.checkpoint import (
    CheckpointStore,
    load_eigensystem,
    save_eigensystem,
)
from repro.io.csvio import read_vectors_csv, write_vectors_csv


class TestCSVIO:
    def test_roundtrip_with_nans(self, tmp_path, rng):
        x = rng.standard_normal((6, 5))
        x[1, 3] = np.nan
        x[4, 0] = np.nan
        path = tmp_path / "v.csv"
        n = write_vectors_csv(path, x)
        assert n == 6
        got = np.vstack(list(read_vectors_csv(path)))
        assert np.allclose(got, x, equal_nan=True)

    def test_full_precision_roundtrip(self, tmp_path):
        x = np.array([[1 / 3, np.pi, 1e-300, 1e300]])
        path = tmp_path / "v.csv"
        write_vectors_csv(path, x)
        got = np.vstack(list(read_vectors_csv(path)))
        assert np.array_equal(got, x)  # exact via repr()

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,2,3\n4,5\n")
        with pytest.raises(ValueError, match="expected 3"):
            list(read_vectors_csv(path))

    def test_unparsable_cell(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,banana\n")
        with pytest.raises(ValueError, match="unparsable"):
            list(read_vectors_csv(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "v.csv"
        path.write_text("1,2\n\n3,4\n")
        got = np.vstack(list(read_vectors_csv(path)))
        assert got.shape == (2, 2)

    def test_nan_spellings(self, tmp_path):
        path = tmp_path / "v.csv"
        path.write_text("1,,nan,NaN\n")
        got = next(read_vectors_csv(path))
        assert got[0] == 1.0
        assert np.isnan(got[1:]).all()


def _state(rng, n_seen=1000) -> Eigensystem:
    basis, _ = np.linalg.qr(rng.standard_normal((8, 3)))
    return Eigensystem(
        mean=rng.standard_normal(8),
        basis=basis,
        eigenvalues=np.array([3.0, 2.0, 1.0]),
        scale=0.7,
        sum_count=321.5,
        sum_weight=300.25,
        sum_weighted_r2=123.75,
        n_seen=n_seen,
        n_since_sync=17,
    )


class TestCheckpointFiles:
    def test_save_load_roundtrip(self, tmp_path, rng):
        st = _state(rng)
        path = tmp_path / "ck.npz"
        save_eigensystem(path, st)
        assert load_eigensystem(path) == st


class TestCheckpointStore:
    def test_maybe_save_periodicity(self, tmp_path, rng):
        store = CheckpointStore(tmp_path, every=100)
        for n in (50, 100, 150, 199, 200, 450):
            st = _state(rng, n_seen=n)
            store.maybe_save(st)
        saved = [n for n, _ in store.list()]
        assert saved == [50, 100, 200, 450]

    def test_keep_prunes_oldest(self, tmp_path, rng):
        store = CheckpointStore(tmp_path, every=1, keep=2)
        for n in (10, 20, 30):
            store.save(_state(rng, n_seen=n))
        assert [n for n, _ in store.list()] == [20, 30]

    def test_load_latest_and_history(self, tmp_path, rng):
        store = CheckpointStore(tmp_path, every=1)
        assert store.load_latest() is None
        for n in (10, 30, 20):
            store.save(_state(rng, n_seen=n))
        latest = store.load_latest()
        assert latest.n_seen == 30
        history = store.load_history()
        assert [n for n, _ in history] == [10, 20, 30]

    def test_reopen_existing_directory_is_idempotent(self, tmp_path, rng):
        """Regression: a store reopened over an existing directory must
        seed its period tracker from disk, so re-saving the state it was
        restored from is a no-op instead of a duplicate write."""
        first = CheckpointStore(tmp_path, every=100)
        st = _state(rng, n_seen=250)
        assert first.maybe_save(st) is True

        reopened = CheckpointStore(tmp_path, every=100)
        assert reopened._last_saved_at == 250
        # Same state again (the resume path re-offers the restored state).
        assert reopened.maybe_save(st) is False
        # A state within the same period is also suppressed...
        assert reopened.maybe_save(_state(rng, n_seen=280)) is False
        # ...but crossing the next period boundary saves again.
        assert reopened.maybe_save(_state(rng, n_seen=310)) is True
        assert [n for n, _ in reopened.list()] == [250, 310]
        # Round-trip: the restored state equals what was saved.
        assert load_eigensystem(reopened.list()[0][1]) == st

    def test_resume_from_checkpoint(self, tmp_path, rng):
        """A streaming run can be restored and continued — the paper's
        'saved to the disk for future reference'."""
        from repro.core import RobustIncrementalPCA
        from repro.data import PlantedSubspaceModel

        model = PlantedSubspaceModel(dim=20, seed=1)
        est = RobustIncrementalPCA(3, alpha=0.999)
        est.partial_fit(model.sample(500, rng))
        store = CheckpointStore(tmp_path, every=1)
        store.save(est.state)

        est2 = RobustIncrementalPCA(3, alpha=0.999)
        est2.partial_fit(model.sample(50, rng))  # initialize
        est2.replace_state(store.load_latest())
        assert est2.state.n_seen == est.state.n_seen
        est2.partial_fit(model.sample(100, rng))  # keeps running

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="every"):
            CheckpointStore(tmp_path, every=0)
        with pytest.raises(ValueError, match="keep"):
            CheckpointStore(tmp_path, keep=0)
