"""Tests for graph construction/validation and fusion planning."""

import numpy as np
import pytest

from repro.data.streams import VectorStream
from repro.streams import (
    CollectingSink,
    Functor,
    FusionPlan,
    Graph,
    GraphError,
    Split,
    Union,
    VectorSource,
)


def _linear_graph(n_functors=2):
    g = Graph("lin")
    src = g.add(VectorSource("src", VectorStream.from_array(np.zeros((3, 2)))))
    prev = src
    fs = []
    for i in range(n_functors):
        f = g.add(Functor(f"f{i}", lambda t: t))
        g.connect(prev, f)
        prev = f
        fs.append(f)
    sink = g.add(CollectingSink("sink"))
    g.connect(prev, sink)
    return g, src, fs, sink


class TestGraph:
    def test_duplicate_names_rejected(self):
        g = Graph()
        g.add(Functor("f", lambda t: t))
        with pytest.raises(GraphError, match="duplicate operator name"):
            g.add(Functor("f", lambda t: t))

    def test_connect_unregistered_operator(self):
        g = Graph()
        a = g.add(Functor("a", lambda t: t))
        b = Functor("b", lambda t: t)
        with pytest.raises(GraphError, match="not in the graph"):
            g.connect(a, b)

    def test_connect_bad_ports(self):
        g = Graph()
        a = g.add(Functor("a", lambda t: t))
        b = g.add(Functor("b", lambda t: t))
        with pytest.raises(GraphError, match="no output port"):
            g.connect(a, b, out_port=1)
        with pytest.raises(GraphError, match="no input port"):
            g.connect(a, b, in_port=1)

    def test_duplicate_edge_rejected(self):
        g = Graph()
        a = g.add(Functor("a", lambda t: t))
        b = g.add(Functor("b", lambda t: t))
        g.connect(a, b)
        with pytest.raises(GraphError, match="duplicate edge"):
            g.connect(a, b)

    def test_successors_and_edges(self):
        g, src, fs, sink = _linear_graph()
        assert g.successors(src, 0) == [(fs[0], 0)]
        assert len(g.in_edges(fs[0])) == 1
        assert len(g.out_edges(fs[0])) == 1

    def test_validate_ok(self):
        g, *_ = _linear_graph()
        g.validate()

    def test_validate_no_sources(self):
        g = Graph()
        g.add(Functor("f", lambda t: t))
        with pytest.raises(GraphError, match="no sources"):
            g.validate()

    def test_validate_unconnected_input(self):
        g = Graph()
        g.add(VectorSource("src", VectorStream.from_array(np.zeros((1, 2)))))
        g.add(Functor("f", lambda t: t))
        with pytest.raises(GraphError, match="not connected"):
            g.validate()

    def test_validate_unreachable(self):
        g, src, fs, sink = _linear_graph()
        orphan_src = g.add(
            VectorSource("src2", VectorStream.from_array(np.zeros((1, 2))))
        )
        orphan = g.add(Functor("orphan", lambda t: t))
        loner = g.add(CollectingSink("loner"))
        g.connect(orphan_src, orphan)
        g.connect(orphan, loner)
        g.validate()  # reachable via src2 now
        # A truly dangling operator with a self-referential cycle only:
        a = g.add(Functor("cyc_a", lambda t: t))
        b = g.add(Functor("cyc_b", lambda t: t))
        g.connect(a, b)
        g.connect(b, a)
        with pytest.raises(GraphError, match="unreachable"):
            g.validate()

    def test_cycles_allowed_when_reachable(self):
        """The sync loop (engine ⇄ controller) must validate."""
        g = Graph()
        src = g.add(
            VectorSource("src", VectorStream.from_array(np.zeros((1, 2))))
        )
        a = g.add(Union("a", 2))
        b = g.add(Functor("b", lambda t: None))
        g.connect(src, a, in_port=0)
        g.connect(a, b)
        g.connect(b, a, in_port=1)
        g.validate()

    def test_len_and_iter(self):
        g, *_ = _linear_graph()
        assert len(g) == 4
        assert len(list(g)) == 4


class TestFusionPlan:
    def test_per_operator(self):
        g, *_ = _linear_graph()
        plan = FusionPlan.per_operator(g)
        assert len(plan.pes) == len(g)
        plan.validate(g)

    def test_fused_isolates_sources(self):
        g, src, fs, sink = _linear_graph()
        plan = FusionPlan.fused(g)
        plan.validate(g)
        src_pe = plan.pe_of(src)
        assert len(src_pe.operators) == 1
        rest_pe = plan.pe_of(fs[0])
        assert len(rest_pe.operators) == 3

    def test_fuse_chains_collapses_pipeline(self):
        g, src, fs, sink = _linear_graph(3)
        plan = FusionPlan.fuse_chains(g)
        plan.validate(g)
        pe = plan.pe_of(fs[0])
        names = {op.name for op in pe.operators}
        assert names == {"f0", "f1", "f2", "sink"}

    def test_fuse_chains_keeps_fanout_boundaries(self):
        g = Graph()
        src = g.add(
            VectorSource("src", VectorStream.from_array(np.zeros((1, 2))))
        )
        split = g.add(Split("split", 2))
        s1 = g.add(CollectingSink("s1"))
        s2 = g.add(CollectingSink("s2"))
        g.connect(src, split)
        g.connect(split, s1, out_port=0)
        g.connect(split, s2, out_port=1)
        plan = FusionPlan.fuse_chains(g)
        # Split's fan-out prevents fusing it with the sinks.
        assert len(plan.pe_of(split).operators) == 1

    def test_from_groups(self):
        g, src, fs, sink = _linear_graph()
        plan = FusionPlan.from_groups(g, [[fs[0], fs[1]]])
        assert len(plan.pe_of(fs[0]).operators) == 2
        assert len(plan.pe_of(sink).operators) == 1

    def test_validate_missing_operator(self):
        g, src, fs, sink = _linear_graph()
        plan = FusionPlan.per_operator(g)
        plan.pes = plan.pes[:-1]
        with pytest.raises(GraphError, match="missing"):
            plan.validate(g)

    def test_validate_duplicate_assignment(self):
        g, src, fs, sink = _linear_graph()
        plan = FusionPlan.per_operator(g)
        plan.pes.append(plan.pes[-1])
        with pytest.raises(GraphError, match="multiple PEs"):
            plan.validate(g)

    def test_source_must_be_alone(self):
        g, src, fs, sink = _linear_graph()
        with pytest.raises(GraphError, match="alone"):
            FusionPlan.from_groups(g, [[src, fs[0]]])

    def test_pe_of_unknown(self):
        g, *_ = _linear_graph()
        plan = FusionPlan.per_operator(g)
        with pytest.raises(KeyError):
            plan.pe_of(Functor("ghost", lambda t: t))
