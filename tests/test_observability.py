"""Tests for the observability plane: event-time watermarks and e2e
latency on all three runtimes, the model-health monitors and rule
engine, the live ``/metrics``-``/health`` endpoint, and the
telemetry-report/CLI surfaces that ride along."""

import json
import threading
import time
import urllib.error
import urllib.request
import uuid
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.robust import RobustIncrementalPCA
from repro.data import VectorStream
from repro.parallel.app import build_parallel_pca_graph
from repro.parallel.sync import SyncController
from repro.streams import (
    CollectingSink,
    Functor,
    FusionPlan,
    Graph,
    HealthMonitor,
    HealthRule,
    HealthRuleEngine,
    HealthSampler,
    ObservabilityServer,
    ProcessEngine,
    Split,
    SynchronousEngine,
    Telemetry,
    TelemetryConfig,
    ThreadedEngine,
    Union,
    VectorSource,
    default_rules,
    load_events,
    render_report,
)
from repro.streams.batcher import Batcher, Unbatcher
from repro.streams.shm import BlockRing
from repro.streams.telemetry import EventLog, Histogram, WatermarkTracker
from repro.streams.tuples import (
    StreamTuple,
    from_wire,
    inherit_event_time,
    stamp_event_time,
    to_wire,
)


def pipeline_graph(x, n_ways=2):
    g = Graph("obs-test")
    src = g.add(VectorSource("src", VectorStream.from_array(x)))
    split = g.add(Split("split", n_ways, strategy="round_robin"))
    uni = g.add(Union("union", n_ways))
    sink = g.add(CollectingSink("sink"))
    g.connect(src, split)
    for i in range(n_ways):
        g.connect(split, uni, out_port=i, in_port=i)
    g.connect(uni, sink)
    return g, sink


def e2e_hist(tel, sink="sink"):
    for m in tel.metrics.collect():
        if (
            getattr(m, "name", "") == "repro_e2e_latency_seconds"
            and m.labels.get("sink") == sink
        ):
            return m
    return None


def http_get(url):
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


# ---------------------------------------------------------------------------
# Event time: stamping, inheritance, wire/shm round-trips
# ---------------------------------------------------------------------------


class TestEventTime:
    def test_stamp_is_idempotent(self):
        tup = StreamTuple.data(x=np.zeros(2))
        assert tup.event_ts is None
        stamp_event_time(tup, 100.0)
        stamp_event_time(tup, 200.0)  # replay keeps the original lineage
        assert tup.event_ts == 100.0

    def test_inherit_keeps_minimum(self):
        old = stamp_event_time(StreamTuple.data(x=np.zeros(2)), 10.0)
        new = stamp_event_time(StreamTuple.data(x=np.zeros(2)), 20.0)
        derived = StreamTuple.data(y=1.0)
        inherit_event_time(derived, new)
        assert derived.event_ts == 20.0
        inherit_event_time(derived, old)  # older input wins (low watermark)
        assert derived.event_ts == 10.0
        inherit_event_time(derived, new)  # newer input does not regress it
        assert derived.event_ts == 10.0

    def test_inherit_from_unstamped_is_noop(self):
        derived = StreamTuple.data(y=1.0)
        inherit_event_time(derived, StreamTuple.data(x=np.zeros(2)))
        assert derived.event_ts is None

    def test_source_stamps_data_not_punctuation(self):
        x = np.zeros((3, 2))
        g = Graph("stamp")
        src = g.add(VectorSource("src", VectorStream.from_array(x)))
        sink = g.add(CollectingSink("sink"))
        g.connect(src, sink)
        t0 = time.time()
        SynchronousEngine(g).run()
        assert len(sink.tuples) == 3
        for tup in sink.tuples:
            assert tup.event_ts is not None
            assert t0 - 1.0 <= tup.event_ts <= time.time()

    def test_wire_roundtrip_preserves_event_ts(self):
        tup = stamp_event_time(
            StreamTuple.data(x=np.arange(3.0), seq=7), 123.5
        )
        back = from_wire(to_wire(tup))
        assert back.event_ts == 123.5
        unstamped = StreamTuple.data(x=np.arange(3.0), seq=8)
        assert from_wire(to_wire(unstamped)).event_ts is None

    def test_batcher_stamps_block_with_min_event_ts(self):
        b = Batcher("b", batch_size=3)
        out = []
        b.bind(lambda t, port: out.append(t))
        for ts in (30.0, 10.0, 20.0):
            b.process(
                stamp_event_time(
                    StreamTuple.data(x=np.zeros(2), seq=0), ts
                ),
                0,
            )
        assert len(out) == 1
        assert out[0].event_ts == 10.0  # the oldest buffered row

    def test_unbatcher_rows_inherit_block_event_ts(self):
        b = Batcher("b", batch_size=2)
        u = Unbatcher("u")
        blocks, rows = [], []
        b.bind(lambda t, port: blocks.append(t))
        u.bind(lambda t, port: rows.append(t))
        for ts in (5.0, 6.0):
            b.process(
                stamp_event_time(
                    StreamTuple.data(x=np.zeros(2), seq=0), ts
                ),
                0,
            )
        u.process(blocks[0], 0)
        assert [t.event_ts for t in rows] == [5.0, 5.0]

    def test_block_ring_roundtrips_event_ts(self):
        ring = BlockRing(
            f"repro-test-{uuid.uuid4().hex[:8]}",
            slots=2, slot_rows=2, dim=2, create=True,
        )
        try:
            xs = np.ones((2, 2))
            assert ring.try_put(0, 0, xs, None, 1, event_ts=42.25)
            item = ring.get()
            assert item.event_ts == 42.25
            ring.release()
            # The 0.0 sentinel maps back to None (no lineage).
            assert ring.try_put(0, 0, xs, None, 2)
            item = ring.get()
            assert item.event_ts is None
            ring.release()
        finally:
            item = None
            ring.close()
            ring.unlink()


# ---------------------------------------------------------------------------
# Watermarks + e2e latency on the three runtimes
# ---------------------------------------------------------------------------


class TestWatermarksAcrossRuntimes:
    N = 400

    def _data(self):
        return np.random.default_rng(0).standard_normal((self.N, 4))

    def _check(self, tel, n_expected):
        hist = e2e_hist(tel)
        assert hist is not None and hist.count == n_expected
        assert hist.sum >= 0.0
        lag = tel.metrics.value("repro_watermark_lag_seconds", sink="sink")
        assert lag is not None and lag >= 0.0
        # The watermark advanced: lag is measured from the *newest*
        # completed event time, so it is far below the run's age.
        assert lag < 60.0

    def test_synchronous(self):
        g, sink = pipeline_graph(self._data())
        tel = Telemetry(TelemetryConfig())
        SynchronousEngine(g, telemetry=tel).run()
        assert len(sink.tuples) == self.N
        self._check(tel, self.N)

    def test_threaded(self):
        g, sink = pipeline_graph(self._data())
        tel = Telemetry(TelemetryConfig())
        ThreadedEngine(
            g, fusion=FusionPlan.fuse_chains(g), telemetry=tel
        ).run(timeout_s=120)
        assert len(sink.tuples) == self.N
        self._check(tel, self.N)

    def test_process(self):
        g, sink = pipeline_graph(self._data())
        tel = Telemetry(TelemetryConfig())
        ProcessEngine(g, telemetry=tel, mp_context="fork").run(
            timeout_s=120
        )
        assert len(sink.tuples) == self.N
        self._check(tel, self.N)

    def test_process_shm_block_path_carries_event_time(self):
        """Lineage survives the zero-copy shared-memory block transport."""
        x = np.random.default_rng(1).standard_normal((600, 8))
        app = build_parallel_pca_graph(
            VectorStream.from_array(x),
            2,
            lambda i: RobustIncrementalPCA(3),
            batch_size=32,
            collect_diagnostics=True,
        )
        tel = Telemetry(TelemetryConfig())
        main_ops = {app.split.name, app.controller.name, app.batcher.name}
        ProcessEngine(
            app.graph, main_ops=main_ops, telemetry=tel, mp_context="fork"
        ).run(timeout_s=120)
        hist = e2e_hist(tel, sink="diagnostics")
        assert hist is not None and hist.count > 0
        lag = tel.metrics.value(
            "repro_watermark_lag_seconds", sink="diagnostics"
        )
        assert lag is not None and 0.0 <= lag < 60.0

    def test_sync_e2e_matches_dispatch_time(self):
        """Parity: on the synchronous engine (no queue waits), sink e2e
        latency is the per-operator dispatch time of the chain."""
        n = 40
        g = Graph("parity")
        src = g.add(
            VectorSource("src", VectorStream.from_array(np.zeros((n, 2))))
        )

        def slow(tup):
            time.sleep(0.002)
            return StreamTuple.data(x=tup["x"])

        fn = g.add(Functor("slow", slow))
        sink = g.add(CollectingSink("sink"))
        g.connect(src, fn)
        g.connect(fn, sink)
        tel = Telemetry(TelemetryConfig(timing=True))
        SynchronousEngine(g, telemetry=tel).run()
        e2e = e2e_hist(tel)
        assert e2e is not None and e2e.count == n
        dispatch_sum = sum(
            m.sum
            for m in tel.metrics.collect()
            if getattr(m, "name", "") == "repro_dispatch_seconds"
        )
        # Both sides are dominated by the 2 ms sleep; generous bounds
        # absorb clock-domain skew (event time is wall clock, dispatch
        # timing is perf_counter) and scheduler noise.
        assert dispatch_sum > 0
        assert 0.5 * dispatch_sum < e2e.sum < 2.0 * dispatch_sum


class TestWatermarkTracker:
    def test_watermark_is_max_and_lag_nonnegative(self):
        tr = WatermarkTracker()
        assert tr.lag() == 0.0  # before any tuple
        now = time.time()
        tr.note(now - 5.0)
        tr.note(now - 1.0)
        tr.note(now - 3.0)  # out-of-order completion keeps the max
        assert tr.watermark_ts == now - 1.0
        assert 0.0 <= tr.lag() <= 5.0
        assert tr.n_noted == 3


class TestClockSkew:
    """The signed ``repro_clock_skew_seconds`` gauge.

    On a multi-host cluster ``event_ts`` comes from the *producer's*
    wall clock; a producer running ahead shows up here as a negative
    raw lag, which used to be silently clamped away by ``lag()``.
    """

    def test_skew_is_signed_and_tracks_most_negative_lag(self):
        tr = WatermarkTracker()
        now = time.time()
        assert tr.skew() == 0.0
        tr.note(now, raw_lag=-0.1)  # below warn threshold, still signed
        assert tr.skew() == pytest.approx(-0.1)
        with pytest.warns(RuntimeWarning, match="clocks are skewed"):
            tr.note(now, raw_lag=-0.5)
        assert tr.skew() == pytest.approx(-0.5)
        # Skew is a high-water bound: a later consistent tuple does not
        # shrink it.
        tr.note(now, raw_lag=2.0)
        assert tr.skew() == pytest.approx(-0.5)

    def test_warns_once_per_tracker(self):
        tr = WatermarkTracker()
        now = time.time()
        with pytest.warns(RuntimeWarning):
            tr.note(now, raw_lag=-1.0)
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            tr.note(now, raw_lag=-2.0)  # worse skew, but no re-warn
        assert tr.skew() == pytest.approx(-2.0)

    def test_positive_lag_keeps_skew_zero(self):
        tr = WatermarkTracker()
        tr.note(time.time() - 3.0, raw_lag=3.0)
        assert tr.skew() == 0.0

    def test_gauge_registered_per_sink(self, rng):
        g, _sink = pipeline_graph(rng.standard_normal((40, 6)))
        tel = Telemetry(TelemetryConfig(metrics=True))
        SynchronousEngine(g, telemetry=tel).run()
        # Same-host run: the gauge exists and reads a clean 0.0.
        assert tel.metrics.value(
            "repro_clock_skew_seconds", sink="sink"
        ) == 0.0


# ---------------------------------------------------------------------------
# Satellites: histogram thread safety, dropped-event surfacing
# ---------------------------------------------------------------------------


class TestHistogramThreadSafety:
    def test_concurrent_observe_loses_nothing(self):
        """Regression test: pre-lock, concurrent observes lost counts
        (read-modify-write races on counts/sum)."""
        hist = Histogram("h", {}, buckets=(1.0, 2.0, 4.0))
        n_threads, n_obs = 8, 5_000
        barrier = threading.Barrier(n_threads)

        def work():
            barrier.wait()
            for i in range(n_obs):
                hist.observe(float(i % 5))

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * n_obs
        assert hist.count == total
        assert sum(hist.counts) == total
        expected_sum = n_threads * sum(float(i % 5) for i in range(n_obs))
        assert hist.sum == pytest.approx(expected_sum)


class TestDroppedEvents:
    def test_len_and_drop_counter(self):
        log = EventLog(max_events=3)
        for i in range(7):
            log.append({"kind": "x", "i": i})
        assert len(log) == 3
        assert log.n_dropped == 4

    def test_dropped_total_exported_and_reported(self, tmp_path):
        tel = Telemetry(TelemetryConfig(max_events=2))
        for i in range(6):
            tel.events.append({"ts": 0.0, "kind": "sample", "i": i})
        assert tel.metrics.value("repro_events_dropped_total") == 4
        assert "repro_events_dropped_total 4" in tel.to_prometheus()
        path = tmp_path / "log.jsonl"
        tel.write_jsonl(path)
        report = render_report(load_events(path))
        assert "WARNING: 4 telemetry events dropped" in report


# ---------------------------------------------------------------------------
# Satellites: tolerant log loading + report edge cases
# ---------------------------------------------------------------------------


class TestReportEdgeCases:
    def test_empty_jsonl(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        events = load_events(path)
        assert events == []
        report = render_report(events)
        assert "telemetry run report" in report

    def test_garbage_lines_skipped_and_warned(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            json.dumps({"ts": 0.0, "kind": "run_start", "engine": "t",
                        "graph": "g"})
            + "\n"
            + '{"ts": 1.0, "kind": "run_e'  # torn mid-write
            + "\n[1, 2, 3]\n"               # valid JSON, not an event dict
        )
        events = load_events(path)
        kinds = [e.get("kind") for e in events]
        assert kinds == ["run_start", "load_error"]
        assert events[-1]["n_bad_lines"] == 2
        report = render_report(events)
        assert "WARNING: 2 unparseable log lines skipped" in report

    def test_strict_mode_raises(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text("not json\n")
        with pytest.raises(json.JSONDecodeError):
            load_events(path, strict=True)

    def test_report_without_run_end(self):
        events = [
            {"ts": 0.0, "kind": "run_start", "engine": "threaded",
             "graph": "g"},
            {"ts": 0.5, "kind": "sample", "pe": "pe-0", "depth": 3,
             "capacity": 64},
        ]
        report = render_report(events)
        assert "g (threaded)" in report
        assert "wall time" not in report

    def test_report_health_section(self):
        events = [
            {"ts": 0.1, "kind": "health", "engine": 0, "event": "check",
             "affinity": 0.95, "eig_drift": 0.01, "gap_rate": 0.0,
             "outlier_rate": 0.02, "r2_window_mean": 1.2,
             "chart_status": "ok"},
            {"ts": 0.2, "kind": "health", "engine": 0, "event": "merge",
             "reseed": True, "affinity": 0.9, "n_merges": 1},
            {"ts": 0.3, "kind": "health_verdict", "status": "OK",
             "firing": []},
            {"ts": 0.4, "kind": "health_verdict", "status": "DEGRADED",
             "firing": [{"rule": "peer-evicted", "severity": "warn",
                         "value": 1}]},
        ]
        report = render_report(events)
        assert "model health" in report
        assert "0.9500" in report            # affinity column
        assert "1 merge events (1 re-seeds)" in report
        assert "DEGRADED (peer-evicted)" in report
        assert "final DEGRADED, worst DEGRADED" in report


# ---------------------------------------------------------------------------
# HealthMonitor
# ---------------------------------------------------------------------------


def _fake_estimator(basis, eigenvalues):
    return SimpleNamespace(
        is_initialized=True,
        state=SimpleNamespace(
            basis=np.asarray(basis, dtype=float),
            eigenvalues=np.asarray(eigenvalues, dtype=float),
        ),
    )


def _basis(d, k, rotate=0.0):
    b = np.zeros((d, k))
    for j in range(k):
        b[j, j] = np.cos(rotate)
        b[(j + k) % d, j] = np.sin(rotate)
    q, _ = np.linalg.qr(b)
    return q[:, :k]


class TestHealthMonitor:
    def _feed_check(self, mon, est, r2_mean=1.0, n=None, gaps=0, outliers=0):
        n = n or mon.check_every
        mon.note_rows(
            n, n_gap_rows=gaps, n_outliers=outliers,
            weight_sum=float(n), r2_sum=r2_mean * n,
        )
        assert mon.maybe_check(est)

    def test_affinity_anchor_and_drop(self):
        mon = HealthMonitor(0, check_every=10, baseline_checks=1)
        est = _fake_estimator(_basis(8, 3), [3.0, 2.0, 1.0])
        self._feed_check(mon, est)
        assert mon.affinity == pytest.approx(1.0)
        # Rotate the basis hard: affinity vs the anchor collapses.
        est.state.basis = _basis(8, 3, rotate=np.pi / 2)
        self._feed_check(mon, est)
        assert mon.affinity < 0.5

    def test_checks_gate_on_window_and_init(self):
        mon = HealthMonitor(0, check_every=10)
        est = _fake_estimator(_basis(4, 2), [2.0, 1.0])
        mon.note_rows(9)
        assert not mon.maybe_check(est)  # window not full
        mon.note_rows(1)
        est.is_initialized = False
        assert not mon.maybe_check(est)  # estimator still warming up
        est.is_initialized = True
        assert mon.maybe_check(est)
        assert mon.n_checks == 1

    def test_eigenspectrum_drift(self):
        mon = HealthMonitor(0, check_every=10, top_k=2)
        est = _fake_estimator(_basis(4, 2), [4.0, 2.0])
        self._feed_check(mon, est)
        assert mon.eig_drift == 0.0  # no previous spectrum yet
        est.state.eigenvalues = np.array([6.0, 2.0])  # top-1 moved 50%
        self._feed_check(mon, est)
        assert mon.eig_drift == pytest.approx(0.5)

    def test_r2_control_chart_pages_on_excursion(self):
        mon = HealthMonitor(
            0, check_every=10, baseline_checks=3,
            warn_sigma=3.0, page_sigma=6.0, ewma_alpha=0.2,
        )
        est = _fake_estimator(_basis(4, 2), [2.0, 1.0])
        rng = np.random.default_rng(0)
        for _ in range(10):  # jittered baseline arms the bands (sd > 0)
            self._feed_check(mon, est, r2_mean=1.0 + rng.normal(0, 0.02))
        assert mon.chart_status == "ok"
        self._feed_check(mon, est, r2_mean=50.0)
        assert mon.chart_status == "page"
        # The excursion is not folded into the baseline: it keeps paging.
        self._feed_check(mon, est, r2_mean=50.0)
        assert mon.chart_status == "page"
        self._feed_check(mon, est, r2_mean=1.0)
        assert mon.chart_status == "ok"

    def test_gap_and_outlier_rates(self):
        mon = HealthMonitor(0, check_every=10)
        est = _fake_estimator(_basis(4, 2), [2.0, 1.0])
        self._feed_check(mon, est, gaps=3, outliers=2)
        assert mon.gap_rate == pytest.approx(0.3)
        assert mon.outlier_rate == pytest.approx(0.2)

    def test_reseed_reanchors(self):
        mon = HealthMonitor(0, check_every=10)
        est = _fake_estimator(_basis(8, 3), [3.0, 2.0, 1.0])
        self._feed_check(mon, est)
        est.state.basis = _basis(8, 3, rotate=np.pi / 2)
        mon.on_merge(est, reseed=True)  # adopted a new lineage
        assert mon.n_reseeds == 1
        self._feed_check(mon, est)
        assert mon.affinity == pytest.approx(1.0)  # new anchor

    def test_emits_health_events(self):
        tel = Telemetry(TelemetryConfig())
        mon = HealthMonitor(3, check_every=10)
        mon.bind_telemetry(tel)
        est = _fake_estimator(_basis(4, 2), [2.0, 1.0])
        self._feed_check(mon, est)
        mon.on_merge(est, reseed=False)
        events = [e for e in tel.events.events() if e["kind"] == "health"]
        assert [e["event"] for e in events] == ["check", "merge"]
        assert all(e["engine"] == 3 for e in events)
        assert tel.metrics.value(
            "repro_health_affinity", engine="3"
        ) == pytest.approx(1.0)

    def test_monitor_rides_the_real_operator(self):
        """End-to-end: health=True on the app wires monitors that see
        rows, checks, and sync merges on a live run."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((3000, 6))
        app = build_parallel_pca_graph(
            VectorStream.from_array(x),
            2,
            lambda i: RobustIncrementalPCA(3),
            health=True,
            health_check_every=100,
        )
        tel = Telemetry(TelemetryConfig())
        SynchronousEngine(app.graph, telemetry=tel).run()
        assert len(app.health_monitors) == 2
        assert sum(m.n_rows for m in app.health_monitors) == 3000
        assert all(m.n_checks > 0 for m in app.health_monitors)
        assert any(m.n_merges > 0 for m in app.health_monitors)
        snap = app.health_monitors[0].snapshot()
        assert 0.0 <= snap["affinity"] <= 1.0


# ---------------------------------------------------------------------------
# Rules + rule engine
# ---------------------------------------------------------------------------


class TestHealthRules:
    def test_rule_validates_severity(self):
        with pytest.raises(ValueError, match="severity"):
            HealthRule("bad", "fatal", lambda s: None)

    def test_ok_when_nothing_fires(self):
        engine = HealthRuleEngine(rules=default_rules())
        verdict = engine.evaluate()
        assert verdict.status == "OK" and verdict.firing == []
        assert verdict.ok

    def test_warn_and_critical_severities(self):
        rules = [
            HealthRule("always-warn", "warn", lambda s: 1),
            HealthRule("always-critical", "critical", lambda s: "boom"),
        ]
        verdict = HealthRuleEngine(rules=rules).evaluate()
        assert verdict.status == "CRITICAL"
        assert {f["rule"] for f in verdict.firing} == {
            "always-warn", "always-critical"
        }

    def test_broken_rule_degrades_not_crashes(self):
        rules = [HealthRule("broken", "warn", lambda s: 1 / 0)]
        verdict = HealthRuleEngine(rules=rules).evaluate()
        assert verdict.status == "DEGRADED"
        assert "rule error" in verdict.firing[0]["value"]

    def test_snapshot_aggregates_monitors(self):
        mons = [HealthMonitor(i, check_every=10) for i in range(2)]
        est = _fake_estimator(_basis(8, 3), [3.0, 2.0, 1.0])
        for m in mons:
            m.note_rows(10, r2_sum=10.0, weight_sum=10.0)
            m.maybe_check(est)
        # Engine 1 drifts away from its anchor.
        mons[1]._anchor_basis = _basis(8, 3, rotate=np.pi / 2)
        mons[1].note_rows(10, n_gap_rows=8, r2_sum=10.0, weight_sum=10.0)
        mons[1].maybe_check(est)
        engine = HealthRuleEngine(monitors=mons)
        snap = engine.snapshot()
        assert set(snap["engines"]) == {0, 1}
        assert snap["min_affinity"] < 0.5
        assert snap["max_gap_rate"] == pytest.approx(0.8)
        verdict = engine.evaluate()
        assert verdict.status == "DEGRADED"
        firing = {f["rule"] for f in verdict.firing}
        assert "subspace-affinity-low" in firing
        assert "gap-rate-high" in firing

    def test_watermark_lag_rule_reads_gauges(self):
        tel = Telemetry(TelemetryConfig())
        tracker = WatermarkTracker()
        tracker.note(time.time() - 500.0)  # ancient watermark: huge lag
        tel.metrics.gauge(
            "repro_watermark_lag_seconds", tracker.lag, sink="sink"
        )
        engine = HealthRuleEngine(tel, rules=default_rules())
        verdict = engine.evaluate()
        assert verdict.status == "DEGRADED"
        assert verdict.firing[0]["rule"] == "watermark-lag-high"
        assert verdict.snapshot["max_watermark_lag_s"] > 400.0

    def test_health_status_gauge_tracks_verdict(self):
        tel = Telemetry(TelemetryConfig())
        engine = HealthRuleEngine(
            tel, rules=[HealthRule("boom", "critical", lambda s: 1)]
        )
        assert tel.metrics.value("repro_health_status") == 0.0
        engine.evaluate()
        assert tel.metrics.value("repro_health_status") == 2.0

    def test_sampler_records_verdict_events(self):
        tel = Telemetry(TelemetryConfig())
        engine = HealthRuleEngine(tel, rules=default_rules())
        sampler = HealthSampler(engine, interval_s=0.01)
        sampler.start()
        time.sleep(0.06)
        sampler.stop()
        verdicts = [
            e for e in tel.events.events()
            if e["kind"] == "health_verdict"
        ]
        assert len(verdicts) >= 2
        assert all(v["status"] == "OK" for v in verdicts)


# ---------------------------------------------------------------------------
# Live endpoint
# ---------------------------------------------------------------------------


class TestObservabilityServer:
    def test_metrics_health_and_model_endpoints(self):
        tel = Telemetry(TelemetryConfig())
        tel.metrics.counter("repro_test_total").inc(3)
        mon = HealthMonitor(0, check_every=10)
        est = _fake_estimator(_basis(4, 2), [2.0, 1.0])
        mon.note_rows(10, r2_sum=10.0, weight_sum=10.0)
        mon.maybe_check(est)
        engine = HealthRuleEngine(tel, monitors=[mon])
        with ObservabilityServer(tel, rule_engine=engine) as srv:
            status, body = http_get(srv.url + "/metrics")
            assert status == 200
            assert "# TYPE repro_test_total counter" in body
            assert "repro_test_total 3" in body

            status, body = http_get(srv.url + "/health")
            payload = json.loads(body)
            assert status == 200
            assert payload["status"] == "OK"
            assert payload["firing"] == []
            assert payload["rules_wired"]

            status, body = http_get(srv.url + "/health/model")
            payload = json.loads(body)
            assert status == 200
            assert payload["engines"]["0"]["affinity"] == pytest.approx(1.0)

            status, _ = http_get(srv.url + "/nope")
            assert status == 404
        assert srv.n_requests == 4 and srv.n_errors == 0

    def test_health_without_rules_is_liveness_only(self):
        tel = Telemetry(TelemetryConfig())
        with ObservabilityServer(tel) as srv:
            status, body = http_get(srv.url + "/health")
            payload = json.loads(body)
            assert status == 200
            assert payload["status"] == "OK"
            assert not payload["rules_wired"]

    def test_critical_verdict_returns_503(self):
        tel = Telemetry(TelemetryConfig())
        engine = HealthRuleEngine(
            tel, rules=[HealthRule("down", "critical", lambda s: 1)]
        )
        with ObservabilityServer(tel, rule_engine=engine) as srv:
            status, body = http_get(srv.url + "/health")
            assert status == 503
            assert json.loads(body)["status"] == "CRITICAL"

    def test_kill_one_of_four_degrades_then_recovers(self):
        """The chaos scenario through the real endpoint: engine 3 of 4
        goes silent, the controller's membership sweep evicts it, and
        ``/health`` flips to DEGRADED naming ``peer-evicted``; when the
        engine speaks again it rejoins and the verdict returns to OK."""
        tel = Telemetry(TelemetryConfig())
        ctrl = SyncController("sync", 4, stale_after=3)

        def beat(engine):
            ctrl.process(
                StreamTuple.control(type="heartbeat", engine=engine),
                engine,
            )

        for e in range(4):  # all four peers tracked and alive
            beat(e)
        rule_engine = HealthRuleEngine(
            tel, controller=ctrl, rules=default_rules()
        )
        with ObservabilityServer(tel, rule_engine=rule_engine) as srv:
            status, body = http_get(srv.url + "/health")
            assert status == 200
            assert json.loads(body)["status"] == "OK"

            # Kill engine 3: its siblings keep talking past stale_after.
            for _ in range(4):
                for e in range(3):
                    beat(e)
            assert ctrl.live_peers() == [0, 1, 2]
            status, body = http_get(srv.url + "/health")
            payload = json.loads(body)
            assert status == 200  # degraded-but-serving stays routable
            assert payload["status"] == "DEGRADED"
            firing = {f["rule"] for f in payload["firing"]}
            assert "peer-evicted" in firing
            assert rule_engine.last_verdict.snapshot["dead_engines"] == [3]

            beat(3)  # the engine rejoins
            assert ctrl.live_peers() == [0, 1, 2, 3]
            status, body = http_get(srv.url + "/health")
            payload = json.loads(body)
            assert status == 200
            assert payload["status"] == "OK"
            assert payload["firing"] == []

    def test_quorum_lost_is_critical(self):
        tel = Telemetry(TelemetryConfig())
        ctrl = SyncController("sync", 4, stale_after=3, quorum=3)

        def beat(engine):
            ctrl.process(
                StreamTuple.control(type="heartbeat", engine=engine),
                engine,
            )

        for e in range(4):
            beat(e)
        for _ in range(5):  # only engine 0 still talks: 1-3 evicted
            beat(0)
        assert ctrl.live_peers() == [0]
        rule_engine = HealthRuleEngine(tel, controller=ctrl)
        with ObservabilityServer(tel, rule_engine=rule_engine) as srv:
            status, body = http_get(srv.url + "/health")
            payload = json.loads(body)
            assert status == 503
            assert payload["status"] == "CRITICAL"
            assert "quorum-lost" in {f["rule"] for f in payload["firing"]}


class TestObservabilityServerHardening:
    """Regression tests for the serving-PR hardening: JSON 404s on
    unknown paths and unknown engine ids, and per-connection socket
    timeouts so hung clients can't pin handler threads."""

    def _engine(self):
        tel = Telemetry(TelemetryConfig())
        mon = HealthMonitor(7, check_every=10)
        est = _fake_estimator(_basis(4, 2), [2.0, 1.0])
        mon.note_rows(10, r2_sum=10.0, weight_sum=10.0)
        mon.maybe_check(est)
        return tel, HealthRuleEngine(tel, monitors=[mon])

    def test_unknown_path_is_json_404_listing_routes(self):
        tel = Telemetry(TelemetryConfig())
        with ObservabilityServer(tel) as srv:
            status, body = http_get(srv.url + "/no/such/thing")
            payload = json.loads(body)
            assert status == 404
            assert "/no/such/thing" in payload["error"]
            assert "/metrics" in payload["paths"]
            assert "/health/model/<engine_id>" in payload["paths"]
        assert srv.n_errors == 0

    def test_engine_snapshot_endpoint(self):
        tel, engine = self._engine()
        with ObservabilityServer(tel, rule_engine=engine) as srv:
            status, body = http_get(srv.url + "/health/model/7")
            payload = json.loads(body)
            assert status == 200
            assert payload["engine"] == "7"
            assert payload["snapshot"]["affinity"] == pytest.approx(1.0)
            assert payload["rules_wired"]

    def test_unknown_engine_is_json_404_listing_known_ids(self):
        tel, engine = self._engine()
        with ObservabilityServer(tel, rule_engine=engine) as srv:
            status, body = http_get(srv.url + "/health/model/99")
            payload = json.loads(body)
            assert status == 404
            assert "99" in payload["error"]
            assert payload["known_engines"] == ["7"]

    def test_unknown_engine_without_rules(self):
        tel = Telemetry(TelemetryConfig())
        with ObservabilityServer(tel) as srv:
            status, body = http_get(srv.url + "/health/model/0")
            payload = json.loads(body)
            assert status == 404
            assert payload["known_engines"] == []
            assert not payload["rules_wired"]

    def test_hung_client_is_dropped_after_conn_timeout(self):
        import socket as socket_mod

        tel = Telemetry(TelemetryConfig())
        with ObservabilityServer(tel, conn_timeout_s=0.2) as srv:
            # Connect, dribble half a request line, then go silent.
            sock = socket_mod.create_connection(
                ("127.0.0.1", srv.port), timeout=5.0
            )
            try:
                sock.sendall(b"GET /metr")
                deadline = time.perf_counter() + 5.0
                while (
                    srv.n_timeouts == 0
                    and time.perf_counter() < deadline
                ):
                    time.sleep(0.02)
                assert srv.n_timeouts >= 1
            finally:
                sock.close()
            # The server still answers fresh requests afterwards.
            status, _ = http_get(srv.url + "/metrics")
            assert status == 200

    def test_conn_timeout_must_be_positive(self):
        tel = Telemetry(TelemetryConfig())
        with pytest.raises(ValueError):
            ObservabilityServer(tel, conn_timeout_s=0.0)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestHealthCLI:
    def _write_log(self, tmp_path, critical=False):
        tel = Telemetry(TelemetryConfig())
        mon = HealthMonitor(0, check_every=10)
        mon.bind_telemetry(tel)
        est = _fake_estimator(_basis(4, 2), [2.0, 1.0])
        mon.note_rows(10, r2_sum=10.0, weight_sum=10.0)
        mon.maybe_check(est)
        rules = (
            [HealthRule("down", "critical", lambda s: 1)]
            if critical else default_rules()
        )
        HealthSampler(HealthRuleEngine(tel, monitors=[mon], rules=rules)
                      ).sample()
        path = tmp_path / "events.jsonl"
        tel.write_jsonl(path)
        return path

    def test_health_report_renders(self, tmp_path, capsys):
        from repro.__main__ import main

        path = self._write_log(tmp_path)
        assert main(["health", str(path)]) == 0
        out = capsys.readouterr().out
        assert "model health" in out
        assert "final OK" in out

    def test_health_exit_code_on_critical(self, tmp_path, capsys):
        from repro.__main__ import main

        path = self._write_log(tmp_path, critical=True)
        assert main(["health", str(path)]) == 1
        out = capsys.readouterr().out
        assert "CRITICAL (down)" in out

    def test_health_on_log_without_health_events(self, tmp_path, capsys):
        from repro.__main__ import main

        tel = Telemetry(TelemetryConfig())
        tel.run_started(engine="synchronous", graph="g")
        path = tmp_path / "plain.jsonl"
        tel.write_jsonl(path)
        assert main(["health", str(path)]) == 0
        assert "no health events" in capsys.readouterr().out
