"""Tests for the Split load balancer and the Throttle operator."""

import numpy as np
import pytest

from repro.streams.split import Split
from repro.streams.throttle import Throttle
from repro.streams.tuples import StreamTuple


def wire(op):
    out = []
    op.bind(lambda tup, port: out.append((tup, port)))
    return out


class TestSplit:
    def test_round_robin_cycles(self):
        split = Split("s", 3, strategy="round_robin")
        out = wire(split)
        for i in range(9):
            split._dispatch(StreamTuple.data(x=i), 0)
        ports = [p for _, p in out]
        assert ports == [0, 1, 2] * 3
        assert list(split.sent_per_target) == [3, 3, 3]

    def test_random_is_roughly_uniform(self):
        split = Split("s", 4, strategy="random", seed=0)
        wire(split)
        for i in range(4000):
            split._dispatch(StreamTuple.data(x=i), 0)
        counts = split.sent_per_target
        assert counts.sum() == 4000
        assert np.all(counts > 800)

    def test_random_deterministic_by_seed(self):
        ports = []
        for _ in range(2):
            split = Split("s", 4, strategy="random", seed=42)
            out = wire(split)
            for i in range(50):
                split._dispatch(StreamTuple.data(x=i), 0)
            ports.append([p for _, p in out])
        assert ports[0] == ports[1]

    def test_least_loaded_uses_probe(self):
        split = Split("s", 3, strategy="least_loaded", seed=0)
        wire(split)
        loads = {0: 10, 1: 0, 2: 10}
        split.set_load_probe(lambda p: loads[p])
        for i in range(20):
            split._dispatch(StreamTuple.data(x=i), 0)
        assert split.sent_per_target[1] == 20

    def test_least_loaded_without_probe_falls_back_round_robin(self):
        split = Split("s", 3, strategy="least_loaded", seed=0)
        out = wire(split)
        with pytest.warns(RuntimeWarning, match="no load probe"):
            for i in range(9):
                split._dispatch(StreamTuple.data(x=i), 0)
        # Deterministic round-robin, not uniform random.
        assert [p for _, p in out] == [0, 1, 2] * 3
        assert list(split.sent_per_target) == [3, 3, 3]

    def test_no_probe_warning_emitted_once(self):
        split = Split("s", 2, strategy="least_loaded")
        wire(split)
        with pytest.warns(RuntimeWarning):
            split._dispatch(StreamTuple.data(x=0), 0)
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            for i in range(5):
                split._dispatch(StreamTuple.data(x=i), 0)

    def test_control_broadcast(self):
        split = Split("s", 3, strategy="round_robin")
        out = wire(split)
        split._dispatch(StreamTuple.control(type="ping"), 0)
        assert len(out) == 3
        assert sorted(p for _, p in out) == [0, 1, 2]
        # Control tuples don't count toward data balance.
        assert split.sent_per_target.sum() == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="n_targets"):
            Split("s", 0)
        with pytest.raises(ValueError, match="strategy"):
            Split("s", 2, strategy="zigzag")


class TestThrottleLogical:
    def test_logical_period(self):
        th = Throttle("t", logical_period=3)
        out = wire(th)
        for i in range(9):
            th._dispatch(StreamTuple.data(x=i), 0)
        assert [t["x"] for t, _ in out] == [2, 5, 8]
        assert th.n_dropped == 6

    def test_period_one_passes_everything(self):
        th = Throttle("t", logical_period=1)
        out = wire(th)
        for i in range(5):
            th._dispatch(StreamTuple.data(x=i), 0)
        assert len(out) == 5


class TestThrottleWallClock:
    def test_drop_mode_with_fake_clock(self):
        now = [0.0]
        th = Throttle("t", rate_hz=10.0, mode="drop", clock=lambda: now[0])
        out = wire(th)
        # Two tuples in the same instant: second is dropped.
        th._dispatch(StreamTuple.data(x=0), 0)
        th._dispatch(StreamTuple.data(x=1), 0)
        assert len(out) == 1
        assert th.n_dropped == 1
        # After the rate interval, the next one passes.
        now[0] += 0.11
        th._dispatch(StreamTuple.data(x=2), 0)
        assert len(out) == 2

    def test_combined_logical_and_rate(self):
        now = [0.0]
        th = Throttle(
            "t", rate_hz=1000.0, logical_period=2, mode="drop",
            clock=lambda: now[0],
        )
        out = wire(th)
        for i in range(6):
            now[0] += 0.01
            th._dispatch(StreamTuple.data(x=i), 0)
        # Logical gate admits every 2nd; rate never binds at 10ms spacing.
        assert [t["x"] for t, _ in out] == [1, 3, 5]

    def test_validation(self):
        with pytest.raises(ValueError, match="rate_hz"):
            Throttle("t", rate_hz=0.0)
        with pytest.raises(ValueError, match="logical_period"):
            Throttle("t", logical_period=0)
        with pytest.raises(ValueError, match="mode"):
            Throttle("t", rate_hz=1.0, mode="defer")


class TestThrottleAchievedRate:
    def test_achieved_rate_matches_configured_rate(self):
        now = [0.0]
        # Binary-exact numbers (1/8 s period, 1/16 s arrivals) keep the
        # fake-clock grid float-drift free.
        th = Throttle("t", rate_hz=8.0, mode="drop", clock=lambda: now[0])
        wire(th)
        assert th.achieved_rate_hz() == 0.0  # nothing forwarded yet
        # Offer at 16 Hz; the throttle passes every other tuple, so the
        # achieved rate converges on the configured 8 Hz.
        for i in range(21):
            now[0] = i * 0.0625
            th._dispatch(StreamTuple.data(x=i), 0)
        assert th.n_forwarded == 11
        assert th.n_dropped == 10
        assert th.achieved_rate_hz() == pytest.approx(8.0)

    def test_single_forward_reports_zero(self):
        now = [0.0]
        th = Throttle("t", rate_hz=5.0, clock=lambda: now[0])
        wire(th)
        th._dispatch(StreamTuple.data(x=0), 0)
        assert th.n_forwarded == 1
        assert th.achieved_rate_hz() == 0.0  # one forward = no interval

    def test_exported_as_telemetry_gauge(self):
        from repro.data import VectorStream
        from repro.streams.engine import SynchronousEngine
        from repro.streams.graph import Graph
        from repro.streams.sinks import CollectingSink
        from repro.streams.sources import VectorSource
        from repro.streams.telemetry import Telemetry

        now = [0.0]
        g = Graph("rate")
        src = g.add(VectorSource(
            "src", VectorStream.from_array(np.zeros((11, 2)))
        ))
        th = Throttle("t", rate_hz=100.0, mode="drop",
                      clock=lambda: now[0])
        # Advance the fake clock 10ms per arrival: forwards land exactly
        # on the 100 Hz grid, so nothing is dropped.
        orig = th.process

        def paced(tup, port):
            orig(tup, port)
            now[0] += 0.01

        th.process = paced
        g.add(th)
        sink = g.add(CollectingSink("sink"))
        g.connect(src, th)
        g.connect(th, sink)
        tel = Telemetry()
        SynchronousEngine(g, telemetry=tel).run()
        assert th.n_forwarded == 11
        gauge = tel.metrics.value("repro_throttle_achieved_hz", operator="t")
        assert gauge == pytest.approx(th.achieved_rate_hz())
        assert gauge == pytest.approx(100.0)
