"""Tests for the subspace drift detector (monitoring use case)."""

import numpy as np
import pytest

from repro.core import (
    Eigensystem,
    RobustIncrementalPCA,
    SubspaceDriftDetector,
)
from repro.data import DriftingSubspaceModel, PlantedSubspaceModel


def _snap(est):
    return est.public_state()


class TestSubspaceDriftDetector:
    def test_stationary_stream_never_alarms(self, small_model, rng):
        est = RobustIncrementalPCA(3, alpha=0.995)
        detector = SubspaceDriftDetector(warmup_snapshots=2)
        for i, x in enumerate(small_model.stream(5000, rng), start=1):
            est.update(x)
            if i % 500 == 0:
                detector.observe(_snap(est))
        assert detector.alarms == []
        assert len(detector.reports) >= 8

    def test_regime_change_alarms(self, rng):
        d = 30
        a = rng.standard_normal((3000, d)) * np.array([6.0, 4.0] + [0.3] * (d - 2))
        b = rng.standard_normal((3000, d)) * np.array(
            [0.3, 0.3, 6.0, 4.0] + [0.3] * (d - 4)
        )
        est = RobustIncrementalPCA(2, alpha=0.99)
        detector = SubspaceDriftDetector(warmup_snapshots=2)
        alarm_steps = []
        for i, x in enumerate(np.vstack([a, b]), start=1):
            est.update(x)
            if i % 500 == 0:
                report = detector.observe(_snap(est))
                if report and report.alarmed:
                    alarm_steps.append(i)
        assert alarm_steps, "regime change went unnoticed"
        # Alarms arrive shortly after the switch at 3000, not before.
        assert min(alarm_steps) in (3500, 4000)
        assert detector.alarms[0].worst_axis() in (
            "angle", "eigenvalue_shift", "scale_shift",
        )

    def test_scale_jump_alarms(self, rng):
        basis, _ = np.linalg.qr(rng.standard_normal((10, 2)))
        base = Eigensystem(
            mean=np.zeros(10), basis=basis,
            eigenvalues=np.array([4.0, 2.0]), scale=1.0, n_seen=100,
        )
        detector = SubspaceDriftDetector(warmup_snapshots=0)
        detector.observe(base)
        noisy = base.copy()
        noisy.scale = 5.0
        report = detector.observe(noisy)
        assert report.alarmed
        assert report.worst_axis() == "scale_shift"

    def test_first_snapshot_returns_none(self, rng):
        detector = SubspaceDriftDetector()
        assert detector.observe(Eigensystem.empty(5)) is None

    def test_warmup_suppresses_alarms(self, rng):
        basis1, _ = np.linalg.qr(rng.standard_normal((10, 2)))
        basis2, _ = np.linalg.qr(rng.standard_normal((10, 2)))
        s1 = Eigensystem(mean=np.zeros(10), basis=basis1,
                         eigenvalues=np.array([2.0, 1.0]), scale=1.0)
        s2 = Eigensystem(mean=np.zeros(10), basis=basis2,
                         eigenvalues=np.array([2.0, 1.0]), scale=1.0)
        detector = SubspaceDriftDetector(warmup_snapshots=5)
        detector.observe(s1)
        report = detector.observe(s2)  # huge rotation, but in warm-up
        assert not report.alarmed

    def test_snapshot_copied_not_aliased(self, rng):
        basis, _ = np.linalg.qr(rng.standard_normal((6, 2)))
        st = Eigensystem(mean=np.zeros(6), basis=basis,
                         eigenvalues=np.array([2.0, 1.0]), scale=1.0)
        detector = SubspaceDriftDetector(warmup_snapshots=0)
        detector.observe(st)
        st.scale = 100.0  # caller keeps mutating
        report = detector.observe(st)
        assert report.scale_shift == pytest.approx(99.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SubspaceDriftDetector(angle_threshold=0.0)
        with pytest.raises(ValueError):
            SubspaceDriftDetector(eigenvalue_rtol=0.0)
        with pytest.raises(ValueError):
            SubspaceDriftDetector(warmup_snapshots=-1)
