"""Cross-cutting property-based tests (hypothesis).

Each property here is an invariant the system's correctness rests on,
exercised over randomized inputs: update/merge algebra, serialization
round-trips, normalization equivariance, gap-fill consistency, and
stream-engine conservation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Eigensystem,
    IncrementalPCA,
    RobustIncrementalPCA,
    fill_from_basis,
    merge_eigensystems,
    unit_mean_flux,
    unit_norm,
)
from repro.data import VectorStream
from repro.streams import (
    CollectingSink,
    Graph,
    Split,
    SynchronousEngine,
    Union,
    VectorSource,
)

seeds = st.integers(0, 2**31 - 1)


class TestUpdateInvariants:
    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, dim=st.integers(5, 30), p=st.integers(1, 4))
    def test_classic_update_preserves_orthonormality(self, seed, dim, p):
        rng = np.random.default_rng(seed)
        p = min(p, dim - 1)
        est = IncrementalPCA(p, init_size=max(p + 2, 5))
        est.partial_fit(rng.standard_normal((60, dim)))
        assert est.state.orthonormality_error() < 1e-8
        assert np.all(np.diff(est.eigenvalues_) <= 1e-12)  # descending
        assert np.all(est.eigenvalues_ >= -1e-12)

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, alpha=st.floats(0.9, 1.0))
    def test_robust_update_state_always_valid(self, seed, alpha):
        rng = np.random.default_rng(seed)
        est = RobustIncrementalPCA(3, alpha=alpha, init_size=10)
        x = rng.standard_normal((80, 12))
        # Sprinkle outliers and gaps.
        x[::11] *= 40.0
        x[::7, 0] = np.nan
        est.partial_fit(x)
        st_ = est.state
        st_.validate()
        assert st_.orthonormality_error() < 1e-8
        assert np.isfinite(st_.scale) and st_.scale >= 0
        assert st_.sum_count > 0

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds)
    def test_trace_never_exceeds_total_power(self, seed):
        """Retained eigenvalue mass is bounded by the running total
        second moment (no energy creation)."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((100, 10))
        est = IncrementalPCA(3, init_size=10).partial_fit(x)
        total_power = np.mean(np.sum((x - est.mean_) ** 2, axis=1))
        assert est.eigenvalues_.sum() <= total_power * 1.3


class TestMergeInvariants:
    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, n_parts=st.integers(2, 5))
    def test_merge_is_permutation_invariant(self, seed, n_parts):
        rng = np.random.default_rng(seed)
        states = []
        for i in range(n_parts):
            x = rng.standard_normal((50, 8))
            st_ = Eigensystem.from_batch(x, 3)
            st_.sum_weight = st_.sum_count
            states.append(st_)
        a = merge_eigensystems(states, 3)
        b = merge_eigensystems(states[::-1], 3)
        assert np.allclose(a.eigenvalues, b.eigenvalues, rtol=1e-9)
        assert np.allclose(a.mean, b.mean)

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds)
    def test_merged_eigenvalues_nonnegative_descending(self, seed):
        rng = np.random.default_rng(seed)
        states = [
            Eigensystem.from_batch(rng.standard_normal((30, 6)), 4)
            for _ in range(3)
        ]
        merged = merge_eigensystems(states, 4)
        assert np.all(merged.eigenvalues >= 0)
        assert np.all(np.diff(merged.eigenvalues) <= 1e-12)
        assert merged.orthonormality_error() < 1e-8


class TestSerializationRoundTrips:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, dim=st.integers(2, 20), k=st.integers(0, 4))
    def test_eigensystem_dict_roundtrip(self, seed, dim, k):
        rng = np.random.default_rng(seed)
        k = min(k, dim)
        basis, _ = np.linalg.qr(rng.standard_normal((dim, max(k, 1))))
        st_ = Eigensystem(
            mean=rng.standard_normal(dim),
            basis=basis[:, :k],
            eigenvalues=np.sort(rng.random(k))[::-1],
            scale=float(rng.random() + 0.1),
            sum_count=float(rng.random() * 100),
            sum_weight=float(rng.random() * 100),
            sum_weighted_r2=float(rng.random() * 100),
            n_seen=int(rng.integers(0, 1000)),
            n_since_sync=int(rng.integers(0, 100)),
        )
        assert Eigensystem.from_dict(st_.to_dict()) == st_

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds)
    def test_checkpoint_roundtrip(self, seed, tmp_path_factory):
        from repro.io.checkpoint import load_eigensystem, save_eigensystem

        rng = np.random.default_rng(seed)
        basis, _ = np.linalg.qr(rng.standard_normal((7, 2)))
        st_ = Eigensystem(
            mean=rng.standard_normal(7),
            basis=basis,
            eigenvalues=np.array([2.0, 1.0]) * (1 + rng.random()),
            scale=float(rng.random() + 0.01),
            n_seen=int(rng.integers(0, 10_000)),
        )
        path = tmp_path_factory.mktemp("ck") / "state.npz"
        save_eigensystem(path, st_)
        assert load_eigensystem(path) == st_


class TestNormalizationInvariants:
    @settings(max_examples=30, deadline=None)
    @given(seed=seeds, scale=st.floats(1e-3, 1e3))
    def test_scale_invariance(self, seed, scale):
        rng = np.random.default_rng(seed)
        x = rng.random(30) + 0.1
        assert np.allclose(unit_mean_flux(x), unit_mean_flux(scale * x))
        assert np.allclose(unit_norm(x), unit_norm(scale * x))

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_idempotence(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.random(30) + 0.1
        once = unit_mean_flux(x)
        assert np.allclose(unit_mean_flux(once), once)


class TestGapFillInvariants:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, n_miss=st.integers(1, 10))
    def test_fill_is_idempotent_and_preserves_observed(self, seed, n_miss):
        rng = np.random.default_rng(seed)
        basis, _ = np.linalg.qr(rng.standard_normal((25, 3)))
        mean = rng.standard_normal(25)
        x = mean + basis @ rng.standard_normal(3) + 0.1 * rng.standard_normal(25)
        miss = rng.choice(25, size=n_miss, replace=False)
        x_gappy = x.copy()
        x_gappy[miss] = np.nan
        out = fill_from_basis(x_gappy, mean, basis)
        # Observed entries untouched, all entries finite.
        obs = np.isfinite(x_gappy)
        assert np.array_equal(out.filled[obs], x_gappy[obs])
        assert np.all(np.isfinite(out.filled))
        # Filling a complete vector is the identity.
        again = fill_from_basis(out.filled, mean, basis)
        assert again.n_filled == 0
        assert np.array_equal(again.filled, out.filled)


class TestEngineConservation:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=seeds,
        n_tuples=st.integers(1, 200),
        n_ways=st.integers(1, 6),
        strategy=st.sampled_from(["random", "round_robin"]),
    )
    def test_split_union_conserves_tuples(
        self, seed, n_tuples, n_ways, strategy
    ):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n_tuples, 3))
        g = Graph("prop")
        src = g.add(VectorSource("src", VectorStream.from_array(x)))
        split = g.add(Split("split", n_ways, strategy=strategy, seed=seed))
        uni = g.add(Union("union", n_ways))
        sink = g.add(CollectingSink("sink"))
        g.connect(src, split)
        for i in range(n_ways):
            g.connect(split, uni, out_port=i, in_port=i)
        g.connect(uni, sink)
        SynchronousEngine(g).run()
        assert len(sink.tuples) == n_tuples
        assert sorted(t["seq"] for t in sink.tuples) == list(range(n_tuples))
        assert int(split.sent_per_target.sum()) == n_tuples
