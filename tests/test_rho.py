"""Unit and property tests for the bounded rho-functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rho import (
    BisquareRho,
    CauchyRho,
    SkippedMeanRho,
    make_rho,
)

ALL_FAMILIES = [BisquareRho(), CauchyRho(), SkippedMeanRho()]
FAMILY_IDS = ["bisquare", "cauchy", "skipped"]

t_values = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)


@pytest.mark.parametrize("rho", ALL_FAMILIES, ids=FAMILY_IDS)
class TestRhoProperties:
    def test_rho_at_zero_is_zero(self, rho):
        assert rho.rho(0.0) == 0.0

    def test_rho_at_infinity_is_one(self, rho):
        assert rho.rho(1e30) == pytest.approx(1.0, abs=1e-12)

    def test_rho_bounded(self, rho):
        t = np.linspace(0, 100 * rho.c2, 500)
        vals = rho.rho(t)
        assert np.all(vals >= 0.0)
        assert np.all(vals <= 1.0)

    def test_rho_nondecreasing(self, rho):
        t = np.linspace(0, 20 * rho.c2, 1000)
        vals = np.asarray(rho.rho(t))
        assert np.all(np.diff(vals) >= -1e-12)

    def test_weight_nonnegative(self, rho):
        t = np.linspace(0, 20 * rho.c2, 500)
        assert np.all(np.asarray(rho.weight(t)) >= 0.0)

    def test_weight_is_rho_derivative(self, rho):
        # Numerical differentiation away from any kink.
        t = np.linspace(0.01 * rho.c2, 0.9 * rho.c2, 50)
        h = 1e-7 * rho.c2
        numeric = (np.asarray(rho.rho(t + h)) - np.asarray(rho.rho(t - h))) / (
            2 * h
        )
        assert np.allclose(numeric, rho.weight(t), rtol=1e-4, atol=1e-10)

    def test_wstar_limit_at_zero(self, rho):
        assert rho.wstar(0.0) == pytest.approx(rho.weight_at_zero())
        # wstar is continuous into the limit.
        assert rho.wstar(1e-12) == pytest.approx(
            rho.weight_at_zero(), rel=1e-5
        )

    def test_wstar_equals_rho_over_t(self, rho):
        t = np.array([0.1, 1.0, 5.0, 50.0]) * rho.c2
        assert np.allclose(rho.wstar(t), np.asarray(rho.rho(t)) / t)

    def test_scalar_and_array_agree(self, rho):
        t = np.array([0.0, 0.5, 2.0]) * rho.c2
        arr = np.asarray(rho.rho(t))
        for i, ti in enumerate(t):
            assert rho.rho(float(ti)) == pytest.approx(arr[i])
        assert isinstance(rho.rho(1.0), float)
        assert isinstance(rho.weight(1.0), float)
        assert isinstance(rho.wstar(1.0), float)

    def test_with_c2(self, rho):
        other = rho.with_c2(rho.c2 * 2)
        assert type(other) is type(rho)
        assert other.c2 == rho.c2 * 2

    @settings(max_examples=50, deadline=None)
    @given(t=t_values)
    def test_hypothesis_bounds(self, rho, t):
        r = rho.rho(t)
        assert 0.0 <= r <= 1.0
        assert rho.weight(t) >= 0.0
        assert rho.wstar(t) >= 0.0


class TestRedescending:
    def test_bisquare_rejects_beyond_c2(self):
        rho = BisquareRho(c2=9.0)
        assert rho.weight(9.0) == 0.0
        assert rho.weight(100.0) == 0.0
        assert rho.rejection_point() == 9.0

    def test_skipped_rejects_beyond_c2(self):
        rho = SkippedMeanRho(c2=4.0)
        assert rho.weight(4.0) == 0.0
        assert rho.weight(3.99) == pytest.approx(0.25)
        assert rho.rejection_point() == 4.0

    def test_cauchy_never_fully_rejects(self):
        rho = CauchyRho(c2=4.0)
        assert rho.weight(1e6) > 0.0
        assert np.isinf(rho.rejection_point())


class TestMakeRho:
    def test_default_families(self):
        assert isinstance(make_rho("bisquare"), BisquareRho)
        assert isinstance(make_rho("cauchy"), CauchyRho)
        assert isinstance(make_rho("skipped"), SkippedMeanRho)

    def test_custom_c2(self):
        assert make_rho("bisquare", c2=3.5).c2 == 3.5

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError, match="unknown rho family"):
            make_rho("huber")

    @pytest.mark.parametrize("cls", [BisquareRho, CauchyRho, SkippedMeanRho])
    def test_invalid_c2_raises(self, cls):
        with pytest.raises(ValueError, match="c2 must be positive"):
            cls(c2=0.0)
        with pytest.raises(ValueError, match="c2 must be positive"):
            cls(c2=-1.0)


@pytest.mark.parametrize("rho", ALL_FAMILIES, ids=FAMILY_IDS)
class TestExtremeResiduals:
    """Finite, correct limits at t = inf and near-overflow t.

    Infinite scaled residuals arise whenever the M-scale underflows to
    zero; the Cauchy family used to return inf/inf = NaN from ``rho``
    and propagate it through ``wstar`` with a RuntimeWarning, and its
    ``weight`` overflowed ``(t + c2)**2`` for t > ~1e154.
    """

    def test_rho_at_inf_is_one(self, rho):
        with np.errstate(all="raise"):
            assert rho.rho(np.inf) == 1.0
            assert np.asarray(rho.rho(np.array([np.inf, 0.0])))[0] == 1.0

    def test_weight_at_inf_is_zero(self, rho):
        with np.errstate(invalid="raise", over="raise", divide="raise"):
            assert rho.weight(np.inf) == 0.0
            assert np.asarray(rho.weight(np.array([np.inf])))[0] == 0.0

    def test_wstar_at_inf_is_zero(self, rho):
        with np.errstate(invalid="raise", over="raise", divide="raise"):
            assert rho.wstar(np.inf) == 0.0
            assert np.asarray(rho.wstar(np.array([np.inf])))[0] == 0.0

    def test_near_overflow_t_stays_finite(self, rho):
        # t beyond sqrt(float64 max): (t + c2)**2 would overflow.
        for t in (1e155, 1e300, float(np.finfo(np.float64).max)):
            with np.errstate(invalid="raise", over="raise", divide="raise"):
                r, w, ws = rho.rho(t), rho.weight(t), rho.wstar(t)
            assert r == pytest.approx(1.0, abs=1e-12)
            assert 0.0 <= w < 1e-150
            assert 0.0 <= ws < 1e-150

    def test_block_weights_matches_pointwise(self, rho):
        t = np.array([0.0, 1e-12, 0.5, 1.0, 3.9, 4.0, 9.0, 1e6, 1e300, np.inf])
        w, ws = rho.block_weights(t)
        assert w.shape == t.shape and ws.shape == t.shape
        for i, ti in enumerate(t):
            assert w[i] == pytest.approx(float(rho.weight(float(ti))), rel=1e-10, abs=1e-300)
            assert ws[i] == pytest.approx(float(rho.wstar(float(ti))), rel=1e-10, abs=1e-300)
