"""Tests for gap-aware spectrum normalization."""

import numpy as np
import pytest

from repro.core.normalize import (
    NormalizationError,
    normalize_block,
    unit_mean_flux,
    unit_norm,
)


class TestUnitNorm:
    def test_complete_vector(self, rng):
        x = rng.standard_normal(50)
        out = unit_norm(x)
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_gap_extrapolation_is_unbiased(self, rng):
        """A gappy version of a spectrum gets (approximately) the same
        scale as the complete version."""
        x = rng.standard_normal(2000) + 5.0
        full = unit_norm(x)
        gappy = x.copy()
        gappy[rng.random(2000) < 0.4] = np.nan
        out = unit_norm(gappy)
        mask = np.isfinite(out)
        ratio = np.median(out[mask] / full[mask])
        assert ratio == pytest.approx(1.0, rel=0.05)

    def test_gaps_stay_nan(self):
        x = np.array([3.0, np.nan, 4.0])
        out = unit_norm(x)
        assert np.isnan(out[1])
        assert np.all(np.isfinite(out[[0, 2]]))

    def test_zero_vector_raises(self):
        with pytest.raises(NormalizationError, match="zero"):
            unit_norm(np.zeros(5))

    def test_fully_missing_raises(self):
        with pytest.raises(NormalizationError, match="fully-missing"):
            unit_norm(np.full(5, np.nan))


class TestUnitMeanFlux:
    def test_complete_vector(self, rng):
        x = rng.random(50) + 0.5
        out = unit_mean_flux(x)
        assert out.mean() == pytest.approx(1.0)

    def test_scale_invariance(self, rng):
        """Brightness differences vanish — the §II-D requirement."""
        x = rng.random(50) + 0.5
        assert np.allclose(unit_mean_flux(x), unit_mean_flux(7.5 * x))

    def test_gappy_mean(self):
        x = np.array([2.0, np.nan, 4.0])
        out = unit_mean_flux(x)
        assert np.nanmean(out) == pytest.approx(1.0)

    def test_negative_mean_raises(self):
        with pytest.raises(NormalizationError, match="positive"):
            unit_mean_flux(np.array([-1.0, -2.0]))


class TestNormalizeBlock:
    def test_normalizes_rows(self, rng):
        x = rng.random((10, 20)) + 0.5
        out = normalize_block(x, "mean-flux")
        assert np.allclose(out.mean(axis=1), 1.0)

    def test_norm_method(self, rng):
        x = rng.standard_normal((5, 20))
        out = normalize_block(x, "norm")
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0)

    def test_single_vector(self, rng):
        x = rng.random(20) + 0.5
        assert normalize_block(x).ndim == 1

    def test_unknown_method(self, rng):
        with pytest.raises(ValueError, match="unknown normalization"):
            normalize_block(rng.random((2, 3)), "zscore")
