"""Tests for the serving durability plane (``repro.serving.durability``).

Bottom-up: WAL record framing and the segmented log, the torn-write /
bit-flip fuzz suite (recovery must always yield a *prefix* of acked
records and never crash or replay garbage), the hardened checkpoint
stores, client retry discipline, in-process service recovery with
``/ready`` gating — and the end-to-end acceptance test: a real
subprocess SIGKILLed mid-ingest under ``--durability fsync`` restarts
with zero acked-row loss, monotone snapshot versions, and a recovered
basis that answers like an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.core.robust import RobustIncrementalPCA
from repro.io import (
    CheckpointStore,
    load_eigensystem,
    load_eigensystem_extras,
    save_eigensystem,
)
from repro.serving import (
    DurabilityPlane,
    PCAService,
    RecoveryManager,
    ServingClient,
    ServingConfig,
    TenantCheckpointStore,
    TenantSpec,
    WalError,
    WriteAheadLog,
)
from repro.serving.durability import _decode_body, _encode_record


def _blocks(n, rows=6, dim=5, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(rows, dim)) for _ in range(n)]


def _state(n_seen=100, dim=8, k=3, seed=1):
    est = RobustIncrementalPCA(k)
    est.update_block(np.random.default_rng(seed).normal(size=(n_seen, dim)))
    return est.public_state()


# ---------------------------------------------------------------------------
# record framing


class TestWalFraming:
    def test_round_trip(self):
        block = np.arange(12.0).reshape(3, 4)
        data = _encode_record(7, block, 123.5)
        got, ts = _decode_body(data[24:])  # past the 24-byte head
        assert np.array_equal(got, block)
        assert ts == 123.5

    def test_rejects_non_2d(self):
        with pytest.raises(WalError):
            _encode_record(0, np.zeros(5), 0.0)

    def test_decode_rejects_garbage(self):
        with pytest.raises(WalError):
            _decode_body(b"\x00\x00\x00\x04abcdxyz")
        with pytest.raises(WalError):
            _decode_body(b"\xff\xff\xff\xff")

    def test_decode_rejects_shape_mismatch(self):
        data = _encode_record(0, np.zeros((2, 3)), 0.0)
        body = bytearray(data[24:])
        # Claim more rows than the payload holds.
        hdr = json.dumps({"rows": 9, "dim": 3, "ts": 0.0}).encode()
        forged = (
            len(hdr).to_bytes(4, "big") + hdr + bytes(body[-48:])
        )
        with pytest.raises(WalError):
            _decode_body(forged)


# ---------------------------------------------------------------------------
# the segmented log


class TestWriteAheadLog:
    def test_append_assigns_monotone_seqs(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        assert [wal.append(b) for b in _blocks(5)] == [0, 1, 2, 3, 4]
        assert wal.next_seq == 5

    def test_replay_round_trips_blocks(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        blocks = _blocks(8)
        for b in blocks:
            wal.append(b)
        wal.close()
        recs = list(WriteAheadLog(tmp_path).replay())
        assert [r.seq for r in recs] == list(range(8))
        for r, b in zip(recs, blocks):
            assert np.array_equal(r.block, b)

    def test_replay_after_seq_filters(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for b in _blocks(6):
            wal.append(b)
        assert [r.seq for r in wal.replay(after_seq=3)] == [4, 5]
        assert wal.records_on_disk(3) == 2

    def test_bad_durability_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path, durability="sync")

    def test_fsync_mode_counts_fsyncs(self, tmp_path):
        wal = WriteAheadLog(tmp_path, durability="fsync")
        for b in _blocks(3):
            wal.append(b)
        assert wal.n_fsyncs == 3

    def test_rotation_creates_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_max_bytes=1024)
        for b in _blocks(12):
            wal.append(b)
        assert len(wal.segments()) > 1
        assert wal.n_rotations >= 1
        # All records survive across the segment boundary.
        assert [r.seq for r in wal.replay()] == list(range(12))

    def test_next_seq_resumes_across_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_max_bytes=1024)
        for b in _blocks(10):
            wal.append(b)
        wal.close()
        wal2 = WriteAheadLog(tmp_path, segment_max_bytes=1024)
        assert wal2.next_seq == 10
        assert wal2.append(np.zeros((2, 5))) == 10

    def test_truncate_upto_removes_covered_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_max_bytes=1024)
        for b in _blocks(20):
            wal.append(b)
        segs = wal.segments()
        assert len(segs) >= 3
        # A checkpoint covering the first two segments exactly.
        assert wal.truncate_upto(segs[2][0] - 1) == 2
        assert wal.segments()[0][0] == segs[2][0]
        # Remaining records still replay cleanly and chain.
        assert [r.seq for r in wal.replay()] == list(
            range(segs[2][0], 20)
        )

    def test_truncate_upto_keeps_uncovered(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_max_bytes=1024)
        for b in _blocks(20):
            wal.append(b)
        wal.truncate_upto(wal.segments()[1][0] - 1)  # cover segment 0 only
        assert wal.segments()[0][0] >= 1
        assert wal.records_on_disk(-1) == 20 - wal.segments()[0][0]

    def test_torn_tail_truncated_on_open(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for b in _blocks(5):
            wal.append(b)
        wal.close()
        seg = wal.segments()[-1][1]
        seg.write_bytes(seg.read_bytes()[:-7])  # tear the last record
        wal2 = WriteAheadLog(tmp_path)
        assert wal2.n_torn_records == 1
        assert wal2.next_seq == 4
        assert [r.seq for r in wal2.replay()] == [0, 1, 2, 3]
        # The torn bytes are physically gone: a fresh append chains.
        assert wal2.append(np.zeros((1, 5))) == 4
        assert [r.seq for r in wal2.replay()] == [0, 1, 2, 3, 4]

    def test_stats_surface(self, tmp_path):
        wal = WriteAheadLog(tmp_path, durability="async")
        for b in _blocks(4):
            wal.append(b)
        s = wal.stats()
        assert s["n_appends"] == 4
        assert s["durability"] == "async"
        assert s["next_seq"] == 4
        assert s["size_bytes"] > 0


# ---------------------------------------------------------------------------
# torn-write / bit-flip fuzz: recovery always yields a prefix, never crashes


class TestWalTornWriteFuzz:
    def _committed(self, tmp_path, n=10, segment_max_bytes=1024):
        wal = WriteAheadLog(tmp_path, segment_max_bytes=segment_max_bytes)
        blocks = _blocks(n, rows=4, dim=6, seed=3)
        for b in blocks:
            wal.append(b)
        wal.close()
        return wal, blocks

    def _assert_prefix(self, tmp_path, blocks):
        """Replay must be a (possibly empty) prefix of the acked records
        with bit-exact payloads — never an exception, never garbage."""
        recs = list(WriteAheadLog(tmp_path).replay())
        assert [r.seq for r in recs] == list(range(len(recs)))
        assert len(recs) <= len(blocks)
        for r, b in zip(recs, blocks):
            assert np.array_equal(r.block, b)
        return len(recs)

    def test_truncation_at_every_record_boundary(self, tmp_path):
        wal, blocks = self._committed(tmp_path)
        # Record the byte boundaries of every record in every segment.
        layouts = []
        for first_seq, path in wal.segments():
            ends = [end for _r, end in wal._scan_segment(path, first_seq)]
            layouts.append((path, path.read_bytes(), ends))
        for path, data, ends in layouts:
            for end in [0] + ends:
                path.write_bytes(data[:end])
                self._assert_prefix(tmp_path, blocks)
            path.write_bytes(data)  # restore for the next segment's turn

    def test_truncation_at_random_offsets(self, tmp_path):
        wal, blocks = self._committed(tmp_path)
        rng = np.random.default_rng(7)
        originals = {p: p.read_bytes() for _s, p in wal.segments()}
        for path, data in originals.items():
            for cut in rng.integers(0, len(data), size=12):
                path.write_bytes(data[: int(cut)])
                self._assert_prefix(tmp_path, blocks)
            path.write_bytes(data)

    def test_bit_flips_never_crash_or_forge(self, tmp_path):
        wal, blocks = self._committed(tmp_path)
        rng = np.random.default_rng(11)
        originals = {p: p.read_bytes() for _s, p in wal.segments()}
        for path, data in originals.items():
            for _ in range(30):
                corrupt = bytearray(data)
                pos = int(rng.integers(0, len(data)))
                corrupt[pos] ^= 1 << int(rng.integers(0, 8))
                path.write_bytes(bytes(corrupt))
                self._assert_prefix(tmp_path, blocks)
            path.write_bytes(data)

    def test_flipped_seq_field_detected(self, tmp_path):
        """The CRC covers only the body — a flipped header seq must be
        caught by the segment's seq chain, not replayed under a wrong
        sequence number."""
        wal, blocks = self._committed(tmp_path, n=4,
                                      segment_max_bytes=1 << 20)
        path = wal.segments()[0][1]
        data = bytearray(path.read_bytes())
        ends = [0] + [
            end for _r, end in wal._scan_segment(path, 0)
        ]
        # Flip the low bit of record 2's seq (bytes 8..16 of its head).
        data[ends[2] + 15] ^= 1
        path.write_bytes(bytes(data))
        assert self._assert_prefix(tmp_path, blocks) == 2

    def test_corrupt_earlier_segment_stops_later_ones(self, tmp_path):
        wal, blocks = self._committed(tmp_path)
        segs = wal.segments()
        assert len(segs) >= 2
        first_path = segs[0][1]
        data = first_path.read_bytes()
        first_path.write_bytes(data[: len(data) // 2])
        n = self._assert_prefix(tmp_path, blocks)
        # Nothing from the second segment may be replayed over the gap.
        assert n < segs[1][0]


# ---------------------------------------------------------------------------
# checkpoint stores


class TestTenantCheckpointStore:
    def test_save_load_extras_round_trip(self, tmp_path):
        store = TenantCheckpointStore(tmp_path)
        state = _state()
        extras = {
            "tenant": "t0", "snapshot_version": 5, "rows_applied": 100,
            "blocks_applied": 9, "wal_seq": 42, "outlier_t": 9.0,
            "published_unix": 1.0,
        }
        store.save(state, extras)
        loaded = store.load_latest()
        assert loaded is not None
        got_state, got_extras = loaded
        assert got_extras["wal_seq"] == 42
        assert got_extras["snapshot_version"] == 5
        np.testing.assert_allclose(got_state.basis, state.basis)

    def test_keep_last_gc(self, tmp_path):
        store = TenantCheckpointStore(tmp_path, keep_last=2)
        for v in range(6):
            store.save(_state(), {"snapshot_version": v})
        assert [v for v, _p in store.list()] == [4, 5]

    def test_corrupt_newest_falls_back(self, tmp_path):
        store = TenantCheckpointStore(tmp_path, keep_last=3)
        store.save(_state(seed=1), {"snapshot_version": 1, "wal_seq": 7})
        store.save(_state(seed=2), {"snapshot_version": 2, "wal_seq": 9})
        newest = store.list()[-1][1]
        newest.write_bytes(b"not an npz")
        loaded = store.load_latest()
        assert loaded is not None
        assert loaded[1]["wal_seq"] == 7

    def test_empty_store(self, tmp_path):
        store = TenantCheckpointStore(tmp_path)
        assert store.load_latest() is None
        assert store.age_s() is None


class TestCheckpointStoreHardening:
    """Satellite: io.CheckpointStore fsync + keep_last GC + extras."""

    def test_gc_retention(self, tmp_path):
        store = CheckpointStore(tmp_path, every=1)
        for n in (10, 20, 30, 40, 50):
            st = _state()
            st.n_seen = n
            store.save(st)
        assert store.gc(keep_last=2) == 3
        assert [n for n, _p in store.list()] == [40, 50]
        # load_latest still works after GC.
        assert store.load_latest().n_seen == 50

    def test_gc_validates(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path).gc(0)

    def test_keep_option_prunes_via_gc(self, tmp_path):
        store = CheckpointStore(tmp_path, every=1, keep=1)
        for n in (10, 20):
            st = _state()
            st.n_seen = n
            store.save(st)
        assert [n for n, _p in store.list()] == [20]

    def test_fsync_save_round_trips(self, tmp_path):
        store = CheckpointStore(tmp_path, every=1, fsync=True)
        st = _state()
        path = store.save(st)
        assert load_eigensystem(path).n_seen == st.n_seen

    def test_save_eigensystem_extras(self, tmp_path):
        st = _state()
        p = tmp_path / "x.npz"
        save_eigensystem(p, st, extras={"a": 1, "b": [2, 3]}, fsync=True)
        got, extras = load_eigensystem_extras(p)
        assert extras == {"a": 1, "b": [2, 3]}
        np.testing.assert_allclose(got.mean, st.mean)

    def test_extras_absent_is_empty_dict(self, tmp_path):
        st = _state()
        p = tmp_path / "x.npz"
        save_eigensystem(p, st)
        _got, extras = load_eigensystem_extras(p)
        assert extras == {}


# ---------------------------------------------------------------------------
# client retry discipline


class _StubHTTP(threading.Thread):
    """Scripted HTTP server: each entry in ``script`` handles one
    connection — 'close' drops it immediately, 'close_after_read' reads
    the request then drops, else it's a canned (code, headers, body)."""

    def __init__(self, script):
        super().__init__(daemon=True)
        import socket

        self.script = list(script)
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self.n_conns = 0

    def run(self):
        import socket as _socket

        while self.script:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            self.n_conns += 1
            action = self.script.pop(0)
            try:
                if action == "close":
                    conn.close()
                    continue
                conn.settimeout(5.0)
                data = b""
                while b"\r\n\r\n" not in data:
                    data += conn.recv(4096)
                head = data.split(b"\r\n\r\n", 1)[0].decode()
                clen = 0
                for line in head.split("\r\n"):
                    if line.lower().startswith("content-length:"):
                        clen = int(line.split(":", 1)[1])
                body_got = data.split(b"\r\n\r\n", 1)[1]
                while len(body_got) < clen:
                    body_got += conn.recv(4096)
                if action == "close_after_read":
                    conn.close()
                    continue
                code, headers, body = action
                payload = json.dumps(body).encode()
                lines = [f"HTTP/1.1 {code} X"]
                lines += [f"{k}: {v}" for k, v in headers.items()]
                lines += [
                    "Content-Type: application/json",
                    f"Content-Length: {len(payload)}",
                    "Connection: close", "", "",
                ]
                conn.sendall("\r\n".join(lines).encode() + payload)
                conn.close()
            except (_socket.timeout, OSError):
                conn.close()

    def stop(self):
        self.sock.close()


class TestClientRetry:
    def _client(self, port, **kw):
        kw.setdefault("timeout_s", 5.0)
        kw.setdefault("backoff_base_s", 0.01)
        kw.setdefault("backoff_cap_s", 0.05)
        return ServingClient("127.0.0.1", port, **kw)

    def test_idempotent_get_retried_on_reset(self):
        srv = _StubHTTP(["close", "close", (200, {}, {"live": True})])
        srv.start()
        c = self._client(srv.port, max_retries=3)
        reply = c.request("GET", "/live")
        assert reply.code == 200
        assert c.n_retries == 2
        srv.stop()

    def test_budget_bounds_retries(self):
        srv = _StubHTTP(["close"] * 10)
        srv.start()
        c = self._client(srv.port, max_retries=2)
        with pytest.raises(OSError):
            c.request("GET", "/live")
        assert c.n_retries == 2
        srv.stop()

    def test_non_idempotent_not_retried_after_send(self):
        srv = _StubHTTP(["close_after_read", (200, {}, {})])
        srv.start()
        c = self._client(srv.port, max_retries=3)
        with pytest.raises(OSError):
            c.request("POST", "/v1/t/ingest", {"rows": [[1.0]]},
                      idempotent=False)
        # The budget was never spent re-sending a possibly-applied write.
        assert c.n_retries == 0
        srv.stop()

    def test_retry_429_honors_retry_after(self):
        srv = _StubHTTP([
            (429, {"Retry-After": "0.02"},
             {"error": "shedding", "retry_after_s": 0.02}),
            (202, {}, {"accepted_rows": 1}),
        ])
        srv.start()
        c = self._client(srv.port, max_retries=3, retry_429=True)
        t0 = time.monotonic()
        reply = c.request("POST", "/v1/t/ingest", {"rows": [[1.0]]},
                          idempotent=False)
        assert reply.code == 202
        assert time.monotonic() - t0 >= 0.02
        assert c.n_retries == 1
        srv.stop()

    def test_429_surfaces_by_default(self):
        srv = _StubHTTP([
            (429, {"Retry-After": "0.01"}, {"error": "shedding"}),
        ])
        srv.start()
        c = self._client(srv.port)
        reply = c.request("POST", "/v1/t/ingest", {"rows": [[1.0]]},
                          idempotent=False)
        assert reply.code == 429
        assert c.n_retries == 0
        srv.stop()

    def test_retry_counter_lands_in_telemetry(self):
        from repro.streams.telemetry import Telemetry, TelemetryConfig

        tel = Telemetry(TelemetryConfig(metrics=True))
        srv = _StubHTTP(["close", (200, {}, {"live": True})])
        srv.start()
        c = self._client(srv.port, max_retries=2, telemetry=tel)
        assert c.request("GET", "/live").code == 200
        assert tel.metrics.value(
            "repro_client_retries_total", kind="reconnect"
        ) == 1
        srv.stop()


# ---------------------------------------------------------------------------
# service-level durability (in-process)


def _cfg(tmp_path, **kw):
    kw.setdefault("n_lanes", 1)
    kw.setdefault("elastic", False)
    kw.setdefault("data_dir", str(tmp_path / "data"))
    kw.setdefault("durability", "fsync")
    kw.setdefault("checkpoint_every_publishes", 2)
    kw.setdefault("checkpoint_interval_s", 0.05)
    return ServingConfig(**kw)


def _spec(name="t0", **kw):
    kw.setdefault("n_components", 3)
    kw.setdefault("init_size", 10)
    kw.setdefault("publish_every_blocks", 1)
    return TenantSpec(name, **kw)


def _ingest_n(svc, tenant, n_blocks, rows=16, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    total = 0
    for _ in range(n_blocks):
        code, payload = svc.ingest(tenant, rng.normal(size=(rows, dim)))
        assert code == 202, (code, payload)
        total += rows
    return total


class TestServiceDurability:
    def test_ack_carries_wal_seq_and_mode(self, tmp_path):
        svc = PCAService(_cfg(tmp_path))
        svc.add_tenant(_spec())
        svc.start()
        svc.durability.recovery.wait(5)
        try:
            code, payload = svc.ingest(
                "t0", np.random.default_rng(0).normal(size=(4, 8))
            )
            assert code == 202
            assert payload["wal_seq"] == 0
            assert payload["durability"] == "fsync"
        finally:
            svc.stop()

    def test_spec_persisted_and_wal_grows(self, tmp_path):
        svc = PCAService(_cfg(tmp_path))
        svc.add_tenant(_spec())
        svc.start()
        svc.durability.recovery.wait(5)
        try:
            _ingest_n(svc, "t0", 4)
            root = svc.durability.tenant_dir("t0")
            assert (root / "spec.json").is_file()
            assert svc.durability.wal_for("t0").n_appends == 4
        finally:
            svc.stop()

    def test_checkpointer_truncates_covered_wal(self, tmp_path):
        cfg = _cfg(tmp_path, wal_segment_bytes=2048)
        svc = PCAService(cfg)
        svc.add_tenant(_spec())
        svc.start()
        svc.durability.recovery.wait(5)
        try:
            _ingest_n(svc, "t0", 30)
            assert svc.pool.drain(10)
            deadline = time.monotonic() + 5
            wal = svc.durability.wal_for("t0")
            while time.monotonic() < deadline:
                if (svc.durability.checkpointer.n_checkpoints
                        and wal.n_truncated_segments):
                    break
                time.sleep(0.05)
            assert svc.durability.checkpointer.n_checkpoints >= 1
            assert wal.n_truncated_segments >= 1
        finally:
            svc.stop()

    def test_clean_restart_recovers_everything(self, tmp_path):
        cfg = _cfg(tmp_path)
        svc = PCAService(cfg)
        svc.add_tenant(_spec())
        svc.start()
        svc.durability.recovery.wait(5)
        total = _ingest_n(svc, "t0", 20)
        assert svc.pool.drain(10)
        v1 = svc.cache.version("t0")
        svc.stop()

        svc2 = PCAService(_cfg(tmp_path))
        svc2.start()
        assert svc2.durability.recovery.wait(10)
        try:
            st = svc2.tenant("t0")
            assert st is not None
            assert st.model.rows_applied >= total
            assert svc2.cache.version("t0") >= v1
            code, _ = svc2.transform(
                "t0", np.random.default_rng(1).normal(size=(2, 8))
            )
            assert code == 200
        finally:
            svc2.stop()

    def test_hard_crash_replays_wal_tail(self, tmp_path):
        """No checkpoint at all (cadence too slow to fire): recovery
        must rebuild the whole model from the WAL alone."""
        cfg = _cfg(tmp_path, checkpoint_every_publishes=10_000,
                   checkpoint_interval_s=60.0)
        svc = PCAService(cfg)
        svc.add_tenant(_spec())
        svc.start()
        svc.durability.recovery.wait(5)
        total = _ingest_n(svc, "t0", 15)
        assert svc.pool.drain(10)
        # Simulate SIGKILL: abandon the service without stop() — no
        # final publish, no checkpoint flush, WAL unsynced buffers are
        # all fsync-acked already.
        svc.pool.stop()
        svc._started = False

        svc2 = PCAService(_cfg(tmp_path))
        svc2.start()
        assert svc2.durability.recovery.wait(10)
        try:
            prog = svc2.durability.recovery.progress()["tenants"]["t0"]
            assert prog["checkpoint_version"] == 0
            assert prog["rows_replayed"] == total
            assert svc2.tenant("t0").model.rows_applied == total
        finally:
            svc2.stop()

    def test_ready_gates_on_recovery_with_progress(self, tmp_path):
        # Seed a data dir with a tenant and a WAL tail.
        svc = PCAService(_cfg(tmp_path, checkpoint_every_publishes=10_000,
                              checkpoint_interval_s=60.0))
        svc.add_tenant(_spec())
        svc.start()
        svc.durability.recovery.wait(5)
        _ingest_n(svc, "t0", 10)
        assert svc.pool.drain(10)
        svc.pool.stop()
        svc._started = False

        # Second service: drive recovery by hand with a throttle so the
        # 503 window is observable.
        cfg2 = ServingConfig(n_lanes=1, elastic=False)
        svc2 = PCAService(cfg2)
        svc2.start()
        plane = DurabilityPlane(
            str(tmp_path / "data"), durability="fsync")
        svc2.durability = plane
        rec = RecoveryManager(plane, svc2)
        rec.throttle_s = 0.05
        plane.recovery = rec
        rec.start()
        try:
            saw_503 = False
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and not rec.done.is_set():
                code, payload = svc2.ready()
                if code == 503 and payload.get("recovering"):
                    assert "recovery" in payload
                    assert payload["retry_after_s"] > 0
                    saw_503 = True
                    # Ingest is refused while replaying.
                    icode, ipayload = svc2.ingest(
                        "t0", np.zeros((1, 8))
                    )
                    assert icode == 503
                    assert ipayload["reason"] == "recovering"
                    break
                time.sleep(0.01)
            assert saw_503, "recovery window was never observable"
            assert rec.done.wait(10)
            code, payload = svc2.ready()
            assert code == 200
            assert payload["recovering"] is False
        finally:
            plane.stop()
            svc2.stop()

    def test_status_and_metrics_expose_durability(self, tmp_path):
        svc = PCAService(_cfg(tmp_path))
        svc.add_tenant(_spec())
        svc.start()
        svc.durability.recovery.wait(5)
        try:
            _ingest_n(svc, "t0", 6)
            assert svc.pool.drain(10)
            time.sleep(0.3)
            _code, status = svc.status()
            dur = status["durability"]
            assert dur["durability"] == "fsync"
            assert dur["recovery"]["done"] is True
            assert "t0" in dur["tenants"]
            assert dur["tenants"]["t0"]["wal"]["n_appends"] == 6
            text = svc.telemetry.metrics.to_prometheus()
            assert "repro_wal_appends_total" in text
            assert "repro_checkpoint_age_seconds" in text
            assert "repro_recovery_duration_seconds" in text
        finally:
            svc.stop()

    def test_wal_error_fails_request_not_silent(self, tmp_path):
        svc = PCAService(_cfg(tmp_path))
        svc.add_tenant(_spec())
        svc.start()
        svc.durability.recovery.wait(5)
        try:
            def boom(tenant, block):
                raise OSError("disk full")

            svc.durability.append = boom
            code, payload = svc.ingest("t0", np.zeros((2, 8)))
            assert code == 503
            assert payload["reason"] == "wal_error"
            st = svc.tenant("t0")
            assert st.rows_accepted == 0
        finally:
            svc.stop()

    def test_no_data_dir_means_no_plane(self, tmp_path):
        svc = PCAService(ServingConfig(n_lanes=1, elastic=False))
        svc.add_tenant(_spec())
        svc.start()
        try:
            code, payload = svc.ingest("t0", np.zeros((2, 8)))
            assert code == 202
            assert "wal_seq" not in payload
            assert svc.status()[1]["durability"] is None
        finally:
            svc.stop()


# ---------------------------------------------------------------------------
# the acceptance test: subprocess SIGKILL + restart, fsync, zero loss


class TestCrashRestartAcceptance:
    def test_sigkill_restart_zero_acked_loss(self, tmp_path):
        from repro.serving.crashtest import run_crash_restart

        report = run_crash_restart(
            data_dir=str(tmp_path / "crash"),
            durability="fsync",
            seed=4242,
            pre_kill_blocks=30,
            post_kill_blocks=6,
            out_dir=str(tmp_path / "out"),
        )
        assert report["ok"]
        for t, entry in report["tenants"].items():
            assert entry["recovered_rows"] >= entry["acked_rows"], t
            assert entry["recovered_version"] >= entry["pre_kill_version"]
            assert entry["affinity"] >= 0.98
        assert (tmp_path / "out" / "crash_report.json").is_file()
        assert (tmp_path / "out" / "crash-events.jsonl").is_file()
