"""Tests for the telemetry layer: metrics registry, tracing, sampling,
exporters, the report CLI, and the engine/simulator integrations."""

import threading

import numpy as np
import pytest

from repro.cluster import (
    PAPER_TESTBED,
    PCACostModel,
    Placement,
    SimConfig,
    simulate_streaming_pca,
)
from repro.data import VectorStream
from repro.streams import (
    CollectingSink,
    FaultInjector,
    Functor,
    FusionPlan,
    Graph,
    Retry,
    Split,
    Supervisor,
    SynchronousEngine,
    Telemetry,
    TelemetryConfig,
    ThreadedEngine,
    Union,
    VectorSource,
    load_events,
    render_report,
)
from repro.streams.telemetry import (
    EventLog,
    Histogram,
    MetricsRegistry,
)
from repro.streams.tuples import StreamTuple


def pipeline_graph(x, n_ways=2):
    """src -> split -> union -> sink, the standard fan-out pipeline."""
    g = Graph("telemetry-test")
    src = g.add(VectorSource("src", VectorStream.from_array(x)))
    split = g.add(Split("split", n_ways, strategy="round_robin"))
    uni = g.add(Union("union", n_ways))
    sink = g.add(CollectingSink("sink"))
    g.connect(src, split)
    for i in range(n_ways):
        g.connect(split, uni, out_port=i, in_port=i)
    g.connect(uni, sink)
    return g, sink


def spans_of(events):
    return [e for e in events if e.get("kind") == "span"]


def traces_of(events):
    """Group span events by trace_id."""
    traces = {}
    for s in spans_of(events):
        traces.setdefault(s["trace_id"], []).append(s)
    return traces


# ---------------------------------------------------------------------------
# Registry primitives
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_get_or_create_by_labels(self):
        reg = MetricsRegistry()
        c1 = reg.counter("repro_x_total", operator="a")
        c2 = reg.counter("repro_x_total", operator="a")
        c3 = reg.counter("repro_x_total", operator="b")
        assert c1 is c2 and c1 is not c3
        c1.inc()
        c1.inc(2)
        assert c1.read() == 3
        assert reg.value("repro_x_total", operator="a") == 3
        assert reg.value("repro_x_total", operator="b") == 0

    def test_gauge_set_and_callback(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_depth", pe="0")
        g.set(7)
        assert reg.value("repro_depth", pe="0") == 7.0
        live = reg.gauge("repro_live", fn=lambda: 42.0)
        assert live.read() == 42.0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_m", operator="a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("repro_m", operator="a")

    def test_collector_values_appear_in_collect(self):
        reg = MetricsRegistry()
        state = {"n": 0}
        reg.register_collector(
            lambda: [("repro_ext_total", "counter", {"operator": "op"},
                      state["n"])]
        )
        state["n"] = 5
        assert reg.value("repro_ext_total", operator="op") == 5.0

    def test_histogram_percentiles_bracket_observations(self):
        h = Histogram("repro_lat", {}, buckets=(0.001, 0.01, 0.1, 1.0))
        for _ in range(90):
            h.observe(0.005)       # second bucket
        for _ in range(10):
            h.observe(0.5)         # fourth bucket
        s = h.summary()
        assert s["count"] == 100
        assert 0.001 <= s["p50"] <= 0.01
        assert 0.1 <= s["p99"] <= 1.0
        assert s["mean"] == pytest.approx((90 * 0.005 + 10 * 0.5) / 100)
        assert h.percentile(0.0) >= 0.0
        assert h.percentile(1.0) <= 1.0

    def test_histogram_empty_summary(self):
        h = Histogram("repro_lat", {})
        assert h.summary()["p95"] == 0.0
        with pytest.raises(ValueError, match="q must be"):
            h.percentile(1.5)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", {}, buckets=(1.0, 0.5))

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_t_total", operator="a b", pe="0").inc(2)
        reg.gauge("repro_g").set(1.5)
        h = reg.histogram("repro_h", buckets=(0.1, 1.0), operator="a")
        h.observe(0.05)
        h.observe(0.5)
        text = reg.to_prometheus()
        assert "# TYPE repro_t_total counter" in text
        assert 'repro_t_total{operator="a b",pe="0"} 2' in text
        assert "# TYPE repro_g gauge" in text
        assert "repro_g 1.5" in text
        # Histogram: cumulative buckets, +Inf, sum and count series.
        assert 'repro_h_bucket{le="0.1",operator="a"} 1' in text
        assert 'repro_h_bucket{le="1.0",operator="a"} 2' in text
        assert 'repro_h_bucket{le="+Inf",operator="a"} 2' in text
        assert 'repro_h_count{operator="a"} 2' in text

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.counter("repro_t_total", operator='we"ird\\op').inc()
        text = reg.to_prometheus()
        assert 'operator="we\\"ird\\\\op"' in text

    def test_counters_are_thread_safe_via_registry(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.counter("repro_shared_total", operator="x")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Get-or-create under contention never created duplicates.
        assert len(reg.collect()) == 1


class TestEventLog:
    def test_bounded_with_drop_counter(self):
        log = EventLog(max_events=3)
        for i in range(5):
            log.append({"ts": float(i), "kind": "span"})
        assert len(log) == 3
        assert log.n_dropped == 2
        assert [e["ts"] for e in log.events()] == [0.0, 1.0, 2.0]

    def test_validation(self):
        with pytest.raises(ValueError, match="max_events"):
            EventLog(max_events=0)


class TestTelemetryConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="trace_sample_every"):
            TelemetryConfig(trace_sample_every=0)
        with pytest.raises(ValueError, match="sampler_interval_s"):
            TelemetryConfig(sampler_interval_s=0.0)


# ---------------------------------------------------------------------------
# Engine integration: acceptance criteria
# ---------------------------------------------------------------------------


class TestThreadedEngineTelemetry:
    """The PR's acceptance run: threaded engine, full telemetry."""

    def _run(self, tmp_path, n=60):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((n, 8))
        g, sink = pipeline_graph(x)
        tel = Telemetry(TelemetryConfig(
            timing=True, tracing=True, trace_sample_every=10,
            sampler_interval_s=0.005,
        ))
        eng = ThreadedEngine(
            g, fusion=FusionPlan.fuse_chains(g), telemetry=tel
        )
        stats = eng.run(timeout_s=60)
        assert len(sink.tuples) == n
        path = tmp_path / "events.jsonl"
        tel.write_jsonl(path)
        return tel, stats, path

    def test_prometheus_export_has_counter_and_histogram_series(
        self, tmp_path
    ):
        tel, stats, _ = self._run(tmp_path)
        text = tel.to_prometheus()
        # Per-operator counters with PE labels.
        for op in ("src", "split", "union", "sink"):
            assert f'repro_tuples_in_total{{operator="{op}"' in text
        assert 'pe="' in text
        # Per-operator latency histograms (timing tier).
        assert "# TYPE repro_dispatch_seconds histogram" in text
        assert 'repro_dispatch_seconds_bucket{le="+Inf",operator="sink"}' in text
        assert 'repro_dispatch_seconds_count{operator="union"}' in text
        # Split per-target counters.
        assert 'repro_split_sent_total{operator="split",' in text
        # Counters agree with RunStats (one source of truth).
        want = float(stats.tuples_in["sink"])
        assert tel.metrics.value("repro_tuples_in_total", operator="sink",
                                 pe=tel_pe_of(tel, "sink")) == want

    def test_jsonl_has_complete_trace_across_queue_hop(self, tmp_path):
        _, _, path = self._run(tmp_path)
        events = load_events(path)
        kinds = {e["kind"] for e in events}
        assert {"run_start", "span", "sample", "run_end",
                "metrics"} <= kinds
        traces = traces_of(events)
        assert len(traces) >= 2
        complete = 0
        for spans in traces.values():
            roots = [s for s in spans if s["span_kind"] == "root"]
            queues = [s for s in spans if s["span_kind"] == "queue"]
            dispatches = [s for s in spans if s["span_kind"] == "dispatch"]
            if not (roots and queues and dispatches):
                continue
            complete += 1
            # Every non-root span's parent exists within the trace.
            ids = {s["span_id"] for s in spans}
            for s in spans:
                if s["span_kind"] != "root":
                    assert s["parent_id"] in ids
            # A queue span parents the dispatch on the far side.
            q_ids = {s["span_id"] for s in queues}
            assert any(d["parent_id"] in q_ids for d in dispatches)
        assert complete >= 1

    def test_cli_renders_report(self, tmp_path, capsys):
        from repro.__main__ import main

        _, _, path = self._run(tmp_path)
        assert main(["telemetry", str(path)]) == 0
        out = capsys.readouterr().out
        assert "top operators by exclusive time" in out
        assert "hottest queues" in out
        assert "slowest traces" in out
        assert "split" in out

    def test_cli_rejects_missing_file(self, tmp_path, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["telemetry", str(tmp_path / "nope.jsonl")])

    def test_sampler_records_queue_depths(self, tmp_path):
        tel, _, path = self._run(tmp_path, n=200)
        events = load_events(path)
        pe_samples = [e for e in events
                      if e["kind"] == "sample" and e.get("pe")]
        global_samples = [e for e in events
                         if e["kind"] == "sample" and e.get("pe") is None]
        assert pe_samples and global_samples
        assert all(e["depth"] >= 0 and e["capacity"] > 0
                   for e in pe_samples)
        assert all("throughput_tps" in e for e in global_samples)
        assert tel.metrics.value("repro_inflight_tuples") is not None


def tel_pe_of(tel, op_name):
    """Find the PE label attached to an operator's exported counters."""
    for sample in tel.metrics.collect():
        labels = getattr(sample, "labels", None)
        if (labels and labels.get("operator") == op_name
                and "pe" in labels):
            return labels["pe"]
    raise AssertionError(f"no pe label exported for {op_name}")


# ---------------------------------------------------------------------------
# Trace propagation (satellite: fused chains + thread boundaries)
# ---------------------------------------------------------------------------


class TestTracePropagation:
    def test_fused_chain_parent_child_ids_line_up(self):
        """Functors re-emit *new* tuples: the context must follow via the
        thread-local current span, and each child's parent must be the
        previous hop's span."""
        x = np.arange(12, dtype=float).reshape(12, 1)
        g = Graph("chain")
        src = g.add(VectorSource("src", VectorStream.from_array(x)))
        f1 = g.add(Functor("f1", lambda t: StreamTuple.data(x=t["x"])))
        f2 = g.add(Functor("f2", lambda t: StreamTuple.data(x=t["x"])))
        sink = g.add(CollectingSink("sink"))
        g.connect(src, f1)
        g.connect(f1, f2)
        g.connect(f2, sink)
        tel = Telemetry(TelemetryConfig(tracing=True, trace_sample_every=4))
        SynchronousEngine(g, telemetry=tel).run()

        traces = traces_of(tel.events.events())
        assert len(traces) == 3  # tuples 0, 4, 8
        for spans in traces.values():
            by_name = {s["name"]: s for s in spans}
            assert set(by_name) == {"src", "f1", "f2", "sink"}
            root = by_name["src"]
            assert root["span_kind"] == "root"
            assert root["parent_id"] is None
            assert by_name["f1"]["parent_id"] == root["span_id"]
            assert by_name["f2"]["parent_id"] == by_name["f1"]["span_id"]
            assert by_name["sink"]["parent_id"] == by_name["f2"]["span_id"]
            # The dispatch spans nest in time inside the root.
            for name in ("f1", "f2", "sink"):
                assert root["t_start"] <= by_name[name]["t_start"]
                assert by_name[name]["t_end"] <= root["t_end"]

    def test_threaded_queue_hop_links_threads(self):
        """Across a ThreadedEngine queue hop the dispatch runs in another
        thread; the chain root -> queue -> dispatch must stay linked."""
        x = np.arange(30, dtype=float).reshape(30, 1)
        g = Graph("hop")
        src = g.add(VectorSource("src", VectorStream.from_array(x)))
        sink = g.add(CollectingSink("sink"))
        g.connect(src, sink)
        tel = Telemetry(TelemetryConfig(tracing=True, trace_sample_every=5))
        ThreadedEngine(g, telemetry=tel).run(timeout_s=30)

        traces = traces_of(tel.events.events())
        assert len(traces) == 6
        for spans in traces.values():
            kinds = {s["span_kind"] for s in spans}
            assert {"root", "queue", "dispatch"} <= kinds
            root = next(s for s in spans if s["span_kind"] == "root")
            queue = next(s for s in spans if s["span_kind"] == "queue")
            disp = next(s for s in spans if s["span_kind"] == "dispatch")
            assert queue["parent_id"] == root["span_id"]
            assert disp["parent_id"] == queue["span_id"]
            assert disp["name"] == "sink"

    def test_no_state_leaks_between_runs(self):
        """run_finished resets the tracer: live contexts and thread-local
        current spans must not survive into a second run."""
        tel = Telemetry(TelemetryConfig(tracing=True, trace_sample_every=1))
        for _ in range(2):
            x = np.arange(10, dtype=float).reshape(10, 1)
            g, sink = pipeline_graph(x)
            ThreadedEngine(
                g, fusion=FusionPlan.fuse_chains(g), telemetry=tel
            ).run(timeout_s=30)
            assert len(sink.tuples) == 10
            assert tel.tracer._live == {}
            assert tel.tracer._enqueued == {}
            assert tel.tracer.current_ctx() is None
        # Both runs traced every tuple, and every span closed (t_end set).
        spans = spans_of(tel.events.events())
        assert tel.tracer.n_traces == 20
        assert all(s["t_end"] >= s["t_start"] for s in spans)

    def test_sampling_rate_honoured(self):
        x = np.arange(40, dtype=float).reshape(40, 1)
        g, _ = pipeline_graph(x)
        tel = Telemetry(TelemetryConfig(tracing=True, trace_sample_every=8))
        SynchronousEngine(g, telemetry=tel).run()
        assert tel.tracer.n_traces == 5  # tuples 0, 8, 16, 24, 32

    def test_metrics_only_mode_traces_nothing(self):
        x = np.arange(20, dtype=float).reshape(20, 1)
        g, _ = pipeline_graph(x)
        tel = Telemetry()  # defaults: metrics only
        SynchronousEngine(g, telemetry=tel).run()
        assert spans_of(tel.events.events()) == []
        assert tel.metrics.value(
            "repro_tuples_in_total", operator="sink"
        ) == 20.0


# ---------------------------------------------------------------------------
# Supervision events
# ---------------------------------------------------------------------------


class TestSupervisionTelemetry:
    def test_failure_and_retry_events_and_counters(self):
        x = np.arange(20, dtype=float).reshape(20, 1)
        g, sink = pipeline_graph(x)
        FaultInjector().crash("union", at_tuple=5).install(g)
        tel = Telemetry()
        sup = Supervisor(policies={"union": Retry(max_attempts=2,
                                                  backoff_s=0.0)})
        SynchronousEngine(g, supervisor=sup, telemetry=tel).run()
        assert len(sink.tuples) == 20  # retry repaired the crash

        sup_events = [e for e in tel.events.events()
                      if e["kind"] == "supervision"]
        assert [e["event"] for e in sup_events] == ["failure", "retry"]
        assert all(e["op"] == "union" for e in sup_events)
        assert "error" in sup_events[0]
        assert tel.metrics.value(
            "repro_failures_total", operator="union") == 1.0
        assert tel.metrics.value(
            "repro_retries_total", operator="union") == 1.0
        recovery = tel.metrics.value(
            "repro_recovery_seconds_total", operator="union")
        assert recovery is not None and recovery >= 0.0

    def test_supervision_report_shows_recovery_only_operators(self):
        """A retry that succeeds on attempt 1 can record recovery time
        without a failure count; the report must still show the row."""
        from repro.streams.engine import RunStats
        from repro.streams.profiling import supervision_report

        stats = RunStats()
        stats.recovery_time_s = {"pca-1": 0.0123}
        report = supervision_report(stats)
        assert "pca-1" in report
        assert "0.0123" in report


# ---------------------------------------------------------------------------
# Sync controller + simulator telemetry
# ---------------------------------------------------------------------------


class TestSyncTelemetry:
    def test_controller_emits_merge_events_with_bytes(self):
        from repro.core.eigensystem import Eigensystem
        from repro.parallel.sync import SyncController

        ctrl = SyncController("sync", 2, strategy="ring")
        sent = []
        ctrl.bind(lambda tup, port: sent.append((tup, port)))
        tel = Telemetry()
        ctrl.bind_telemetry(tel)

        basis, _ = np.linalg.qr(np.random.default_rng(0)
                                .standard_normal((6, 2)))
        state = Eigensystem(
            mean=np.zeros(6), basis=basis,
            eigenvalues=np.array([2.0, 1.0]), n_seen=10,
        )
        ctrl._dispatch(
            StreamTuple.control(type="state", engine=0, state=state), 0
        )
        syncs = [e for e in tel.events.events() if e["kind"] == "sync"]
        assert len(syncs) == 1
        evt = syncs[0]
        assert evt["sender"] == "engine-0" and evt["target"] == "engine-1"
        expected_bytes = 128 + state.mean.nbytes + state.basis.nbytes \
            + state.eigenvalues.nbytes
        assert evt["bytes"] == expected_bytes
        assert tel.metrics.value(
            "repro_sync_merges_total", operator="sync") == 1.0
        assert tel.metrics.value(
            "repro_sync_bytes_total", operator="sync") == expected_bytes
        assert sent and sent[0][1] == 1  # merge command went to engine 1

    def test_simulator_emits_same_schema(self, tmp_path):
        tel = Telemetry(TelemetryConfig(sampler_interval_s=0.05))
        cfg = SimConfig(
            spec=PAPER_TESTBED,
            placement=Placement.distributed_even(2, 10),
            cost=PCACostModel.paper_scale(),
            warmup_s=0.2,
            window_s=0.5,
            sync_window=200,
        )
        report = simulate_streaming_pca(cfg, telemetry=tel)
        assert report.tuples_processed > 0

        events = tel.events.events()
        kinds = {e["kind"] for e in events}
        assert {"run_start", "sample", "run_end"} <= kinds
        if report.n_syncs:
            syncs = [e for e in events if e["kind"] == "sync"]
            assert len(syncs) == report.n_syncs
            assert all(e["bytes"] > 0 for e in syncs)
        # Same metric names as the real engines; the per-engine counters
        # sum to the report's processed-tuple total.
        per_engine = [
            tel.metrics.value("repro_tuples_in_total",
                              operator=f"engine-{i}")
            for i in range(2)
        ]
        assert all(v is not None and v > 0 for v in per_engine)
        assert sum(per_engine) == report.tuples_processed
        depth = tel.metrics.value("repro_queue_depth", pe="chan-0")
        assert depth is not None and depth >= 0
        # The same report tooling renders a simulated log.
        path = tmp_path / "sim.jsonl"
        tel.write_jsonl(path)
        text = render_report(load_events(path))
        assert "hottest queues" in text
        assert "chan-0" in text


# ---------------------------------------------------------------------------
# Exporters round-trip
# ---------------------------------------------------------------------------


class TestExporters:
    def test_write_jsonl_roundtrip_and_metrics_snapshot(self, tmp_path):
        x = np.arange(25, dtype=float).reshape(25, 1)
        g, _ = pipeline_graph(x)
        tel = Telemetry(TelemetryConfig(timing=True))
        SynchronousEngine(g, telemetry=tel).run()
        path = tmp_path / "run.jsonl"
        n = tel.write_jsonl(path)
        events = load_events(path)
        assert len(events) == n
        # Every line parsed back as JSON; ts is numeric everywhere.
        assert all(isinstance(e["ts"], (int, float)) for e in events)
        snap = [e for e in events if e["kind"] == "metrics"]
        assert len(snap) == 1
        names = {m["name"] for m in snap[0]["metrics"]}
        assert "repro_tuples_in_total" in names
        assert "repro_dispatch_seconds" in names
        hist = next(m for m in snap[0]["metrics"]
                    if m["name"] == "repro_dispatch_seconds"
                    and m["labels"]["operator"] == "sink")
        assert hist["count"] == 26  # 25 data dispatches + 1 punctuation
        assert hist["p50"] >= 0.0

    def test_render_report_on_in_memory_telemetry(self):
        x = np.arange(25, dtype=float).reshape(25, 1)
        g, _ = pipeline_graph(x)
        tel = Telemetry(TelemetryConfig(timing=True, tracing=True,
                                        trace_sample_every=5))
        SynchronousEngine(g, telemetry=tel).run()
        text = tel.render_report()
        assert "top operators by exclusive time" in text
        assert "slowest traces" in text
