"""Tests for sync strategies and the SyncController."""

import numpy as np
import pytest

from repro.core import BatchPCA, Eigensystem
from repro.parallel.sync import (
    BroadcastStrategy,
    GroupStrategy,
    PeerToPeerStrategy,
    RingStrategy,
    SyncController,
    make_strategy,
)
from repro.streams.tuples import StreamTuple


class TestStrategies:
    def test_ring(self):
        s = RingStrategy()
        assert s.targets(0, 4) == [1]
        assert s.targets(3, 4) == [0]
        assert s.targets(0, 1) == []

    def test_broadcast(self):
        s = BroadcastStrategy()
        assert s.targets(1, 4) == [0, 2, 3]
        assert s.targets(0, 1) == []

    def test_group(self):
        s = GroupStrategy(2)
        # Groups {0,1}, {2,3}: ring inside each.
        assert s.targets(0, 4) == [1]
        assert s.targets(1, 4) == [0]
        assert s.targets(2, 4) == [3]
        assert s.targets(3, 4) == [2]

    def test_group_tail_singleton_falls_back(self):
        s = GroupStrategy(2)
        # 5 engines: group {4} alone -> global ring fallback.
        assert s.targets(4, 5) == [0]

    def test_group_validation(self):
        with pytest.raises(ValueError):
            GroupStrategy(1)

    def test_p2p_never_self(self):
        s = PeerToPeerStrategy(seed=0)
        for _ in range(200):
            t = s.targets(2, 5)
            assert len(t) == 1
            assert t[0] != 2
            assert 0 <= t[0] < 5

    def test_make_strategy(self):
        assert isinstance(make_strategy("ring"), RingStrategy)
        assert isinstance(make_strategy("broadcast"), BroadcastStrategy)
        assert isinstance(make_strategy("group", group_size=3), GroupStrategy)
        assert isinstance(make_strategy("p2p"), PeerToPeerStrategy)
        with pytest.raises(ValueError, match="unknown sync strategy"):
            make_strategy("gossip")


def _dummy_state(rng, n=500) -> Eigensystem:
    x = rng.standard_normal((n, 10))
    st = BatchPCA(2).fit(x).to_eigensystem()
    st.sum_count = st.sum_weight = float(n)
    return st


class TestSyncController:
    def _controller(self, n=3, **kwargs):
        ctl = SyncController("ctl", n, **kwargs)
        out = []
        ctl.bind(lambda tup, port: out.append((tup, port)))
        return ctl, out

    def test_ready_grants_share(self):
        ctl, out = self._controller()
        ctl._dispatch(StreamTuple.control(type="ready", engine=1), 1)
        assert len(out) == 1
        tup, port = out[0]
        assert port == 1
        assert tup["type"] == "share"
        assert ctl.stats.n_ready == 1

    def test_state_routed_to_ring_successor(self, rng):
        ctl, out = self._controller()
        state = _dummy_state(rng)
        ctl._dispatch(StreamTuple.control(type="state", engine=1,
                                          state=state), 1)
        assert len(out) == 1
        tup, port = out[0]
        assert port == 2
        assert tup["type"] == "merge"
        assert tup["sender"] == 1
        assert tup["state"] is state
        assert ctl.stats.n_merge_commands == 1
        assert ctl.stats.per_engine_syncs == {2: 1}

    def test_broadcast_routes_to_all_others(self, rng):
        ctl, out = self._controller(strategy="broadcast")
        ctl._dispatch(
            StreamTuple.control(type="state", engine=0,
                                state=_dummy_state(rng)), 0
        )
        assert sorted(port for _, port in out) == [1, 2]

    def test_throttle_min_interval(self):
        ctl, out = self._controller(min_interval=5)
        for _ in range(4):
            ctl._dispatch(StreamTuple.control(type="ready", engine=0), 0)
        # Only the first within the interval is granted.
        grants = [t for t, _ in out if t["type"] == "share"]
        assert len(grants) == 1
        assert ctl.stats.n_throttled == 3
        # After enough other messages, a new grant goes through.
        for _ in range(5):
            ctl._dispatch(StreamTuple.control(type="ready", engine=1), 1)
        ctl._dispatch(StreamTuple.control(type="ready", engine=0), 0)
        grants = [t for t, _ in out if t["type"] == "share"]
        assert len(grants) >= 3

    def test_final_states_and_global_state(self, rng):
        ctl, _ = self._controller(n=2)
        s0, s1 = _dummy_state(rng), _dummy_state(rng)
        ctl._dispatch(StreamTuple.control(type="final", engine=0, state=s0), 0)
        ctl._dispatch(StreamTuple.control(type="final", engine=1, state=s1), 1)
        merged = ctl.global_state(2)
        assert merged.n_components == 2
        assert merged.sum_count == pytest.approx(1000)

    def test_global_state_before_completion_raises(self):
        ctl, _ = self._controller()
        with pytest.raises(RuntimeError, match="no final states"):
            ctl.global_state(2)

    def test_rejects_data_tuples(self):
        ctl, _ = self._controller()
        with pytest.raises(ValueError, match="non-control"):
            ctl._dispatch(StreamTuple.data(x=np.zeros(2), seq=0), 0)

    def test_rejects_unknown_type(self):
        ctl, _ = self._controller()
        with pytest.raises(ValueError, match="unknown control"):
            ctl._dispatch(StreamTuple.control(type="hello"), 0)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_engines"):
            SyncController("c", 0)
        with pytest.raises(ValueError, match="min_interval"):
            SyncController("c", 2, min_interval=-1)


class TestConsistencyCheck:
    def test_vacuous_with_fewer_than_two_states(self, rng):
        ctl = SyncController("c", 3)
        ctl.bind(lambda t, p: None)
        assert ctl.check_consistency()
        ctl._dispatch(
            StreamTuple.control(type="state", engine=0,
                                state=_dummy_state(rng)), 0
        )
        assert ctl.check_consistency()

    def test_detects_wandering_engine(self, rng):
        ctl = SyncController("c", 2)
        ctl.bind(lambda t, p: None)
        good = _dummy_state(rng)
        bad = good.copy()
        bad.scale = good.scale * 50  # exploded residual scale
        ctl._dispatch(
            StreamTuple.control(type="state", engine=0, state=good), 0
        )
        ctl._dispatch(
            StreamTuple.control(type="state", engine=1, state=bad), 1
        )
        assert not ctl.check_consistency()

    def test_consistent_after_parallel_run(self):
        from repro.core import BatchPCA  # noqa: F401  (doc import)
        from repro.data import PlantedSubspaceModel, VectorStream
        from repro.parallel import ParallelStreamingPCA

        model = PlantedSubspaceModel(dim=30, seed=9)
        x = model.sample(5000, np.random.default_rng(4))
        runner = ParallelStreamingPCA(3, n_engines=3, alpha=0.995)
        app = runner.build(VectorStream.from_array(x))
        from repro.streams import SynchronousEngine

        SynchronousEngine(app.graph).run()
        assert app.controller.check_consistency()


class TestMembership:
    """Peer liveness tracking: eviction, rejoin, reseed, quorum."""

    def _controller(self, n=3, **kwargs):
        kwargs.setdefault("stale_after", 3)
        ctl = SyncController("ctl", n, **kwargs)
        out = []
        ctl.bind(lambda tup, port: out.append((tup, port)))
        return ctl, out

    def _hb(self, ctl, engine, times=1):
        for _ in range(times):
            ctl._dispatch(
                StreamTuple.control(type="heartbeat", engine=engine),
                engine,
            )

    def test_peers_tracked_on_first_message(self):
        ctl, _ = self._controller()
        assert ctl.membership() == {}
        self._hb(ctl, 0)
        assert ctl.live_peers() == [0]
        assert ctl.membership()[0]["n_messages"] == 1
        assert ctl.stats.n_heartbeats == 1

    def test_untracked_peer_is_never_evicted(self):
        # Engine 2 has not spoken yet (warm-up); silence is not death.
        ctl, _ = self._controller()
        self._hb(ctl, 0, times=20)
        assert ctl.stats.n_evictions == 0
        assert ctl.live_peers() == [0]

    def test_eviction_after_stale_window(self):
        ctl, _ = self._controller()
        self._hb(ctl, 1)
        self._hb(ctl, 0, times=4)  # > stale_after=3 messages of silence
        assert ctl.stats.n_evictions == 1
        assert ctl.live_peers() == [0]
        assert not ctl.membership()[1]["alive"]

    def test_rejoin_counts_and_revives(self, rng):
        ctl, _ = self._controller()
        self._hb(ctl, 1)
        self._hb(ctl, 0, times=4)
        assert ctl.live_peers() == [0]
        self._hb(ctl, 1)  # back from the dead
        assert ctl.live_peers() == [0, 1]
        assert ctl.stats.n_rejoins == 1
        assert ctl.membership()[1]["n_rejoins"] == 1

    def test_rejoin_reseeds_from_known_states(self, rng):
        ctl, out = self._controller()
        state = _dummy_state(rng)
        ctl._dispatch(
            StreamTuple.control(type="state", engine=0, state=state), 0
        )
        self._hb(ctl, 1)
        self._hb(ctl, 0, times=4)  # evict 1
        out.clear()
        self._hb(ctl, 1)  # rejoin
        reseeds = [
            (t, p) for t, p in out
            if t["type"] == "merge" and t.get("reseed")
        ]
        assert len(reseeds) == 1
        tup, port = reseeds[0]
        assert port == 1
        assert tup["sender"] == -1
        assert tup["state"].n_components == state.n_components
        assert ctl.stats.n_reseeds == 1

    def test_rejoin_without_states_skips_reseed(self):
        ctl, out = self._controller()
        self._hb(ctl, 1)
        self._hb(ctl, 0, times=4)
        out.clear()
        self._hb(ctl, 1)
        assert ctl.stats.n_rejoins == 1
        assert ctl.stats.n_reseeds == 0
        assert out == []

    def test_finished_peer_is_not_evicted(self, rng):
        ctl, _ = self._controller()
        ctl._dispatch(
            StreamTuple.control(
                type="final", engine=1, state=_dummy_state(rng)
            ),
            1,
        )
        self._hb(ctl, 0, times=10)
        assert ctl.stats.n_evictions == 0
        assert ctl.live_peers() == [0, 1]

    def test_ring_heals_around_evicted_peer(self, rng):
        ctl, out = self._controller()
        self._hb(ctl, 1)
        self._hb(ctl, 0, times=4)  # evict 1 (ring successor of 0)
        out.clear()
        ctl._dispatch(
            StreamTuple.control(
                type="state", engine=0, state=_dummy_state(rng)
            ),
            0,
        )
        merges = [(t, p) for t, p in out if t["type"] == "merge"]
        assert [p for _, p in merges] == [2]  # rerouted past engine 1
        assert ctl.stats.n_rerouted == 1

    def test_no_membership_means_raw_strategy(self, rng):
        ctl = SyncController("ctl", 3)  # stale_after=None
        out = []
        ctl.bind(lambda tup, port: out.append((tup, port)))
        ctl._dispatch(
            StreamTuple.control(
                type="state", engine=0, state=_dummy_state(rng)
            ),
            0,
        )
        assert [p for _, p in out] == [1]
        assert ctl.stats.n_rerouted == 0

    def test_quorum_blocks_short_merge(self, rng):
        from repro.parallel.sync import QuorumError

        ctl, _ = self._controller(n=3, quorum=2)
        ctl._dispatch(
            StreamTuple.control(
                type="final", engine=0, state=_dummy_state(rng)
            ),
            0,
        )
        with pytest.raises(QuorumError, match="quorum"):
            ctl.global_state(2)

    def test_quorum_met_with_stale_contribution(self, rng):
        from repro.parallel.sync import QuorumError

        ctl, _ = self._controller(n=3, quorum=2)
        ctl._dispatch(
            StreamTuple.control(
                type="final", engine=0, state=_dummy_state(rng)
            ),
            0,
        )
        # Engine 1 never sent a final, but it shared a state earlier.
        ctl._dispatch(
            StreamTuple.control(
                type="state", engine=1, state=_dummy_state(rng)
            ),
            1,
        )
        merged = ctl.global_state(2)
        assert merged.n_components == 2
        with pytest.raises(QuorumError):
            ctl.global_state(2, include_stale=False)

    def test_validation(self):
        with pytest.raises(ValueError, match="stale_after"):
            SyncController("c", 2, stale_after=0)
        with pytest.raises(ValueError, match="quorum"):
            SyncController("c", 2, quorum=3)
        with pytest.raises(ValueError, match="quorum"):
            SyncController("c", 2, quorum=0)
