"""Tests for the convergence/comparison metrics."""

import numpy as np
import pytest

from repro.core import Eigensystem
from repro.core.incremental import UpdateResult
from repro.core.metrics import (
    ConvergenceReport,
    TraceRecorder,
    align_signs,
    explained_variance_ratio,
    largest_principal_angle,
    principal_angles,
    roughness,
    subspace_distance,
)


class TestPrincipalAngles:
    def test_identical_subspaces(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((20, 4)))
        assert np.allclose(principal_angles(q, q), 0.0, atol=1e-7)
        # Invariant under basis rotation.
        rot, _ = np.linalg.qr(rng.standard_normal((4, 4)))
        assert largest_principal_angle(q, q @ rot) < 1e-7

    def test_orthogonal_subspaces(self):
        a = np.eye(6)[:, :2]
        b = np.eye(6)[:, 2:4]
        angles = principal_angles(a, b)
        assert np.allclose(angles, np.pi / 2)

    def test_known_angle(self):
        a = np.array([[1.0], [0.0]])
        theta = 0.3
        b = np.array([[np.cos(theta)], [np.sin(theta)]])
        assert largest_principal_angle(a, b) == pytest.approx(theta)

    def test_different_ranks(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((20, 5)))
        angles = principal_angles(q[:, :2], q)  # contained subspace
        assert angles.size == 2
        assert np.allclose(angles, 0.0, atol=1e-7)

    def test_empty_basis(self):
        assert principal_angles(np.zeros((5, 0)), np.eye(5)).size == 0
        assert largest_principal_angle(np.zeros((5, 0)), np.eye(5)) == 0.0

    def test_subspace_distance_is_sin(self):
        a = np.array([[1.0], [0.0]])
        b = np.array([[np.cos(0.3)], [np.sin(0.3)]])
        assert subspace_distance(a, b) == pytest.approx(np.sin(0.3))

    def test_non_2d_raises(self):
        with pytest.raises(ValueError, match="2-D"):
            principal_angles(np.zeros(5), np.eye(5))


class TestAlignSigns:
    def test_flips_to_match(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((10, 3)))
        flipped = q * np.array([1, -1, -1])
        aligned = align_signs(flipped, q)
        assert np.allclose(aligned, q)

    def test_does_not_modify_input(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((10, 2)))
        flipped = -q
        _ = align_signs(flipped, q)
        assert np.allclose(flipped, -q)


class TestRoughness:
    def test_smooth_beats_noisy(self, rng):
        t = np.linspace(0, 2 * np.pi, 200)
        smooth = np.sin(t)
        noisy = np.sin(t) + 0.3 * rng.standard_normal(200)
        assert roughness(smooth) < roughness(noisy) / 10

    def test_scale_invariant(self, rng):
        x = rng.standard_normal(100)
        assert roughness(x) == pytest.approx(roughness(5 * x))

    def test_linear_is_perfectly_smooth(self):
        assert roughness(np.linspace(1, 2, 50)) == pytest.approx(0.0, abs=1e-25)

    def test_validation(self):
        with pytest.raises(ValueError):
            roughness(np.zeros(2))


class TestExplainedVarianceRatio:
    def test_basic(self):
        out = explained_variance_ratio(np.array([6.0, 3.0, 1.0]), 20.0)
        assert np.allclose(out, [0.3, 0.15, 0.05])

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            explained_variance_ratio(np.ones(2), 0.0)


class TestTraceRecorder:
    def _state(self, lam):
        k = len(lam)
        return Eigensystem(
            mean=np.zeros(4),
            basis=np.eye(4)[:, :k],
            eigenvalues=np.array(lam, dtype=float),
            scale=1.0,
        )

    def test_records_and_thins(self):
        rec = TraceRecorder(every=2)
        for i in range(10):
            res = UpdateResult(weight=1.0, scaled_residual=0.5,
                               residual_norm2=2.0)
            rec.record(self._state([3.0, 1.0]), res)
        assert len(rec.weights) == 10
        assert len(rec.eigenvalues) == 5  # thinned by every=2

    def test_warmup_none_skipped(self):
        rec = TraceRecorder()
        rec.record(self._state([1.0]), None)
        assert rec.weights == []

    def test_outlier_steps(self):
        rec = TraceRecorder()
        for i in range(5):
            res = UpdateResult(
                weight=0.0 if i == 2 else 1.0,
                scaled_residual=100.0 if i == 2 else 0.5,
                residual_norm2=1.0,
                is_outlier=(i == 2),
            )
            rec.record(self._state([1.0]), res)
        assert list(rec.outlier_steps) == [3]  # 1-based

    def test_eigenvalue_matrix_pads_ragged(self):
        rec = TraceRecorder()
        res = UpdateResult(weight=1.0, scaled_residual=0.5, residual_norm2=1.0)
        rec.record(self._state([2.0]), res)
        rec.record(self._state([2.0, 1.0]), res)
        mat = rec.eigenvalue_matrix()
        assert mat.shape == (2, 2)
        assert np.isnan(mat[0, 1])

    def test_tail_dispersion_detects_churn(self, rng):
        stable, churn = TraceRecorder(), TraceRecorder()
        res = UpdateResult(weight=1.0, scaled_residual=0.5, residual_norm2=1.0)
        for i in range(100):
            stable.record(self._state([5.0, 2.0]), res)
            churn.record(
                self._state([5.0 * (1 + rng.random()), 2.0]), res
            )
        assert stable.tail_dispersion()[0] < 1e-12
        assert churn.tail_dispersion()[0] > 0.05

    def test_empty_matrix(self):
        rec = TraceRecorder()
        assert rec.eigenvalue_matrix().shape == (0, 0)
        assert rec.tail_dispersion().size == 0


class TestConvergenceReport:
    def test_compare(self, rng):
        basis, _ = np.linalg.qr(rng.standard_normal((30, 3)))
        st = Eigensystem(
            mean=np.zeros(30),
            basis=basis,
            eigenvalues=np.array([4.0, 2.0, 1.0]),
            scale=1.0,
        )
        report = ConvergenceReport.compare(
            st, basis, reference_eigenvalues=np.array([4.0, 2.0, 2.0])
        )
        assert report.largest_angle < 1e-7
        assert report.eigenvalue_rel_error[2] == pytest.approx(0.5)
        assert report.roughness_per_component.shape == (3,)
