"""Dead-letter queue, quarantine operator, and circuit breaker."""

import threading
import time

import numpy as np
import pytest

from repro.data.streams import VectorStream
from repro.streams import (
    CircuitBreaker,
    DeadLetterQueue,
    GuardedVectorSource,
    LoadShedValve,
    QuarantineOperator,
    StreamTuple,
    SynchronousEngine,
    Telemetry,
    TelemetryConfig,
    default_validator,
)
from repro.streams.resilience import DeadLetterRecord


def _obs(x, seq=0):
    return StreamTuple.data(x=np.asarray(x, dtype=np.float64), seq=seq)


class TestDeadLetterQueue:
    def test_capacity_bounds_records_not_total(self):
        dlq = DeadLetterQueue(capacity=2)
        for i in range(5):
            dlq.quarantine("src", "bad", payload=i, seq=i)
        assert dlq.total == 5
        assert [r.payload for r in dlq.records] == [3, 4]

    def test_counts_by_origin_and_merge(self):
        dlq = DeadLetterQueue()
        dlq.quarantine("a", "r1")
        dlq.quarantine("a", "r2")
        dlq.quarantine("b", "r3")
        assert dlq.counts_by_origin() == {"a": 2, "b": 1}
        dlq.merge_counts({"b": 4, "c": 1})
        assert dlq.counts_by_origin() == {"a": 2, "b": 5, "c": 1}
        assert dlq.total == 8

    def test_record_captures_context(self):
        dlq = DeadLetterQueue()
        rec = dlq.quarantine("src", "why", payload=[1, 2], seq=7)
        assert isinstance(rec, DeadLetterRecord)
        assert (rec.origin, rec.reason, rec.seq) == ("src", "why", 7)
        assert rec.payload == [1, 2]
        assert rec.ts > 0

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            DeadLetterQueue(capacity=0)

    def test_telemetry_event_per_quarantine(self):
        tel = Telemetry(TelemetryConfig())
        dlq = DeadLetterQueue()
        dlq.bind_telemetry(tel)
        dlq.quarantine("src", "bad line", seq=3)
        events = [e for e in tel.events.events() if e["kind"] == "dlq"]
        assert len(events) == 1
        assert events[0]["reason"] == "bad line"
        assert events[0]["seq"] == 3


class TestDefaultValidator:
    def test_healthy_vector_passes(self):
        assert default_validator(_obs([1.0, 2.0]), 2) is None

    def test_nan_cells_are_gaps_not_poison(self):
        assert default_validator(_obs([np.nan, 2.0]), 2) is None

    def test_all_nan_is_poison(self):
        assert "NaN" in default_validator(_obs([np.nan, np.nan]), 2)

    def test_wrong_dim_is_poison(self):
        assert "dim" in default_validator(_obs([1.0, 2.0, 3.0]), 2)

    def test_non_numeric_is_poison(self):
        tup = StreamTuple.data(x="not a vector", seq=0)
        assert "numeric" in default_validator(tup, 2)

    def test_missing_x_is_poison(self):
        tup = StreamTuple.data(y=1.0)
        assert "missing" in default_validator(tup, 2)

    def test_block_dim_checked(self):
        tup = StreamTuple.data(xs=np.zeros((3, 4)), count=3)
        assert default_validator(tup, 4) is None
        assert "dim" in default_validator(tup, 5)


class TestQuarantineOperator:
    def _op(self, **kw):
        op = QuarantineOperator("q", expected_dim=2, **kw)
        out = []
        op.bind(lambda tup, port: out.append((tup, port)))
        return op, out

    def test_healthy_tuples_flow_through(self):
        op, out = self._op()
        op._dispatch(_obs([1.0, 2.0], seq=0), 0)
        assert len(out) == 1
        assert op.n_quarantined == 0

    def test_poison_is_captured_not_raised(self):
        op, out = self._op()
        op._dispatch(_obs([1.0, 2.0, 3.0], seq=5), 0)
        assert out == []
        assert op.n_quarantined == 1
        [rec] = op.dlq.records
        assert rec.seq == 5
        assert rec.origin == "q"
        np.testing.assert_array_equal(
            rec.payload["x"], [1.0, 2.0, 3.0]
        )

    def test_control_always_passes(self):
        op, out = self._op()
        op._dispatch(StreamTuple.control(type="share"), 0)
        assert len(out) == 1

    def test_shared_dlq(self):
        dlq = DeadLetterQueue()
        op, _ = self._op(dlq=dlq)
        op._dispatch(_obs([np.nan, np.nan], seq=1), 0)
        assert dlq.total == 1


class TestCircuitBreaker:
    def _breaker(self, **kw):
        clock = {"t": 0.0}
        kw.setdefault("clock", lambda: clock["t"])
        br = CircuitBreaker("br", **kw)
        out = []
        br.bind(lambda tup, port: out.append((tup, port)))
        return br, out, clock

    def test_disabled_is_pure_passthrough(self):
        br, out, _ = self._breaker(max_rate_hz=None)
        for i in range(100):
            br._dispatch(_obs([1.0], seq=i), 0)
        assert len(out) == 100
        assert br.n_shed == 0

    def test_burst_within_bucket_passes(self):
        br, out, _ = self._breaker(max_rate_hz=10.0, burst_s=1.0)
        for i in range(10):
            br._dispatch(_obs([1.0], seq=i), 0)
        assert len(out) == 10
        assert br.state == "closed"

    def test_sustained_overload_trips_and_sheds(self):
        br, out, clock = self._breaker(
            max_rate_hz=10.0, burst_s=1.0, open_for_s=0.5
        )
        for i in range(15):  # no time passes: instant overload
            br._dispatch(_obs([1.0], seq=i), 0)
        assert br.state == "open"
        assert br.n_trips == 1
        assert br.n_shed == 5
        assert len(out) == 10
        # Still open: keeps shedding.
        clock["t"] = 0.4
        br._dispatch(_obs([1.0], seq=99), 0)
        assert br.n_shed == 6
        # Cooldown over: closes and admits again.
        clock["t"] = 0.6
        br._dispatch(_obs([1.0], seq=100), 0)
        assert br.state == "closed"
        assert len(out) == 11

    def test_control_passes_while_open(self):
        br, out, _ = self._breaker(max_rate_hz=1.0, burst_s=1.0)
        br._dispatch(_obs([1.0], seq=0), 0)
        br._dispatch(_obs([1.0], seq=1), 0)  # trips
        assert br.state == "open"
        br._dispatch(StreamTuple.control(type="share"), 0)
        assert any(t.is_control for t, _ in out)

    def test_trip_emits_event(self):
        tel = Telemetry(TelemetryConfig())
        br, _, _ = self._breaker(max_rate_hz=1.0)
        br.bind_telemetry(tel)
        br._dispatch(_obs([1.0], seq=0), 0)
        br._dispatch(_obs([1.0], seq=1), 0)
        events = [
            e for e in tel.events.events() if e["kind"] == "breaker"
        ]
        assert [e["event"] for e in events] == ["open"]

    def test_validation(self):
        with pytest.raises(ValueError, match="max_rate_hz"):
            CircuitBreaker("b", max_rate_hz=0.0)
        with pytest.raises(ValueError, match="burst_s"):
            CircuitBreaker("b", max_rate_hz=1.0, burst_s=0)
        with pytest.raises(ValueError, match="open_for_s"):
            CircuitBreaker("b", max_rate_hz=1.0, open_for_s=0)


class TestGuardedVectorSource:
    """The source-inline form of the ingress guards."""

    def _source(self, rows, **kw):
        stream = VectorStream.from_iterable(
            rows, dim=4, length=len(rows)
        )
        return GuardedVectorSource("src", stream, **kw)

    def test_counters_surface_only_for_armed_guards(self):
        rows = [np.zeros(4)]
        q_only = self._source(rows)
        assert q_only.n_quarantined == 0
        assert getattr(q_only, "n_shed", None) is None

        v_only = self._source(rows, quarantine=False, max_rate_hz=10.0)
        assert v_only.n_shed == 0
        assert v_only.state == "closed"
        assert getattr(v_only, "n_quarantined", None) is None
        assert v_only.dlq is None

    def test_quarantines_inline_without_graph_dispatch(self):
        rows = [np.zeros(4), np.full(4, np.nan), np.ones(4)]
        src = self._source(rows)
        out = list(src.generate())
        assert [t["seq"] for t in out] == [0, 2]
        assert src.n_quarantined == 1
        [rec] = src.dlq.records
        assert rec.origin == "src"
        assert rec.seq == 1

    def test_inline_valve_sheds_on_a_dry_bucket(self):
        clock = [0.0]
        rows = [np.zeros(4)] * 4
        src = self._source(
            rows, quarantine=False, max_rate_hz=1.0, burst_s=1.0,
            open_for_s=0.5, clock=lambda: clock[0],
        )
        gen = src.generate()
        assert next(gen)["seq"] == 0  # spends the single token
        # At a frozen clock the bucket never refills: the valve trips
        # on the next arrival and sheds the rest inline.  (Cooldown /
        # recovery semantics are pinned by TestCircuitBreaker — the
        # operator form drives the same LoadShedValve.)
        assert list(gen) == []
        assert src.n_shed == 3
        assert src.n_trips == 1
        assert src.state == "open"


class TestGraphWiring:
    """The resilience stages inside the full parallel application."""

    def _app(self, rows, **kw):
        from repro.parallel.app import build_parallel_pca_graph
        from repro.core.robust import RobustIncrementalPCA

        stream = VectorStream.from_iterable(
            rows, dim=4, length=len(rows)
        )
        return build_parallel_pca_graph(
            stream,
            2,
            lambda i: RobustIncrementalPCA(2, alpha=0.99),
            split_seed=1,
            **kw,
        )

    def test_default_graph_has_no_resilience_guards(self):
        from repro.streams.sources import GuardedVectorSource

        rows = list(np.random.default_rng(0).standard_normal((20, 4)))
        app = self._app(rows)
        assert not isinstance(app.source, GuardedVectorSource)
        assert app.dlq is None
        assert app.n_shed == 0

    def test_poison_rows_quarantined_output_is_input_minus_dlq(self):
        rng = np.random.default_rng(0)
        rows = [rng.standard_normal(4) for _ in range(120)]
        poison_at = {17: np.zeros(7), 40: np.full(4, np.nan)}
        for idx, bad in poison_at.items():
            rows[idx] = bad
        app = self._app(rows, quarantine=True)
        SynchronousEngine(app.graph).run()

        assert app.dlq.total == len(poison_at)
        assert {r.seq for r in app.dlq.records} == set(poison_at)
        # Payloads captured for post-mortem.
        for rec in app.dlq.records:
            assert "x" in rec.payload
        # Output = input - quarantined: every healthy row reached an
        # engine, and the run completed without any operator crash.
        processed = sum(op.n_data_tuples for op in app.engines)
        assert processed == len(rows) - len(poison_at)
        merged = app.controller.global_state(2)
        assert merged.eigenvalues.shape == (2,)

    def test_guards_fused_into_source_add_no_graph_stages(self):
        from repro.streams.sources import GuardedVectorSource

        rows = list(np.random.default_rng(0).standard_normal((10, 4)))
        plain = self._app(rows)
        app = self._app(
            rows, quarantine=True, shed_max_rate_hz=1e9
        )
        assert isinstance(app.source, GuardedVectorSource)
        # Arming the guards must not change the graph topology — no
        # extra operators means no extra dispatch hops or PE threads
        # (the ≤5% fault-free overhead budget rests on this).
        assert {op.name for op in app.graph} == {
            op.name for op in plain.graph
        }
        SynchronousEngine(app.graph).run()
        assert app.n_shed == 0  # generous rate: nothing shed
        assert app.source.state == "closed"

    def test_dlq_metric_exported_via_collector(self):
        rows = [np.zeros(7)] * 3  # all poison
        app = self._app(rows, quarantine=True)
        tel = Telemetry(TelemetryConfig())
        tel.attach_graph(app.graph)
        SynchronousEngine(app.graph).run()
        samples = [
            s for s in tel.metrics.snapshot()
            if s["name"] == "repro_dlq_total"
        ]
        assert len(samples) == 1  # one producer, exported exactly once
        assert samples[0]["value"] == 3


class TestLoadShedValveBlocks:
    """Block admission (``admit_n``) and retry hints — the serving
    layer's admission-control contract, driven by a fake clock."""

    def _valve(self, rate=10.0, burst=1.0, open_for=0.5):
        clock = [0.0]
        valve = LoadShedValve(
            rate, burst_s=burst, open_for_s=open_for,
            clock=lambda: clock[0],
        )
        return valve, clock

    def test_admit_n_is_all_or_nothing(self):
        valve, clock = self._valve()  # capacity 10 tokens
        assert valve.admit_n(8)
        assert not valve.admit_n(4)  # only 2 left: whole block shed
        assert valve.n_shed == 4
        assert valve.state == "open"  # the failed block tripped it

    def test_open_valve_sheds_everything_until_cooldown(self):
        valve, clock = self._valve()
        assert not valve.admit_n(11)  # bigger than the bucket: trips
        assert not valve.admit_n(1)  # even tiny blocks shed while open
        assert valve.n_shed == 12
        clock[0] += 0.6  # past open_for_s: closes with a half bucket
        assert valve.admit_n(5)
        assert valve.state == "closed"

    def test_retry_after_while_open_is_remaining_cooldown(self):
        valve, clock = self._valve(open_for=0.5)
        valve.admit_n(11)  # trip
        assert valve.retry_after_s() == pytest.approx(0.5)
        clock[0] += 0.2
        assert valve.retry_after_s() == pytest.approx(0.3)

    def test_retry_after_while_closed_is_token_deficit(self):
        valve, clock = self._valve(rate=10.0)
        valve.admit_n(8)  # 2 tokens left
        assert valve.retry_after_s(4) == pytest.approx(0.2)  # 2 short
        assert valve.retry_after_s(1) == 0.0  # fits right now
        clock[0] += 1.0  # fully refilled
        assert valve.retry_after_s(4) == 0.0

    def test_admit_n_validates(self):
        valve, _ = self._valve()
        with pytest.raises(ValueError):
            valve.admit_n(0)

    def test_disabled_valve_admits_everything(self):
        valve = LoadShedValve(None)
        assert valve.admit_n(10**9)
        assert valve.retry_after_s(10**9) == 0.0
        assert valve.n_shed == 0


class TestLoadShedValveContention:
    """Bursty multi-client admission: concurrent handlers hammering the
    valves must never lose or double-count a block, and one tenant's
    overload must not bleed into another tenant's budget."""

    N_THREADS = 8

    def _hammer(self, valve, n_threads, n_attempts, block=4):
        admitted = [0] * n_threads
        shed = [0] * n_threads
        start = threading.Barrier(n_threads)

        def worker(tid):
            start.wait()
            for _ in range(n_attempts):
                if valve.admit_n(block):
                    admitted[tid] += block
                else:
                    shed[tid] += block

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        return sum(admitted), sum(shed)

    def test_accounting_exact_under_contention(self):
        valve = LoadShedValve(2000.0, burst_s=0.1, open_for_s=0.01)
        n_attempts, block = 200, 4
        admitted, shed = self._hammer(
            valve, self.N_THREADS, n_attempts, block
        )
        total = self.N_THREADS * n_attempts * block
        assert admitted + shed == total  # nothing lost, nothing doubled
        assert valve.n_shed == shed  # server-side counter agrees
        assert shed > 0  # the burst genuinely overloaded the valve

    def test_no_token_oversubscription(self):
        """Admitted volume can never exceed bucket + refill: a racy
        read-modify-write on the token count would let concurrent
        admitters spend the same token twice."""
        rate, burst = 500.0, 0.2  # capacity 100 tokens
        valve = LoadShedValve(rate, burst_s=burst, open_for_s=10.0)
        t0 = time.monotonic()
        admitted, shed = self._hammer(valve, self.N_THREADS, 100, 2)
        elapsed = time.monotonic() - t0
        budget = rate * burst + rate * elapsed + 2  # bucket + refill
        assert admitted <= budget
        assert admitted + shed == self.N_THREADS * 100 * 2

    def test_per_tenant_valves_isolate_overload(self):
        """Fairness across tenants: a bulk tenant slamming its own
        valve cannot starve a polite tenant under a separate valve."""
        bulk = LoadShedValve(200.0, burst_s=0.1, open_for_s=0.05)
        polite = LoadShedValve(200.0, burst_s=0.1, open_for_s=0.05)
        stop = threading.Event()
        results = {"bulk_admitted": 0, "bulk_shed": 0}

        def bulk_client():
            while not stop.is_set():
                if bulk.admit_n(8):
                    results["bulk_admitted"] += 8
                else:
                    results["bulk_shed"] += 8

        noise = [
            threading.Thread(target=bulk_client, daemon=True)
            for _ in range(self.N_THREADS - 2)
        ]
        for t in noise:
            t.start()
        try:
            # The polite tenant stays far under its own rate budget.
            polite_ok = 0
            for _ in range(10):
                if polite.admit_n(1):
                    polite_ok += 1
                time.sleep(0.01)
        finally:
            stop.set()
            for t in noise:
                t.join(timeout=10.0)
        assert polite_ok == 10  # never shed despite the neighbour's burst
        assert results["bulk_shed"] > 0  # the bulk tenant was shedding
        assert bulk.n_shed == results["bulk_shed"]
        assert polite.n_shed == 0
