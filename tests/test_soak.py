"""Long-stream soak tests: numerical stability over tens of thousands of
updates with mixed contamination, gaps, and synchronization."""

import os
import pathlib

import numpy as np
import pytest

from repro.core import (
    RobustIncrementalPCA,
    largest_principal_angle,
    merge_eigensystems,
)
from repro.data import PlantedSubspaceModel


@pytest.mark.parametrize("alpha", [0.999, 1.0])
def test_robust_estimator_30k_updates_stays_healthy(alpha):
    model = PlantedSubspaceModel(
        dim=60, signal_variances=(25.0, 16.0, 9.0), noise_std=0.4, seed=10
    )
    rng = np.random.default_rng(1)
    gap_rng = np.random.default_rng(2)
    est = RobustIncrementalPCA(3, extra_components=2, alpha=alpha)
    for i, x in enumerate(model.stream(30_000, rng)):
        if i % 40 == 0:
            x = 30.0 * rng.standard_normal(60)      # gross outlier
        elif i % 17 == 0:
            x = x.copy()
            x[gap_rng.random(60) < 0.1] = np.nan    # gappy
        est.update(x)

    st = est.state
    st.validate()
    assert st.orthonormality_error() < 1e-8
    assert np.isfinite(st.scale) and st.scale > 0
    assert np.all(np.isfinite(st.eigenvalues))
    assert np.all(np.isfinite(st.mean))
    assert largest_principal_angle(st.basis[:, :3], model.basis) < 0.15
    # Eigenvalues in a sane range (no slow blow-up or collapse).
    assert 5 < st.eigenvalues[0] < 100


def test_repeated_merging_stays_stable():
    """A long chain of pairwise merges (many sync rounds) must not drift
    off orthonormal or leak eigenvalue mass."""
    model = PlantedSubspaceModel(
        dim=40, signal_variances=(16.0, 9.0, 4.0), noise_std=0.3, seed=11
    )
    rng = np.random.default_rng(3)
    est = RobustIncrementalPCA(3, alpha=0.99)
    est.partial_fit(model.sample(500, rng))
    state = est.state.copy()

    for round_ in range(200):
        other = RobustIncrementalPCA(3, alpha=0.99)
        other.partial_fit(model.sample(300, rng))
        state = merge_eigensystems([state, other.state], 5)

    state.validate()
    assert state.orthonormality_error() < 1e-8
    assert largest_principal_angle(state.basis[:, :3], model.basis) < 0.1
    total = model.eigenvalues.sum()
    assert 0.5 * total < state.eigenvalues[:3].sum() < 2.0 * total


def test_threaded_engine_soak_with_telemetry(tmp_path):
    """A long telemetry-enabled threaded run stays lossless and leaves a
    usable event log.

    The JSONL log lands in ``$TELEMETRY_LOG_DIR`` when set (CI uploads it
    as a build artifact), otherwise in the test's tmp dir.
    """
    from repro.data import VectorStream
    from repro.streams import (
        CollectingSink,
        FusionPlan,
        Graph,
        Split,
        Telemetry,
        TelemetryConfig,
        ThreadedEngine,
        Union,
        VectorSource,
        load_events,
        render_report,
    )

    n = 20_000
    rng = np.random.default_rng(7)
    x = rng.standard_normal((n, 16))
    g = Graph("soak")
    src = g.add(VectorSource("src", VectorStream.from_array(x)))
    split = g.add(Split("split", 4, strategy="round_robin"))
    uni = g.add(Union("union", 4))
    sink = g.add(CollectingSink("sink"))
    g.connect(src, split)
    for i in range(4):
        g.connect(split, uni, out_port=i, in_port=i)
    g.connect(uni, sink)

    tel = Telemetry(TelemetryConfig(
        timing=True, tracing=True, trace_sample_every=500,
        sampler_interval_s=0.05,
    ))
    stats = ThreadedEngine(
        g, fusion=FusionPlan.fuse_chains(g), telemetry=tel
    ).run(timeout_s=120)

    assert len(sink.tuples) == n  # lossless under telemetry
    assert stats.tuples_in["sink"] == n
    assert tel.tracer.n_traces == n // 500
    assert tel.events.n_dropped == 0

    log_dir = pathlib.Path(os.environ.get("TELEMETRY_LOG_DIR", tmp_path))
    log_dir.mkdir(parents=True, exist_ok=True)
    path = log_dir / "soak-telemetry.jsonl"
    tel.write_jsonl(path)
    events = load_events(path)
    kinds = {e["kind"] for e in events}
    assert {"run_start", "span", "sample", "run_end", "metrics"} <= kinds
    # The log renders through the same tooling as `python -m repro telemetry`.
    report = render_report(events)
    assert "top operators by exclusive time" in report
