"""Shared fixtures for the test suite.

Everything stochastic is seeded through explicit ``numpy.random.Generator``
instances so the suite is fully deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import PlantedSubspaceModel


@pytest.fixture
def rng() -> np.random.Generator:
    """The default deterministic generator for a test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_model() -> PlantedSubspaceModel:
    """A small planted-subspace model shared by many estimator tests."""
    return PlantedSubspaceModel(
        dim=40,
        signal_variances=(25.0, 16.0, 9.0),
        noise_std=0.3,
        seed=0,
    )


@pytest.fixture
def small_data(small_model, rng) -> np.ndarray:
    """A 3000×40 sample from :func:`small_model`."""
    return small_model.sample(3000, rng)
