"""Tests for the classical incremental PCA (the Fig. 1 baseline)."""

import numpy as np
import pytest

from repro.core import BatchPCA, IncrementalPCA, largest_principal_angle


class TestWarmup:
    def test_state_unavailable_before_init(self):
        ipca = IncrementalPCA(2, init_size=5)
        ipca.update(np.zeros(4))
        with pytest.raises(RuntimeError, match="not initialized"):
            _ = ipca.state
        assert not ipca.is_initialized
        assert ipca.n_seen == 1

    def test_initializes_after_buffer(self, rng):
        ipca = IncrementalPCA(2, init_size=5)
        for _ in range(5):
            ipca.update(rng.standard_normal(4))
        assert ipca.is_initialized
        assert ipca.n_seen == 5

    def test_update_returns_none_during_warmup(self, rng):
        ipca = IncrementalPCA(2, init_size=4)
        assert ipca.update(rng.standard_normal(4)) is None


class TestConvergence:
    def test_converges_to_planted_subspace(self, small_model, small_data):
        ipca = IncrementalPCA(3).partial_fit(small_data)
        angle = largest_principal_angle(ipca.state.basis, small_model.basis)
        assert angle < 0.08

    def test_eigenvalues_near_truth(self, small_model, small_data):
        ipca = IncrementalPCA(3).partial_fit(small_data)
        assert np.allclose(
            ipca.eigenvalues_, small_model.eigenvalues, rtol=0.15
        )

    def test_matches_batch_pca(self, small_data):
        """Infinite-memory incremental ≈ batch on the same data."""
        ipca = IncrementalPCA(3).partial_fit(small_data)
        batch = BatchPCA(3).fit(small_data)
        angle = largest_principal_angle(
            ipca.state.basis, batch.components_.T
        )
        assert angle < 0.08
        assert np.allclose(ipca.eigenvalues_, batch.eigenvalues_, rtol=0.1)
        assert np.allclose(ipca.mean_, batch.mean_, atol=0.05)

    def test_forgetting_tracks_mean_shift(self, rng):
        """alpha < 1 adapts to a shifted distribution; alpha = 1 lags."""
        d = 10
        x1 = rng.standard_normal((3000, d))
        x2 = rng.standard_normal((3000, d)) + 8.0

        fast = IncrementalPCA(2, alpha=0.99)
        slow = IncrementalPCA(2, alpha=1.0)
        for est in (fast, slow):
            est.partial_fit(x1)
            est.partial_fit(x2)
        err_fast = np.linalg.norm(fast.mean_ - 8.0)
        err_slow = np.linalg.norm(slow.mean_ - 8.0)
        assert err_fast < 0.5
        assert err_slow > 2.0


class TestInference:
    def test_transform_inverse_roundtrip_in_subspace(self, small_model, rng):
        # Noise-free data lies in the subspace: the round trip is exact
        # up to the mean estimate.
        model = small_model
        x = model.sample(2000, rng)
        ipca = IncrementalPCA(3).partial_fit(x)
        z = ipca.transform(x[:10])
        assert z.shape == (10, 3)
        back = ipca.inverse_transform(z)
        assert back.shape == (10, 40)
        # Reconstruction error is bounded by the noise floor.
        err = np.mean(np.sum((back - x[:10]) ** 2, axis=1))
        noise_floor = 40 * model.noise_std**2
        assert err < 3 * noise_floor

    def test_reconstruction_error(self, small_data):
        ipca = IncrementalPCA(3).partial_fit(small_data)
        errs = ipca.reconstruction_error(small_data[:50])
        assert errs.shape == (50,)
        assert np.all(errs >= 0)

    def test_components_shape(self, small_data):
        ipca = IncrementalPCA(3).partial_fit(small_data)
        assert ipca.components_.shape == (3, 40)
        assert ipca.mean_.shape == (40,)


class TestUpdateResult:
    def test_diagnostics_fields(self, small_data):
        ipca = IncrementalPCA(3, init_size=10)
        results = [ipca.update(x) for x in small_data[:50]]
        assert all(r is None for r in results[:10])
        for r in results[10:]:
            assert r.weight == 1.0
            assert r.residual_norm2 >= 0
            assert not r.is_outlier

    def test_scale_tracks_mean_residual(self, small_model, small_data):
        ipca = IncrementalPCA(3).partial_fit(small_data)
        # Residual variance is (d - p) * noise_std² approximately.
        expected = (40 - 3) * small_model.noise_std**2
        assert ipca.state.scale == pytest.approx(expected, rel=0.3)


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError, match="n_components"):
            IncrementalPCA(0)
        with pytest.raises(ValueError, match="alpha"):
            IncrementalPCA(2, alpha=0.0)
        with pytest.raises(ValueError, match="alpha"):
            IncrementalPCA(2, alpha=1.5)
        with pytest.raises(ValueError, match="init_size"):
            IncrementalPCA(2, init_size=1)

    def test_wrong_shape_update(self, rng):
        ipca = IncrementalPCA(2, init_size=3)
        with pytest.raises(ValueError, match="single vector"):
            ipca.update(rng.standard_normal((2, 4)))

    def test_dimension_mismatch_after_init(self, rng):
        ipca = IncrementalPCA(2, init_size=3)
        for _ in range(3):
            ipca.update(rng.standard_normal(6))
        with pytest.raises(ValueError, match="dim"):
            ipca.update(rng.standard_normal(7))

    def test_orthonormality_preserved_over_long_stream(self, rng):
        ipca = IncrementalPCA(4, init_size=10)
        for _ in range(2000):
            ipca.update(rng.standard_normal(20))
        assert ipca.state.orthonormality_error() < 1e-8
