"""Tests for the dataset → stream adapters."""

import numpy as np
import pytest

from repro.data.streams import VectorStream, repeat_epochs, shuffled


class TestShuffled:
    def test_is_a_permutation(self, rng):
        x = np.arange(50, dtype=float).reshape(25, 2)
        out = np.vstack(list(shuffled(x, rng)))
        assert out.shape == x.shape
        assert np.array_equal(np.sort(out[:, 0]), x[:, 0])
        assert not np.array_equal(out, x)  # shuffled with this seed

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            list(shuffled(np.zeros(5), rng))


class TestRepeatEpochs:
    def test_counts_and_reshuffling(self, rng):
        x = np.arange(20, dtype=float).reshape(10, 2)
        out = np.vstack(list(repeat_epochs(x, 3, rng)))
        assert out.shape == (30, 2)
        e1, e2 = out[:10], out[10:20]
        assert not np.array_equal(e1, e2)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            list(repeat_epochs(np.zeros((3, 2)), 0, rng))


class TestVectorStream:
    def test_from_array(self):
        x = np.arange(12, dtype=float).reshape(4, 3)
        vs = VectorStream.from_array(x)
        assert vs.dim == 3
        assert vs.length == 4
        assert np.array_equal(np.vstack(list(vs)), x)

    def test_take(self):
        x = np.arange(12, dtype=float).reshape(4, 3)
        vs = VectorStream.from_array(x)
        first = vs.take(2)
        assert np.array_equal(first, x[:2])
        rest = vs.take(10)  # only 2 remain
        assert np.array_equal(rest, x[2:])
        assert vs.take(5).shape == (0, 3)

    def test_from_sampler_bounded(self):
        count = iter(range(100))
        vs = VectorStream.from_sampler(
            lambda: np.full(2, float(next(count))), dim=2, length=5
        )
        out = vs.take(100)
        assert out.shape == (5, 2)
        assert np.array_equal(out[:, 0], np.arange(5.0))

    def test_from_iterable(self):
        vs = VectorStream.from_iterable(
            (np.ones(3) * i for i in range(4)), dim=3
        )
        assert vs.length is None
        assert vs.take(4).shape == (4, 3)

    def test_from_array_validation(self):
        with pytest.raises(ValueError):
            VectorStream.from_array(np.zeros(5))
