"""Smoke tests of the experiment harness (scaled-down configurations).

The full-size runs live in benchmarks/; here we verify each experiment's
plumbing and the direction of its headline effect on small workloads.
"""

import numpy as np
import pytest

from repro.experiments import (
    Fig1Config,
    Fig45Config,
    Fig6Config,
    Fig7Config,
    format_table,
    run_alpha_ablation,
    run_fig1,
    run_fig45,
    run_fig6,
    run_fig7,
    run_gap_ablation,
    run_gate_ablation,
    run_sync_strategies,
)
from repro.experiments.common import Table


class TestCommon:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_table_render(self):
        t = Table("title", ["x"], [[1]])
        assert t.render().startswith("title\n")


class TestFig1:
    def test_small_run_shapes(self):
        config = Fig1Config(
            dim=40, n_observations=1500, trace_every=20, seed=1
        )
        result = run_fig1(config)
        assert result.classic_angle > result.robust_angle
        assert result.detection["recall"] > 0.8
        mat = result.robust_trace.eigenvalue_matrix()
        assert mat.shape[1] == config.n_components
        assert result.table().render()


class TestFig45:
    def test_small_run_improves(self):
        config = Fig45Config(
            n_bins=150, n_spectra=1200, early_at=100, seed=2
        )
        result = run_fig45(config)
        assert result.late_roughness.mean() < result.early_roughness.mean()
        assert result.late_angles.mean() < result.early_angles.mean()
        assert result.early_basis.shape == (150, 4)
        assert result.n_gap_filled > 0
        assert result.table().render()


class TestFig6:
    def test_small_sweep_shape(self):
        config = Fig6Config(
            threads=(1, 4, 20, 30), warmup_s=0.1, window_s=0.3
        )
        result = run_fig6(config)
        assert len(result.single) == len(result.distributed) == 4
        dist = [r.throughput for r in result.distributed]
        single = [r.throughput for r in result.single]
        assert dist[2] > dist[1] > dist[0]   # scales up to 20
        assert dist[3] < dist[2]             # degrades at 30
        assert single[3] == pytest.approx(single[2], rel=0.1)  # flat
        threads, peak = result.distributed_peak()
        assert threads == 20
        assert result.table().render()


class TestFig7:
    def test_small_sweep_shape(self):
        config = Fig7Config(
            dims=(250, 1000), threads=(1, 10, 20),
            warmup_s=0.1, window_s=0.3,
        )
        result = run_fig7(config)
        # Per-thread falls with d.
        assert result.per_thread(10, 1000) < result.per_thread(10, 250) / 2
        # 20 threads NIC-bound at small d.
        assert result.per_thread(20, 250) < result.per_thread(10, 250)
        assert result.table().render()


class TestAblations:
    def test_alpha_ablation_small(self):
        result = run_alpha_ablation(
            alphas=(0.99, 1.0), dim=30, n_observations=2500,
            rotation_rate=5e-4, seed=3,
        )
        by = {a: i for i, a in enumerate(result.alphas)}
        assert (
            result.tracking_angles[by[1.0]]
            > result.tracking_angles[by[0.99]]
        )
        assert result.best_alpha() == 0.99
        assert result.table().render()

    def test_gap_ablation_small(self):
        result = run_gap_ablation(
            modes=("observed", "hybrid"),
            n_bins=120, n_spectra=700, seed=4,
        )
        assert result.inflation_of("observed") > result.inflation_of("hybrid")
        assert result.table().render()

    def test_sync_strategies_small(self):
        result = run_sync_strategies(
            strategies=("ring", "broadcast"),
            dim=30, n_observations=3000, seed=5,
        )
        by = {s: i for i, s in enumerate(result.strategies)}
        assert (
            result.merge_messages[by["broadcast"]]
            > result.merge_messages[by["ring"]]
        )
        assert all(a < 0.5 for a in result.global_angle)
        assert result.table().render()

    def test_gate_ablation_small(self):
        result = run_gate_ablation(
            factors=(1.0, 5.0), dim=30, n_observations=3000, seed=6
        )
        assert result.merge_messages[0] > result.merge_messages[1]
        assert result.table().render()


class TestConvergence:
    def test_small_run(self):
        from repro.experiments import ConvergenceConfig, run_convergence

        result = run_convergence(
            ConvergenceConfig(
                n_bins=120, n_spectra=1500, snapshot_every=150, seed=2
            )
        )
        assert len(result.fractions) == len(result.leading_angles)
        assert result.final_leading_angle < 0.1
        assert result.fraction_to_reach(0.1) < 0.5
        assert result.table().render()


class TestLatency:
    def test_small_run(self):
        from repro.experiments import LatencyConfig, run_latency

        result = run_latency(
            LatencyConfig(warmup_s=0.1, window_s=0.3)
        )
        assert result.p50_of("fused") < result.p50_of("distributed")
        assert result.p50_of("distributed") < result.p50_of("relay")
        assert result.table().render()
