"""Tests for the Eigensystem state container."""

import numpy as np
import pytest

from repro.core.eigensystem import Eigensystem


def _simple_state(rng, d=10, k=3) -> Eigensystem:
    basis, _ = np.linalg.qr(rng.standard_normal((d, k)))
    return Eigensystem(
        mean=rng.standard_normal(d),
        basis=basis,
        eigenvalues=np.array(sorted(rng.random(k) + 0.1, reverse=True)),
        scale=1.5,
        sum_count=10.0,
        sum_weight=9.0,
        sum_weighted_r2=12.0,
        n_seen=10,
        n_since_sync=4,
    )


class TestConstruction:
    def test_empty(self):
        st = Eigensystem.empty(7)
        assert st.dim == 7
        assert st.n_components == 0
        assert st.n_seen == 0

    def test_from_batch_matches_svd(self, rng):
        x = rng.standard_normal((100, 12))
        st = Eigensystem.from_batch(x, 4)
        assert st.n_components == 4
        assert np.allclose(st.mean, x.mean(axis=0))
        # Eigenvalues = squared singular values of centered data / n.
        y = x - x.mean(axis=0)
        s = np.linalg.svd(y, compute_uv=False)
        assert np.allclose(st.eigenvalues, (s[:4] ** 2) / 100)
        assert st.orthonormality_error() < 1e-10

    def test_from_batch_uncentered(self, rng):
        x = rng.standard_normal((50, 8)) + 5.0
        st = Eigensystem.from_batch(x, 2, center=False)
        assert np.allclose(st.mean, 0.0)

    def test_from_batch_degenerate_rank(self, rng):
        row = rng.standard_normal(6)
        x = np.vstack([row * i for i in range(1, 6)])  # rank 1
        st = Eigensystem.from_batch(x, 4)
        assert st.n_components <= 2  # mean removal can add one direction

    def test_from_batch_errors(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            Eigensystem.from_batch(np.zeros(5), 2)
        with pytest.raises(ValueError, match="at least 2"):
            Eigensystem.from_batch(np.zeros((1, 5)), 2)

    def test_1d_basis_promoted(self):
        st = Eigensystem(
            mean=np.zeros(4),
            basis=np.array([1.0, 0, 0, 0]),
            eigenvalues=np.array([2.0]),
        )
        assert st.basis.shape == (4, 1)


class TestValidation:
    def test_mismatched_basis_rows(self):
        with pytest.raises(ValueError, match="basis rows"):
            Eigensystem(
                mean=np.zeros(5),
                basis=np.zeros((4, 2)),
                eigenvalues=np.zeros(2),
            )

    def test_mismatched_eigenvalues(self):
        with pytest.raises(ValueError, match="eigenvalues shape"):
            Eigensystem(
                mean=np.zeros(5),
                basis=np.zeros((5, 2)),
                eigenvalues=np.zeros(3),
            )

    def test_negative_eigenvalues(self):
        with pytest.raises(ValueError, match="non-negative"):
            Eigensystem(
                mean=np.zeros(3),
                basis=np.eye(3, 1),
                eigenvalues=np.array([-1.0]),
            )

    def test_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            Eigensystem(
                mean=np.zeros(3),
                basis=np.eye(3, 1),
                eigenvalues=np.array([1.0]),
                scale=float("nan"),
            )


class TestGeometry:
    def test_projection_identities(self, rng):
        st = _simple_state(rng)
        y = rng.standard_normal(10)
        recon = st.reconstruct(y)
        resid = st.residual(y)
        assert np.allclose(recon + resid, y)
        # Residual is orthogonal to the basis.
        assert np.allclose(st.basis.T @ resid, 0.0, atol=1e-10)
        # Pythagoras.
        assert float(y @ y) == pytest.approx(
            float(recon @ recon) + float(resid @ resid)
        )

    def test_block_operations(self, rng):
        st = _simple_state(rng)
        y = rng.standard_normal((7, 10))
        r2 = st.residual_norm2(y)
        assert r2.shape == (7,)
        for i in range(7):
            assert r2[i] == pytest.approx(st.residual_norm2(y[i]))

    def test_covariance_reconstruction(self, rng):
        st = _simple_state(rng)
        c = st.covariance()
        assert c.shape == (10, 10)
        assert np.allclose(c, c.T)
        assert np.trace(c) == pytest.approx(st.eigenvalues.sum())

    def test_center(self, rng):
        st = _simple_state(rng)
        x = rng.standard_normal(10)
        assert np.allclose(st.center(x), x - st.mean)


class TestLifecycle:
    def test_copy_is_deep(self, rng):
        st = _simple_state(rng)
        cp = st.copy()
        cp.mean[0] += 100
        cp.basis[0, 0] += 100
        assert st.mean[0] != cp.mean[0]
        assert st.basis[0, 0] != cp.basis[0, 0]

    def test_mark_synced(self, rng):
        st = _simple_state(rng)
        st.mark_synced()
        assert st.n_since_sync == 0

    def test_dict_roundtrip(self, rng):
        st = _simple_state(rng)
        st2 = Eigensystem.from_dict(st.to_dict())
        assert st2 == st

    def test_equality(self, rng):
        st = _simple_state(rng)
        assert st == st.copy()
        other = st.copy()
        other.scale += 1
        assert st != other
