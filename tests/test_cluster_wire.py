"""Wire layer of the cluster runtime: framing, sockets, trust boundary.

Round-trips run over *real* ``socket.socketpair`` links — the framed
protocol's contract is with kernel byte streams, not in-memory buffers —
and the regression tests pin the three wire-layer bugfixes this layer
exposed: unknown-schema handling, the decode allowlist, and the
pickle-fallback accounting.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.core.eigensystem import Eigensystem
from repro.streams.sources import OBSERVATION_SCHEMA
from repro.streams.tuples import (
    FieldType,
    StreamSchema,
    StreamTuple,
    UnknownSchemaError,
    WireDecodeError,
    from_wire,
    register_schema,
    to_wire,
    wire_stats,
)
from repro.streams.tuples import _SCHEMA_REGISTRY, _SCHEMA_NAMES
from repro.streams.wireproto import (
    FrameError,
    MAX_FRAME_BYTES,
    ReconnectingChannel,
    decode_frame,
    encode_frame,
    recv_frame,
    send_frame,
)


class TestFrameCodec:
    def test_nested_roundtrip_with_blobs(self):
        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        msg = {
            "t": "tuples",
            "items": [["dst", 0, {"x": arr, "b": b"\x00\xffraw"}]],
            "none": None,
            "flag": True,
            "n": 42,
            "s": "text",
        }
        back = decode_frame(encode_frame(msg))
        np.testing.assert_array_equal(back["items"][0][2]["x"], arr)
        assert back["items"][0][2]["x"].dtype == np.float64
        assert back["items"][0][2]["b"] == b"\x00\xffraw"
        assert back["none"] is None and back["flag"] is True
        assert back["n"] == 42 and back["s"] == "text"

    def test_floats_roundtrip_exactly(self):
        # JSON shortest-repr: the parity guarantee of the cluster
        # runtime rests on this being *exact*, not approximate.
        vals = [0.1, 1.0 / 3.0, 1e-300, np.nextafter(1.0, 2.0)]
        back = decode_frame(encode_frame({"v": vals}))
        assert back["v"] == vals

    def test_decoded_arrays_are_writable(self):
        back = decode_frame(encode_frame({"x": np.zeros(3)}))
        back["x"][0] = 1.0  # must not raise: receive buffer not pinned

    def test_reserved_key_rejected(self):
        with pytest.raises(FrameError, match="__frame__"):
            encode_frame({"__frame__": "nd"})

    def test_non_string_keys_rejected(self):
        with pytest.raises(FrameError, match="keys must be str"):
            encode_frame({"k": {1: "x"}})

    def test_unframeable_value_rejected(self):
        with pytest.raises(FrameError, match="cannot frame"):
            encode_frame({"k": {1, 2}})

    def test_bad_magic_rejected(self):
        data = bytearray(encode_frame({"a": 1}))
        data[:4] = b"EVIL"
        with pytest.raises(FrameError, match="magic"):
            decode_frame(bytes(data))

    def test_oversized_length_prefix_rejected(self):
        # An attacker-controlled length prefix must never size an
        # allocation: tamper the header to claim a huge body.
        import struct

        data = bytearray(encode_frame({"a": 1}))
        struct.pack_into("!Q", data, 4, MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameError, match="MAX_FRAME_BYTES"):
            decode_frame(bytes(data))


def _raw_frame(header, blobs=(), n_blobs=None, blob_lens=None):
    """Hand-assemble a (possibly malformed) frame from raw parts."""
    import struct

    lens = (
        blob_lens
        if blob_lens is not None
        else [len(b) for b in blobs]
    )
    lens_bytes = b"".join(struct.pack("!Q", n) for n in lens)
    body = lens_bytes + header + b"".join(blobs)
    nb = n_blobs if n_blobs is not None else len(blobs)
    return b"RPW1" + struct.pack("!QII", len(body), len(header), nb) + body


class TestMalformedFrames:
    """Every parse failure must surface as FrameError.

    Regression: junk bytes from an untrusted peer used to leak
    ``json.JSONDecodeError`` / ``struct.error`` / ``KeyError`` /
    ``IndexError`` out of ``decode_frame``, which killed the
    coordinator's accept thread on the first garbage connection —
    legitimate hosts could then never connect or redial.
    """

    def test_truncated_fixed_header(self):
        with pytest.raises(FrameError, match="truncated"):
            decode_frame(b"RPW1\x00\x00")

    def test_junk_json_header(self):
        with pytest.raises(FrameError, match="malformed frame"):
            decode_frame(_raw_frame(b"not json at all"))

    def test_non_utf8_header(self):
        with pytest.raises(FrameError, match="malformed frame"):
            decode_frame(_raw_frame(b"\xff\xfe\xfd\xfc"))

    def test_empty_body(self):
        with pytest.raises(FrameError, match="malformed frame"):
            decode_frame(_raw_frame(b""))

    def test_non_dict_header(self):
        with pytest.raises(FrameError, match="must decode to a dict"):
            decode_frame(_raw_frame(b"[1,2,3]"))

    def test_n_blobs_past_buffer(self):
        with pytest.raises(FrameError, match="exceed the declared body"):
            decode_frame(_raw_frame(b'{"a":1}', n_blobs=1 << 20))

    def test_blob_lengths_do_not_sum(self):
        with pytest.raises(FrameError, match="do not sum"):
            decode_frame(
                _raw_frame(b'{"a":1}', blobs=(b"xyz",), blob_lens=[7])
            )

    def test_truncated_body(self):
        data = encode_frame({"x": np.zeros(8)})
        with pytest.raises(FrameError, match="frame body is"):
            decode_frame(data[:-3])

    def test_nd_ref_with_bad_dtype(self):
        hdr = b'{"x":{"__frame__":"nd","i":0,"dtype":"?!","shape":[3]}}'
        with pytest.raises(FrameError, match="bad nd dtype"):
            decode_frame(_raw_frame(hdr, blobs=(b"\x00" * 24,)))

    def test_nd_ref_with_comma_struct_dtype(self):
        # numpy's comma-struct dtype syntax runs an ast-based parser
        # that raises SyntaxError on hostile strings; the decoder must
        # never hand attacker bytes to it.
        hdr = (
            b'{"x":{"__frame__":"nd","i":0,'
            b'"dtype":"f8,(2)f8","shape":[3]}}'
        )
        with pytest.raises(FrameError, match="bad nd dtype"):
            decode_frame(_raw_frame(hdr, blobs=(b"\x00" * 24,)))

    def test_nd_ref_with_object_dtype_spelling(self):
        hdr = b'{"x":{"__frame__":"nd","i":0,"dtype":"|O8","shape":[1]}}'
        with pytest.raises(FrameError):
            decode_frame(_raw_frame(hdr, blobs=(b"\x00" * 8,)))

    def test_nd_ref_with_mismatched_shape(self):
        hdr = (
            b'{"x":{"__frame__":"nd","i":0,"dtype":"<f8","shape":[99]}}'
        )
        with pytest.raises(FrameError, match="malformed frame"):
            decode_frame(_raw_frame(hdr, blobs=(b"\x00" * 24,)))

    def test_nd_ref_with_missing_fields(self):
        with pytest.raises(FrameError, match="malformed frame"):
            decode_frame(_raw_frame(b'{"x":{"__frame__":"nd"}}'))

    def test_blob_index_out_of_range(self):
        hdr = b'{"x":{"__frame__":"bytes","i":5}}'
        with pytest.raises(FrameError, match="malformed frame"):
            decode_frame(_raw_frame(hdr))


def _pair():
    a, b = socket.socketpair()
    return a, b


class TestSocketFraming:
    def test_data_tuple_roundtrip_over_socketpair(self):
        a, b = _pair()
        try:
            vec = np.linspace(-1.0, 1.0, 17)
            tup = StreamTuple.data(OBSERVATION_SCHEMA, x=vec, seq=7)
            send_frame(a, to_wire(tup, describe_schema=True))
            back = from_wire(recv_frame(b), allow_pickle=False)
            np.testing.assert_array_equal(back["x"], vec)
            assert back["seq"] == 7
            assert back.seq == tup.seq
            assert back.event_ts == tup.event_ts
            assert back.schema is tup.schema
        finally:
            a.close()
            b.close()

    def test_punctuation_and_control_roundtrip(self):
        a, b = _pair()
        try:
            send_frame(a, to_wire(StreamTuple.punctuation()))
            send_frame(
                a, to_wire(StreamTuple.control(type="grant", round=3))
            )
            punct = from_wire(recv_frame(b), allow_pickle=False)
            ctl = from_wire(recv_frame(b), allow_pickle=False)
            assert punct.is_punctuation
            assert ctl.is_control and ctl["round"] == 3
        finally:
            a.close()
            b.close()

    def test_sync_state_tuple_with_eigensystem_payload(self):
        # The ring-merge traffic of the SyncController: an Eigensystem
        # crosses via its documented dict form, never pickle.
        a, b = _pair()
        try:
            rng = np.random.default_rng(0)
            basis, _ = np.linalg.qr(rng.standard_normal((6, 2)))
            es = Eigensystem(
                mean=np.zeros(6),
                basis=basis,
                eigenvalues=np.array([4.0, 1.0]),
                sum_weight=12.0,
            )
            before = wire_stats()["pickled_payloads"]
            tup = StreamTuple.control(type="share", state=es, engine=1)
            send_frame(a, to_wire(tup))
            back = from_wire(recv_frame(b), allow_pickle=False)
            assert wire_stats()["pickled_payloads"] == before
            np.testing.assert_allclose(
                back["state"].eigenvalues, es.eigenvalues
            )
            np.testing.assert_allclose(back["state"].basis, es.basis)
        finally:
            a.close()
            b.close()

    def test_frames_preserve_order(self):
        a, b = _pair()
        try:
            for i in range(20):
                send_frame(a, {"i": i})
            got = [recv_frame(b)["i"] for _ in range(20)]
            assert got == list(range(20))
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = _pair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_torn_frame_raises_connection_error(self):
        a, b = _pair()
        try:
            data = encode_frame({"x": np.zeros(64)})
            a.sendall(data[: len(data) // 2])
            a.close()
            with pytest.raises(ConnectionError, match="torn frame"):
                recv_frame(b)
        finally:
            b.close()


class _MiniCoordinator:
    """Accepts framed connections, records hellos, scripts replies."""

    def __init__(self):
        self.server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.server.bind(("127.0.0.1", 0))
        self.server.listen(4)
        self.addr = self.server.getsockname()
        self.hellos = []
        self.received = []

    def serve(self, plans):
        """One element of ``plans`` per accepted connection.

        Each plan is a list of frames to send after reading the hello;
        the connection is closed afterwards (an abrupt outage for every
        plan but the last, which stays open until the client closes).
        """
        for i, plan in enumerate(plans):
            conn, _ = self.server.accept()
            self.hellos.append(recv_frame(conn))
            for frame in plan:
                send_frame(conn, frame)
            if i < len(plans) - 1:
                conn.close()
            else:
                self.last_conn = conn

    def close(self):
        self.server.close()


class TestReconnectingChannel:
    def test_mid_stream_disconnect_recovers(self):
        coord = _MiniCoordinator()
        plans = [[{"i": 0}, {"i": 1}], [{"i": 2}]]
        server = threading.Thread(
            target=coord.serve, args=(plans,), daemon=True
        )
        server.start()
        chan = ReconnectingChannel(
            coord.addr, {"t": "hello", "host": 9},
            max_retries=8, base_s=0.01, cap_s=0.1,
        )
        try:
            chan.connect()
            got = []
            deadline = time.perf_counter() + 10.0
            while len(got) < 3 and time.perf_counter() < deadline:
                msg = chan.recv(timeout_s=0.05)
                if msg is not None:
                    got.append(msg["i"])
            assert got == [0, 1, 2]
            assert chan.n_reconnects == 1
            server.join(timeout=5.0)
            # The hello was re-sent on the redial so the coordinator
            # can re-associate the stream.
            assert [h["host"] for h in coord.hellos] == [9, 9]
        finally:
            chan.close()
            coord.close()

    def test_flap_hook_severs_once_and_redials(self):
        coord = _MiniCoordinator()
        plans = [[{"i": 0}], [{"i": 1}]]
        server = threading.Thread(
            target=coord.serve, args=(plans,), daemon=True
        )
        server.start()
        chan = ReconnectingChannel(
            coord.addr, {"t": "hello", "host": 4},
            max_retries=8, base_s=0.01, cap_s=0.1, flap_after=1,
        )
        try:
            chan.connect()
            got = []
            deadline = time.perf_counter() + 10.0
            while len(got) < 2 and time.perf_counter() < deadline:
                msg = chan.recv(timeout_s=0.05)
                if msg is not None:
                    got.append(msg["i"])
            assert got == [0, 1]
            # The self-inflicted flap is a counted reconnect too —
            # regression: redials via the flap hook used to dial as
            # "first connect" and evade the counter.
            assert chan.n_reconnects == 1
            server.join(timeout=5.0)
            assert len(coord.hellos) == 2
        finally:
            chan.close()
            coord.close()

    def test_reconnect_race_keeps_winners_socket(self):
        # Regression: the sender and receiver threads share one socket;
        # when both hit the same outage, the second _reconnect used to
        # unconditionally close the fresh socket the first had just
        # dialed — a spurious extra reconnect that lost any frames
        # already sent on it.
        coord = _MiniCoordinator()
        server = threading.Thread(
            target=coord.serve, args=([[], []],), daemon=True
        )
        server.start()
        chan = ReconnectingChannel(
            coord.addr, {"t": "hello"},
            max_retries=8, base_s=0.01, cap_s=0.1,
        )
        try:
            chan.connect()
            fresh = chan._sock
            # The losing thread reports the *stale* socket it saw fail;
            # the winner's fresh socket must be handed back untouched.
            stale = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            stale.close()
            assert chan._reconnect(stale) is fresh
            assert chan._sock is fresh
            assert fresh.fileno() != -1  # not torn down
            assert chan.n_reconnects == 0
            # Reporting the *current* socket as failed still redials.
            redialed = chan._reconnect(fresh)
            assert redialed is not fresh
            assert chan.n_reconnects == 1
            server.join(timeout=5.0)
            assert len(coord.hellos) == 2
        finally:
            chan.close()
            coord.close()

    def test_budget_exhaustion_raises(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        dead_addr = probe.getsockname()
        probe.close()  # nothing listens here any more
        chan = ReconnectingChannel(
            dead_addr, {"t": "hello"},
            max_retries=1, base_s=0.005, cap_s=0.01,
        )
        with pytest.raises(ConnectionError, match="budget exhausted"):
            chan.connect()

    def test_counters_track_traffic(self):
        coord = _MiniCoordinator()
        server = threading.Thread(
            target=coord.serve, args=([[{"i": 0}]],), daemon=True
        )
        server.start()
        chan = ReconnectingChannel(coord.addr, {"t": "hello"})
        try:
            chan.connect()
            assert chan.recv(timeout_s=2.0) == {"i": 0}
            c = chan.counters()
            assert c["frames_in"] == 1
            assert c["frames_out"] == 1  # the hello
            # Regression: bytes_in used to stay 0 (frames were counted,
            # their sizes were not).
            assert c["bytes_in"] > 0
            assert c["bytes_out"] > 0 and c["reconnects"] == 0
        finally:
            chan.close()
            coord.close()


class TestWireTrustBoundary:
    """Regression tests for the wire-layer bugfixes."""

    def test_unknown_schema_raises_and_counts(self):
        schema = register_schema(
            "test-unknown-schema", StreamSchema({"v": FieldType.FLOAT})
        )
        msg = to_wire(StreamTuple.data(schema, v=1.0))
        # Simulate a receiver that never registered the name.
        del _SCHEMA_REGISTRY["test-unknown-schema"]
        del _SCHEMA_NAMES[id(schema)]
        before = wire_stats()["unknown_schema"]
        with pytest.raises(UnknownSchemaError, match="test-unknown-schema"):
            from_wire(msg)
        assert wire_stats()["unknown_schema"] == before + 1

    def test_descriptor_registers_schema_lazily(self):
        schema = register_schema(
            "test-lazy-schema",
            StreamSchema({"v": FieldType.FLOAT, "x": FieldType.VECTOR}),
        )
        msg = to_wire(
            StreamTuple.data(schema, v=1.0, x=np.zeros(3)),
            describe_schema=True,
        )
        del _SCHEMA_REGISTRY["test-lazy-schema"]
        del _SCHEMA_NAMES[id(schema)]
        before = wire_stats()["schemas_registered"]
        back = from_wire(msg)
        assert wire_stats()["schemas_registered"] == before + 1
        assert back.schema is not None
        assert "v" in back.schema and "x" in back.schema
        # The rebuilt schema is now interned: a second message with the
        # same name reuses it instead of re-registering.
        back2 = from_wire(msg)
        assert back2.schema is back.schema

    def test_unregistered_wire_type_refused(self):
        # The (module, qualname) pair in a wire message is attacker
        # input on TCP: decoding must consult the allowlist, never
        # import from the message.
        evil = {
            "kind": "control",
            "seq": 1,
            "schema": None,
            "event_ts": None,
            "payload": {
                "x": {
                    "__wire__": "dict",
                    "module": "subprocess",
                    "qualname": "Popen",
                    "data": {"args": ["true"]},
                }
            },
        }
        before = wire_stats()["rejected_payloads"]
        with pytest.raises(WireDecodeError, match="unregistered type"):
            from_wire(evil)
        assert wire_stats()["rejected_payloads"] == before + 1

    def test_pickle_refused_without_allow_pickle(self):
        before_pickled = wire_stats()["pickled_payloads"]
        msg = to_wire(StreamTuple.control(blob={1, 2, 3}))
        # The fallback itself is visible accounting...
        assert wire_stats()["pickled_payloads"] == before_pickled + 1
        # ...and a socket-side receiver refuses it outright.
        before = wire_stats()["rejected_payloads"]
        with pytest.raises(WireDecodeError, match="allow_pickle=False"):
            from_wire(msg, allow_pickle=False)
        assert wire_stats()["rejected_payloads"] == before + 1
        # A trusted same-image transport may still opt in.
        assert from_wire(msg, allow_pickle=True)["blob"] == {1, 2, 3}

    def test_eigensystem_is_allowlisted_by_default(self):
        es = Eigensystem(
            mean=np.zeros(3),
            basis=np.eye(3)[:, :1],
            eigenvalues=np.array([1.0]),
        )
        back = from_wire(
            to_wire(StreamTuple.control(state=es)), allow_pickle=False
        )
        assert isinstance(back["state"], Eigensystem)
