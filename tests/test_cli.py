"""Tests for the ``python -m repro`` CLI (cheap experiments only)."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_help_lists_experiments(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fig99"])
        assert exc.value.code == 2

    def test_runs_fig6(self, capsys):
        # fig6 is the cheapest full experiment (~5 s of simulation).
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "FIG6" in out
        assert "[fig6:" in out


def test_output_file_written(tmp_path, capsys):
    from repro.__main__ import main

    out_file = tmp_path / "report.md"
    assert main(["lat", "-o", str(out_file)]) == 0
    text = out_file.read_text()
    assert "## lat" in text
    assert "LAT:" in text
