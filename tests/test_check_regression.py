"""Unit tests for the CI speedup gate (``benchmarks/check_regression.py``).

``benchmarks/`` is not a package, so the module is loaded by file path.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _PATH)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def _payload(results, benchmark="core_update", **extra):
    return {"benchmark": benchmark, "results": results, **extra}


class TestRatios:
    def test_named_and_dim_keyed_entries(self):
        got = check_regression._ratios(
            _payload(
                [
                    {"name": "jit_vs_numpy", "speedup": 2.5},
                    {"dim": 250, "speedup": 1.4},
                ]
            )
        )
        assert got == {"jit_vs_numpy": 2.5, "dim=250": 1.4}

    def test_entry_without_name_or_dim_is_skipped_not_fatal(self, capsys):
        # Regression: this used to raise KeyError('dim') and take the
        # whole gate down with it.
        got = check_regression._ratios(
            _payload(
                [
                    {"speedup": 9.9, "n_rows": 64},
                    {"name": "good", "speedup": 1.5},
                ]
            )
        )
        assert got == {"good": 1.5}
        err = capsys.readouterr().err
        assert "neither 'name' nor 'dim'" in err

    def test_entry_without_speedup_is_ignored(self):
        got = check_regression._ratios(
            _payload([{"name": "setup_only", "wall_s": 3.0}])
        )
        assert got == {}


class TestCheck:
    def test_passes_within_tolerance(self):
        cur = _payload([{"dim": 250, "speedup": 1.9}])
        base = _payload([{"dim": 250, "speedup": 2.0}])
        assert check_regression.check(cur, base, tolerance=0.2) == []

    def test_fails_below_floor(self):
        cur = _payload([{"dim": 250, "speedup": 1.0}])
        base = _payload([{"dim": 250, "speedup": 2.0}])
        failures = check_regression.check(cur, base, tolerance=0.2)
        assert len(failures) == 1 and "dim=250" in failures[0]

    def test_malformed_entry_does_not_mask_other_ratios(self):
        cur = _payload(
            [{"speedup": 5.0}, {"name": "real", "speedup": 0.5}]
        )
        base = _payload([{"name": "real", "speedup": 2.0}])
        failures = check_regression.check(cur, base, tolerance=0.2)
        assert len(failures) == 1 and "real" in failures[0]


class TestMinSpeedups:
    def test_skipped_below_min_cpus(self):
        cur = _payload([{"name": "e4", "speedup": 1.0}], n_cpus=1)
        failures, skip = check_regression.check_min_speedups(
            cur, {"e4": 2.0}, min_cpus=4
        )
        assert failures == []
        assert skip is not None and "n_cpus=1" in skip

    def test_enforced_at_min_cpus(self):
        cur = _payload([{"name": "e4", "speedup": 1.0}], n_cpus=4)
        failures, skip = check_regression.check_min_speedups(
            cur, {"e4": 2.0}, min_cpus=4
        )
        assert skip is None
        assert len(failures) == 1 and "e4" in failures[0]

    def test_missing_case_is_a_failure(self):
        cur = _payload([], n_cpus=8)
        failures, _ = check_regression.check_min_speedups(
            cur, {"ghost": 2.0}, min_cpus=4
        )
        assert failures == ["ghost: named by --min-speedup but not measured"]


class TestMainEndToEnd:
    def _write(self, tmp_path, name, payload):
        p = tmp_path / name
        p.write_text(json.dumps(payload))
        return p

    def test_malformed_baseline_entry_no_longer_crashes(self, tmp_path):
        cur = self._write(
            tmp_path, "cur.json", _payload([{"dim": 250, "speedup": 2.0}])
        )
        base = self._write(
            tmp_path,
            "base.json",
            _payload(
                [{"speedup": 1.0}, {"dim": 250, "speedup": 2.0}]
            ),
        )
        assert (
            check_regression.main([str(cur), "--baseline", str(base)]) == 0
        )

    def test_regression_still_detected(self, tmp_path):
        cur = self._write(
            tmp_path, "cur.json", _payload([{"dim": 250, "speedup": 1.0}])
        )
        base = self._write(
            tmp_path, "base.json", _payload([{"dim": 250, "speedup": 2.0}])
        )
        assert (
            check_regression.main([str(cur), "--baseline", str(base)]) == 1
        )
