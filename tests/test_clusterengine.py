"""ClusterEngine: multi-node TCP runtime — parity, chaos, bookkeeping.

Every test here spawns real engine-host processes connected to the
coordinator over real TCP sockets on localhost; nothing is mocked below
the wire layer.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.data.streams import VectorStream
from repro.parallel.runner import ParallelStreamingPCA
from repro.streams import (
    ChaosScenario,
    ClusterEngine,
    FaultSpec,
    OperatorFailure,
    Telemetry,
    TelemetryConfig,
    cluster_flap_scenario,
    cluster_kill_host_scenario,
    run_scenario,
)

MIN_AFFINITY = 0.98


def _spectra(n=900, d=16, seed=0):
    rng = np.random.default_rng(seed)
    basis = np.linalg.qr(rng.normal(size=(d, 3)))[0]
    scales = np.array([8.0, 4.0, 2.0])
    return (
        rng.normal(size=(n, 3)) @ (basis.T * scales[:, None])
        + 0.1 * rng.normal(size=(n, d))
    )


def _pca_runner(runtime, **kw):
    # sync_gate_factor inf => no mid-run syncs, so each engine's input
    # subsequence (fixed by split_seed) fully determines its state and
    # the runtimes must agree numerically.
    return ParallelStreamingPCA(
        n_components=3,
        n_engines=3,
        alpha=1.0,
        runtime=runtime,
        batch_size=8,
        split_seed=7,
        sync_gate_factor=1e9,
        **kw,
    )


def _main_ops(app):
    names = {app.split.name, app.controller.name}
    if app.batcher is not None:
        names.add(app.batcher.name)
    return names


class TestClusterParity:
    def test_matches_synchronous_engine_over_tcp(self):
        X = _spectra()
        ref = _pca_runner("synchronous").run(VectorStream.from_array(X))
        got = _pca_runner("cluster").run(VectorStream.from_array(X))

        assert set(got.engine_states) == set(ref.engine_states)
        for i, ref_state in ref.engine_states.items():
            state = got.engine_states[i]
            assert state.n_seen == ref_state.n_seen
            np.testing.assert_allclose(
                state.eigenvalues, ref_state.eigenvalues, rtol=1e-8
            )
            np.testing.assert_allclose(
                state.mean, ref_state.mean, rtol=0, atol=1e-8
            )
            np.testing.assert_allclose(
                state.basis, ref_state.basis, rtol=0, atol=1e-8
            )
        np.testing.assert_allclose(
            got.eigenvalues, ref.eigenvalues, rtol=1e-8
        )
        np.testing.assert_array_equal(
            got.outlier_seqs(), ref.outlier_seqs()
        )
        assert len(got.diagnostics) == len(ref.diagnostics)


class TestClusterBookkeeping:
    def test_clean_run_stats_and_telemetry(self):
        X = _spectra(n=600)
        runner = _pca_runner("cluster")
        app = runner.build(VectorStream.from_array(X))
        tel = Telemetry(TelemetryConfig(metrics=True, tracing=False))
        engine = ClusterEngine(
            app.graph, main_ops=_main_ops(app), n_hosts=3, telemetry=tel
        )
        engine.run(timeout_s=120)

        stats = engine.cluster_stats
        assert stats["hosts"] == 3
        assert stats["host_deaths"] == 0
        assert stats["reconnects"] == 0
        assert stats["tuples_dropped"] == 0 and stats["tuples_lost"] == 0
        # Real traffic crossed the sockets in both directions.
        assert stats["tuples_to_hosts"] > 0
        assert stats["tuples_from_hosts"] > 0
        assert stats["frames_in"] > 0 and stats["frames_out"] > 0
        assert stats["bytes_in"] > 0 and stats["bytes_out"] > 0

        events = tel.events.events()
        connected = [
            e for e in events if e.get("kind") == "cluster_host_connected"
        ]
        assert {e["host"] for e in connected} == {0, 1, 2}
        # Host metric shards merged back under process=h<id> labels.
        shard_labels = {
            s.labels.get("process")
            for s in tel.metrics.collect()
            if hasattr(s, "labels") and s.labels.get("process")
        }
        assert {"h0", "h1", "h2"} <= shard_labels

    def test_fail_fast_without_tolerate_host_loss(self):
        X = _spectra(n=4000)
        runner = _pca_runner("cluster")
        app = runner.build(VectorStream.from_array(X))
        engine = ClusterEngine(
            app.graph, main_ops=_main_ops(app), n_hosts=3,
            tolerate_host_loss=False,
        )

        def _assassin():
            deadline = time.perf_counter() + 30.0
            while time.perf_counter() < deadline:
                link = engine._links.get(0)
                if link is not None and link.sent_to > 0:
                    engine.kill_host(0)
                    return
                time.sleep(0.01)

        threading.Thread(target=_assassin, daemon=True).start()
        with pytest.raises(OperatorFailure, match="host0"):
            engine.run(timeout_s=120)


class TestClusterChaos:
    def test_host_kill_needs_cluster_runtime(self):
        with pytest.raises(ValueError, match="cluster runtime"):
            ChaosScenario(
                name="bad",
                faults=(FaultSpec(kind="host_kill", op="pca-0"),),
                runtime="process",
            )

    def test_netsplit_needs_cluster_runtime(self):
        with pytest.raises(ValueError, match="cluster runtime"):
            ChaosScenario(
                name="bad",
                faults=(FaultSpec(kind="netsplit", op="pca-0"),),
                runtime="threaded",
            )

    def test_kill_engine_rejected_on_cluster(self):
        with pytest.raises(ValueError, match="host_kill"):
            ChaosScenario(
                name="bad",
                faults=(FaultSpec(kind="kill_engine", op="pca-0"),),
                runtime="cluster",
            )

    def test_survives_kill_one_of_three_hosts(self):
        report = run_scenario(cluster_kill_host_scenario(seed=0))
        assert report.ok, report.error
        assert report.affinity is not None
        assert report.affinity >= MIN_AFFINITY
        assert report.n_evictions >= 1
        kinds = [e.get("kind") for e in report.events]
        assert "cluster_host_dead" in kinds

    def test_survives_network_flap(self):
        report = run_scenario(cluster_flap_scenario(seed=0))
        assert report.ok, report.error
        assert report.n_reconnects >= 1
        assert report.affinity is not None
        assert report.affinity >= MIN_AFFINITY


class TestAcceptLoopResilience:
    def test_garbage_connections_do_not_kill_the_run(self):
        # Regression: a single malformed/hostile connection to the
        # coordinator port (the untrusted boundary) used to raise an
        # uncaught json/struct error in the accept thread, after which
        # hosts could never connect or redial and the run hung until
        # timeout.
        import struct

        X = _spectra(n=600)
        runner = _pca_runner("cluster")
        app = runner.build(VectorStream.from_array(X))
        engine = ClusterEngine(
            app.graph, main_ops=_main_ops(app), n_hosts=3
        )

        def _attack():
            deadline = time.perf_counter() + 30.0
            while engine._listener is None:
                if time.perf_counter() > deadline:
                    return
                time.sleep(0.005)
            addr = engine._listener.getsockname()
            junk_json = b"this is not json"
            payloads = [
                b"GET / HTTP/1.1\r\n\r\n",  # wrong protocol entirely
                b"RPW1" + b"\x00" * 16,  # empty body: junk JSON header
                # Valid magic, n_blobs pointing far past the buffer.
                b"RPW1"
                + struct.pack(
                    "!QII", len(junk_json), len(junk_json), 1 << 20
                )
                + junk_json,
                b"",  # connect-and-vanish
            ]
            for payload in payloads:
                try:
                    s = socket.create_connection(addr, timeout=5.0)
                    if payload:
                        s.sendall(payload)
                    s.close()
                except OSError:
                    return

        attacker = threading.Thread(target=_attack, daemon=True)
        attacker.start()
        engine.run(timeout_s=120)
        attacker.join(timeout=10.0)
        stats = engine.cluster_stats
        assert stats["host_deaths"] == 0
        assert stats["tuples_from_hosts"] > 0


class TestHostThreadFailure:
    def test_sender_budget_exhaustion_exits_host_process(
        self, monkeypatch, capsys
    ):
        # Regression: a ConnectionError (redial budget exhausted) used
        # to kill only the daemon sender thread — the host kept
        # computing with output silently never sent, and the
        # coordinator saw a live, never-quiescing host until the run
        # timeout.  The thread must take the whole host process down so
        # death detection takes over.
        from collections import deque

        from repro.streams import clusterengine as ce

        exits = []
        monkeypatch.setattr(ce.os, "_exit", lambda code: exits.append(code))

        class _DeadChannel:
            def send(self, msg):
                raise ConnectionError("reconnect budget exhausted")

        outq = deque([("dst", 0, {"kind": "control"})])
        ce._host_sender_loop(
            _DeadChannel(), outq, threading.Condition(),
            {"received": 0, "sent": 0}, threading.Event(), 7,
        )
        assert exits == [1]
        assert "death detection" in capsys.readouterr().out


class TestPickleGate:
    def test_is_loopback_bind(self):
        from repro.streams.clusterengine import _is_loopback_bind

        assert _is_loopback_bind("127.0.0.1")
        assert _is_loopback_bind("127.1.2.3")
        assert _is_loopback_bind("::1")
        assert _is_loopback_bind("localhost")
        assert not _is_loopback_bind("0.0.0.0")
        assert not _is_loopback_bind("::")
        assert not _is_loopback_bind("")
        assert not _is_loopback_bind("10.0.0.5")
        assert not _is_loopback_bind("example.com")

    def test_non_loopback_bind_refuses_pickled_done_payloads(self):
        # Regression: "done" frames were decoded with allow_pickle=True
        # gated only by the cleartext run_id — on a non-loopback bind an
        # on-path observer could replay it and deliver a pickle
        # (arbitrary code execution on the coordinator).
        import pickle

        from repro.streams.tuples import WireDecodeError

        X = _spectra(n=60)
        app = _pca_runner("cluster").build(VectorStream.from_array(X))
        with pytest.warns(RuntimeWarning, match="non-loopback"):
            engine = ClusterEngine(
                app.graph, main_ops=_main_ops(app), n_hosts=3,
                bind_host="0.0.0.0",
            )
        assert engine._pickle_ok is False
        op_name = engine._host_ops[0][0].name
        engine._links[0].done = {
            "ops": {
                op_name: {
                    "attr": {
                        "__wire__": "pickle",
                        "data": pickle.dumps({1, 2}),
                    }
                }
            },
            "metrics": [],
            "counters": {"received": 0, "sent": 0},
            "transport": {},
        }
        with pytest.raises(WireDecodeError, match="allow_pickle=False"):
            engine._apply_done(0)

    def test_loopback_bind_still_trusts_done_payloads(self):
        import pickle

        X = _spectra(n=60)
        app = _pca_runner("cluster").build(VectorStream.from_array(X))
        engine = ClusterEngine(
            app.graph, main_ops=_main_ops(app), n_hosts=3
        )
        assert engine._pickle_ok is True
        op = engine._host_ops[0][0]
        engine._links[0].done = {
            "ops": {
                op.name: {
                    "extra_attr": {
                        "__wire__": "pickle",
                        "data": pickle.dumps({1, 2}),
                    }
                }
            },
            "metrics": [],
            "counters": {"received": 0, "sent": 0},
            "transport": {},
        }
        engine._apply_done(0)
        assert op.extra_attr == {1, 2}


class TestClusterCLI:
    def test_cluster_command_smoke(self, tmp_path):
        from repro.__main__ import main

        out = tmp_path / "cluster.jsonl"
        rc = main([
            "cluster", "--rows", "900", "--engines", "3",
            "--out", str(out),
        ])
        assert rc == 0
        assert out.exists() and out.stat().st_size > 0
