"""Tests for the M-scale calibration machinery."""

import numpy as np
import pytest

from repro.core.calibration import (
    breakdown_point,
    calibrate_c2,
    calibrate_delta,
    consistent_rho,
    expected_rho,
)
from repro.core.rho import BisquareRho, make_rho


class TestExpectedRho:
    def test_monotone_decreasing_in_c2(self):
        # Wider acceptance region => smaller expected rho.
        values = [
            expected_rho(BisquareRho(c2=c2), dof=10)
            for c2 in (0.5, 1.0, 2.0, 5.0, 20.0)
        ]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_bounds(self):
        assert 0.0 < expected_rho(BisquareRho(c2=2.0), dof=5) < 1.0

    def test_tiny_c2_rejects_everything(self):
        assert expected_rho(BisquareRho(c2=1e-6), dof=5) == pytest.approx(
            1.0, abs=1e-6
        )

    def test_invalid_dof(self):
        with pytest.raises(ValueError, match="dof"):
            expected_rho(BisquareRho(), dof=0)

    def test_matches_monte_carlo(self):
        rho = BisquareRho(c2=3.0)
        dof = 8
        rng = np.random.default_rng(0)
        x = rng.chisquare(dof, size=200_000)
        mc = float(np.mean(rho.rho(x / dof)))
        assert expected_rho(rho, dof) == pytest.approx(mc, abs=5e-3)


class TestCalibrateC2:
    @pytest.mark.parametrize("delta", [0.25, 0.5, 0.75])
    @pytest.mark.parametrize("dof", [1, 5, 50, 500])
    def test_calibration_solves_equation(self, delta, dof):
        c2 = calibrate_c2(delta, dof)
        rho = make_rho("bisquare", c2=c2)
        assert expected_rho(rho, dof) == pytest.approx(delta, abs=1e-9)

    @pytest.mark.parametrize("family", ["bisquare", "cauchy", "skipped"])
    def test_all_families(self, family):
        c2 = calibrate_c2(0.5, 20, family)
        rho = make_rho(family, c2=c2)
        assert expected_rho(rho, 20) == pytest.approx(0.5, abs=1e-9)

    def test_smaller_delta_means_larger_c2(self):
        # Less rejection mass => wider acceptance.
        c_small = calibrate_c2(0.2, 10)
        c_big = calibrate_c2(0.8, 10)
        assert c_small > c_big

    def test_invalid_delta(self):
        for delta in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="delta"):
                calibrate_c2(delta, 10)

    def test_roundtrip_with_calibrate_delta(self):
        c2 = calibrate_c2(0.37, 12)
        assert calibrate_delta(BisquareRho(c2=c2), 12) == pytest.approx(
            0.37, abs=1e-9
        )


class TestBreakdownPoint:
    def test_symmetric_max_at_half(self):
        assert breakdown_point(0.5) == 0.5
        assert breakdown_point(0.3) == 0.3
        assert breakdown_point(0.8) == pytest.approx(0.2)

    def test_invalid(self):
        with pytest.raises(ValueError):
            breakdown_point(0.0)
        with pytest.raises(ValueError):
            breakdown_point(1.0)


class TestConsistentRho:
    def test_returns_calibrated_family(self):
        rho = consistent_rho(0.5, 30)
        assert isinstance(rho, BisquareRho)
        assert expected_rho(rho, 30) == pytest.approx(0.5, abs=1e-9)

    def test_mscale_is_fisher_consistent(self):
        """On clean Gaussian residuals the M-scale equals the classic one."""
        from repro.core.batch import mscale_fixed_point

        dof = 20
        rho = consistent_rho(0.5, dof)
        rng = np.random.default_rng(3)
        # r² ~ s²·chi2_dof with s = 2.0 => classical scale = 4·dof
        r2 = 4.0 * rng.chisquare(dof, size=100_000)
        sigma2 = mscale_fixed_point(r2, rho, 0.5)
        assert sigma2 == pytest.approx(4.0 * dof, rel=0.02)
