"""Tests for stream tuples and schemas."""

import numpy as np
import pytest

from repro.streams.tuples import (
    FieldType,
    SchemaError,
    StreamSchema,
    StreamTuple,
    TupleKind,
)


class TestFieldType:
    def test_float(self):
        assert FieldType.FLOAT.check(1.5)
        assert FieldType.FLOAT.check(3)
        assert not FieldType.FLOAT.check(True)
        assert not FieldType.FLOAT.check("x")

    def test_int(self):
        assert FieldType.INT.check(3)
        assert FieldType.INT.check(np.int64(3))
        assert not FieldType.INT.check(True)
        assert not FieldType.INT.check(3.0)

    def test_vector(self):
        assert FieldType.VECTOR.check(np.zeros(3))
        assert not FieldType.VECTOR.check(np.zeros((2, 2)))
        assert not FieldType.VECTOR.check([1.0, 2.0])

    def test_string_and_object(self):
        assert FieldType.STRING.check("abc")
        assert not FieldType.STRING.check(5)
        assert FieldType.OBJECT.check(object())


class TestStreamSchema:
    def test_validate_ok(self):
        schema = StreamSchema({"x": FieldType.VECTOR, "seq": FieldType.INT})
        schema.validate({"x": np.zeros(3), "seq": 1})

    def test_missing_field(self):
        schema = StreamSchema({"x": FieldType.VECTOR, "seq": FieldType.INT})
        with pytest.raises(SchemaError, match="missing"):
            schema.validate({"x": np.zeros(3)})

    def test_extra_field(self):
        schema = StreamSchema({"x": FieldType.VECTOR})
        with pytest.raises(SchemaError, match="extra"):
            schema.validate({"x": np.zeros(3), "y": 1})

    def test_wrong_type(self):
        schema = StreamSchema({"seq": FieldType.INT})
        with pytest.raises(SchemaError, match="expects int"):
            schema.validate({"seq": "nope"})

    def test_contains(self):
        schema = StreamSchema({"x": FieldType.VECTOR})
        assert "x" in schema
        assert "y" not in schema

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            StreamSchema({})


class TestStreamTuple:
    def test_data_with_schema_validated(self):
        schema = StreamSchema({"seq": FieldType.INT})
        t = StreamTuple.data(schema, seq=4)
        assert t.is_data
        assert t["seq"] == 4
        with pytest.raises(SchemaError):
            StreamTuple.data(schema, seq="bad")

    def test_control_is_schema_free(self):
        t = StreamTuple.control(type="ready", engine=2)
        assert t.is_control
        assert t.get("engine") == 2
        assert t.get("missing", -1) == -1

    def test_punctuation(self):
        t = StreamTuple.punctuation()
        assert t.is_punctuation
        assert not t.is_data

    def test_sequence_numbers_monotone(self):
        a, b = StreamTuple.data(x=1), StreamTuple.data(x=2)
        assert b.seq > a.seq

    def test_nbytes(self):
        t = StreamTuple.data(x=np.zeros(100), seq=1, name="abc")
        # 16 header + 800 vector + 8 int + 3 str
        assert t.nbytes() == 16 + 800 + 8 + 3
