"""Tests for eigensystem merging — the parallel-sync combination rule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BatchPCA,
    Eigensystem,
    eigensystems_consistent,
    largest_principal_angle,
    merge_eigensystems,
    merge_pair,
    merge_weights,
)


def _state_from(x: np.ndarray, p: int) -> Eigensystem:
    st_ = BatchPCA(p).fit(x).to_eigensystem()
    st_.sum_count = float(x.shape[0])
    st_.sum_weight = float(x.shape[0])
    st_.n_seen = x.shape[0]
    return st_


class TestMergeExactness:
    def test_two_way_merge_matches_pooled_batch(self, small_data):
        """Merging disjoint halves ≈ batch PCA of the union (the identity
        the whole parallel scheme rests on)."""
        a, b = small_data[:1500], small_data[1500:]
        merged = merge_pair(_state_from(a, 3), _state_from(b, 3), 3)
        full = BatchPCA(3).fit(small_data)
        assert largest_principal_angle(
            merged.basis, full.components_.T
        ) < 1e-3
        assert np.allclose(merged.eigenvalues, full.eigenvalues_, rtol=1e-3)
        assert np.allclose(merged.mean, full.mean_, atol=1e-12)

    def test_many_way_merge(self, small_data):
        parts = np.array_split(small_data, 5)
        merged = merge_eigensystems([_state_from(p, 3) for p in parts], 3)
        full = BatchPCA(3).fit(small_data)
        assert largest_principal_angle(
            merged.basis, full.components_.T
        ) < 1e-3
        assert np.allclose(merged.eigenvalues, full.eigenvalues_, rtol=1e-3)

    def test_mean_terms_matter_when_means_differ(self, rng):
        """With shifted partitions, the exact merge captures the
        between-group variance the eq. 16 approximation drops."""
        # Low-rank partitions (so p-truncation is faithful) with a large
        # mean shift between them.
        scale = np.array([3.0, 2.0, 1.5] + [0.05] * 5)
        a = rng.standard_normal((500, 8)) * scale
        b = rng.standard_normal((500, 8)) * scale
        b[:, 0] += 8.0
        sa, sb = _state_from(a, 3), _state_from(b, 3)
        exact = merge_pair(sa, sb, 3, exact=True)
        approx = merge_pair(sa, sb, 3, exact=False)
        full = BatchPCA(3).fit(np.vstack([a, b]))
        err_exact = abs(exact.eigenvalues[0] - full.eigenvalues_[0])
        err_approx = abs(approx.eigenvalues[0] - full.eigenvalues_[0])
        assert err_exact < 0.02 * full.eigenvalues_[0]
        assert err_approx > 10 * max(err_exact, 1e-12)

    def test_approximation_fine_when_means_close(self, small_data):
        a, b = small_data[:1500], small_data[1500:]
        sa, sb = _state_from(a, 3), _state_from(b, 3)
        exact = merge_pair(sa, sb, 3, exact=True)
        approx = merge_pair(sa, sb, 3, exact=False)
        assert np.allclose(
            exact.eigenvalues, approx.eigenvalues, rtol=0.02
        )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 9999), split=st.floats(0.2, 0.8))
    def test_hypothesis_trace_additivity(self, seed, split):
        """Merged total variance (kept at full rank) equals the pooled
        second moment about the pooled mean."""
        r = np.random.default_rng(seed)
        x = r.standard_normal((300, 6)) * np.array([3, 2, 1.5, 1, 0.5, 0.2])
        k = int(300 * split)
        sa, sb = _state_from(x[:k], 6), _state_from(x[k:], 6)
        merged = merge_eigensystems([sa, sb], 6)
        y = x - x.mean(axis=0)
        pooled_trace = float(np.sum(y * y)) / 300
        assert merged.eigenvalues.sum() == pytest.approx(
            pooled_trace, rel=1e-6
        )


class TestMergeWeights:
    def test_proportional_to_weight_sums(self):
        s1 = Eigensystem.empty(4)
        s2 = Eigensystem.empty(4)
        s1.sum_weight, s2.sum_weight = 30.0, 10.0
        w = merge_weights([s1, s2])
        assert np.allclose(w, [0.75, 0.25])

    def test_falls_back_to_counts(self):
        s1, s2 = Eigensystem.empty(4), Eigensystem.empty(4)
        s1.sum_count, s2.sum_count = 10.0, 30.0
        assert np.allclose(merge_weights([s1, s2]), [0.25, 0.75])

    def test_uniform_when_everything_zero(self):
        w = merge_weights([Eigensystem.empty(4), Eigensystem.empty(4)])
        assert np.allclose(w, [0.5, 0.5])


class TestMergeBookkeeping:
    def test_sums_added_and_sync_reset(self, small_data):
        a, b = small_data[:1000], small_data[1000:]
        sa, sb = _state_from(a, 2), _state_from(b, 2)
        sa.n_since_sync, sb.n_since_sync = 77, 33
        merged = merge_pair(sa, sb, 2)
        assert merged.sum_count == pytest.approx(3000)
        assert merged.n_seen == 3000
        assert merged.n_since_sync == 0

    def test_single_system_merge_is_copy(self, small_data):
        s = _state_from(small_data, 2)
        s.n_since_sync = 42
        out = merge_eigensystems([s], 2)
        assert np.allclose(out.basis, s.basis)
        assert out.n_since_sync == 0
        out.basis[0, 0] += 1  # must not alias the input
        assert s.basis[0, 0] != out.basis[0, 0]

    def test_explicit_weights(self, small_data):
        a, b = small_data[:1000], small_data[1000:]
        merged = merge_eigensystems(
            [_state_from(a, 2), _state_from(b, 2)], 2, weights=[1.0, 0.0]
        )
        ref = _state_from(a, 2)
        assert largest_principal_angle(merged.basis, ref.basis) < 1e-6

    def test_errors(self, small_data):
        s = _state_from(small_data, 2)
        with pytest.raises(ValueError, match="at least one"):
            merge_eigensystems([], 2)
        other = Eigensystem.empty(7)
        with pytest.raises(ValueError, match="dimension mismatch"):
            merge_eigensystems([s, other], 2)
        with pytest.raises(ValueError, match="one per system"):
            merge_eigensystems([s, s.copy()], 2, weights=[1.0])
        with pytest.raises(ValueError, match="not all be zero"):
            merge_eigensystems([s, s.copy()], 2, weights=[0.0, 0.0])


class TestConsistencyCheck:
    def test_consistent_systems(self, small_data):
        a, b = small_data[:1500], small_data[1500:]
        assert eigensystems_consistent(
            [_state_from(a, 3), _state_from(b, 3)]
        )

    def test_inconsistent_scales(self, small_data):
        sa = _state_from(small_data, 3)
        sb = sa.copy()
        sb.scale = sa.scale * 10
        assert not eigensystems_consistent([sa, sb])

    def test_inconsistent_subspaces(self, rng):
        x1 = rng.standard_normal((500, 10)) * np.array([5] + [0.1] * 9)
        x2 = rng.standard_normal((500, 10)) * np.array([0.1, 5] + [0.1] * 8)
        assert not eigensystems_consistent(
            [_state_from(x1, 1), _state_from(x2, 1)]
        )
