"""Tests for the StreamingPCAOperator control protocol."""

import numpy as np
import pytest

from repro.core import RobustIncrementalPCA, largest_principal_angle
from repro.data import PlantedSubspaceModel
from repro.parallel.pca_operator import StreamingPCAOperator
from repro.streams.tuples import StreamTuple


@pytest.fixture
def model():
    return PlantedSubspaceModel(
        dim=30, signal_variances=(16.0, 9.0, 4.0), noise_std=0.3, seed=2
    )


def _make_op(engine_id=0, alpha=0.99, **kwargs):
    est = RobustIncrementalPCA(3, alpha=alpha, init_size=20)
    op = StreamingPCAOperator(
        f"pca-{engine_id}", engine_id=engine_id, estimator=est, **kwargs
    )
    out = []
    op.bind(lambda tup, port: out.append((tup, port)))
    return op, out


def _feed(op, model, rng, n):
    for i, x in enumerate(model.sample(n, rng)):
        op._dispatch(StreamTuple.data(x=x, seq=i), 0)


class TestDataPath:
    def test_updates_estimator_and_emits_diagnostics(self, model, rng):
        op, out = _make_op()
        _feed(op, model, rng, 100)
        assert op.estimator.n_seen == 100
        diags = [t for t, port in out if port == 1 and "weight" in t.payload]
        assert len(diags) == 80  # after init_size warm-up
        assert all(t["engine"] == 0 for t in diags)

    def test_diagnostics_can_be_disabled(self, model, rng):
        op, out = _make_op(emit_diagnostics=False)
        _feed(op, model, rng, 100)
        assert [t for t, port in out if port == 1] == []

    def test_snapshots_emitted(self, model, rng):
        op, out = _make_op(snapshot_every=25)
        _feed(op, model, rng, 100)
        snaps = [t for t, port in out
                 if port == 1 and t.get("kind") == "snapshot"]
        assert len(snaps) == 4  # init at 20, snapshots at 25/50/75/100
        assert snaps[0]["state"].n_components == 3


class TestSyncProtocol:
    def test_ready_announced_once_when_gate_opens(self, model, rng):
        op, out = _make_op(alpha=0.99)  # N=100, gate at 150
        _feed(op, model, rng, 400)
        readies = [t for t, port in out if port == 0 and t.get("type") == "ready"]
        assert len(readies) == 1
        assert readies[0]["engine"] == 0

    def test_share_replies_with_state(self, model, rng):
        op, out = _make_op()
        _feed(op, model, rng, 100)
        op._dispatch(StreamTuple.control(type="share"), 1)
        states = [t for t, port in out if port == 0 and t.get("type") == "state"]
        assert len(states) == 1
        assert states[0]["state"].n_components == 3
        assert op.n_states_shared == 1

    def test_share_before_init_is_noop(self, model, rng):
        op, out = _make_op()
        _feed(op, model, rng, 5)  # still warming up
        op._dispatch(StreamTuple.control(type="share"), 1)
        assert [t for t, _ in out if t.get("type") == "state"] == []

    def test_merge_installs_combined_state(self, model, rng):
        op, out = _make_op(alpha=0.99)
        _feed(op, model, rng, 200)
        # Build a second, independent engine's state.
        other = RobustIncrementalPCA(3, alpha=0.99, init_size=20)
        other.partial_fit(model.sample(200, np.random.default_rng(5)))
        incoming = other.public_state()

        before = op.estimator.state.basis.copy()
        op._dispatch(StreamTuple.control(type="merge", state=incoming), 1)
        assert op.n_syncs_received == 1
        assert op.estimator.state.n_since_sync == 0
        after = op.estimator.state.basis
        # Merged basis differs from the local one but spans ~the truth.
        assert not np.allclose(after[:, :3], before[:, :3])
        assert largest_principal_angle(after[:, :3], model.basis) < 0.3

    def test_ready_rearmed_after_merge(self, model, rng):
        op, out = _make_op(alpha=0.99)  # N = 100
        _feed(op, model, rng, 200)
        assert sum(1 for t, _ in out if t.get("type") == "ready") == 1
        other = RobustIncrementalPCA(3, alpha=0.99, init_size=20)
        other.partial_fit(model.sample(150, np.random.default_rng(5)))
        op._dispatch(
            StreamTuple.control(type="merge", state=other.public_state()), 1
        )
        _feed(op, model, rng, 200)
        assert sum(1 for t, _ in out if t.get("type") == "ready") == 2

    def test_merge_before_init_is_dropped(self, model, rng):
        op, out = _make_op()
        other = RobustIncrementalPCA(3, alpha=0.99, init_size=20)
        other.partial_fit(model.sample(100, np.random.default_rng(5)))
        op._dispatch(
            StreamTuple.control(type="merge", state=other.public_state()), 1
        )
        assert op.n_syncs_received == 0

    def test_unknown_control_message(self, model, rng):
        op, _ = _make_op()
        with pytest.raises(ValueError, match="unknown control"):
            op._dispatch(StreamTuple.control(type="reboot"), 1)


class TestLifecycle:
    def test_final_state_on_close(self, model, rng):
        op, out = _make_op()
        _feed(op, model, rng, 100)
        op._dispatch(StreamTuple.punctuation(), 0)
        finals = [t for t, port in out if port == 0 and t.get("type") == "final"]
        assert len(finals) == 1
        assert finals[0]["state"].n_seen == 100
        assert op.is_closed

    def test_control_punctuation_does_not_close(self, model, rng):
        op, _ = _make_op()
        _feed(op, model, rng, 50)
        op._dispatch(StreamTuple.punctuation(), 1)  # control port
        assert not op.is_closed

    def test_diagnostics_dict(self, model, rng):
        op, _ = _make_op()
        _feed(op, model, rng, 100)
        d = op.diagnostics()
        assert d["engine"] == 0
        assert d["n_seen"] == 100

    def test_validation(self):
        est = RobustIncrementalPCA(2)
        with pytest.raises(ValueError, match="sync_gate_factor"):
            StreamingPCAOperator("p", 0, est, sync_gate_factor=0.0)
        with pytest.raises(ValueError, match="snapshot_every"):
            StreamingPCAOperator("p", 0, est, snapshot_every=-1)


class TestConcurrentStateReads:
    """Regression tests for the serving-layer thread-safety guard: the
    estimator's block update mutates the eigensystem *in place*, so a
    reader on another thread must only ever see state through
    ``published_state()`` (copied under the state lock)."""

    def test_published_state_none_during_warmup(self):
        op, _ = _make_op()
        assert op.published_state() is None

    def test_published_state_is_a_torn_free_copy(self, model, rng):
        op, _ = _make_op()
        _feed(op, model, rng, 100)
        state = op.published_state()
        before = state.basis.copy()
        _feed(op, model, rng, 500)  # keep mutating in place
        np.testing.assert_array_equal(state.basis, before)

    def test_concurrent_reads_during_block_updates(self, model, rng):
        """Hammer ``published_state`` from two reader threads while the
        owner thread streams block updates; every observed state must be
        internally consistent (orthonormal basis, finite eigenvalues,
        matching shapes) — a torn read fails these invariants."""
        import threading

        op, _ = _make_op()
        op.estimator.update_block(model.sample(100, rng))
        stop = threading.Event()
        problems: list[str] = []

        def reader():
            while not stop.is_set():
                state = op.published_state()
                if state is None:
                    continue
                basis, eigs = state.basis, state.eigenvalues
                if basis.shape[1] != eigs.shape[0]:
                    problems.append("shape mismatch")
                    return
                if not np.all(np.isfinite(basis)):
                    problems.append("non-finite basis")
                    return
                gram = basis.T @ basis
                if not np.allclose(gram, np.eye(gram.shape[0]), atol=1e-6):
                    problems.append("basis not orthonormal (torn read?)")
                    return

        threads = [
            threading.Thread(target=reader, daemon=True) for _ in range(2)
        ]
        for t in threads:
            t.start()
        try:
            for _ in range(60):
                with op._lock():
                    op.estimator.update_block(model.sample(64, rng))
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10.0)
        assert problems == []

    def test_snapshot_listener_receives_copies(self, model, rng):
        seen = []
        op, _ = _make_op(snapshot_every=25)
        op.add_snapshot_listener(
            lambda engine_id, state: seen.append((engine_id, state))
        )
        _feed(op, model, rng, 100)
        assert seen
        assert all(eid == 0 for eid, _ in seen)
        frozen = seen[0][1].basis.copy()
        _feed(op, model, rng, 200)
        np.testing.assert_array_equal(seen[0][1].basis, frozen)

    def test_broken_listener_does_not_stall_stream(self, model, rng):
        op, _ = _make_op(snapshot_every=25)
        op.add_snapshot_listener(lambda *a: 1 / 0)
        _feed(op, model, rng, 100)  # must not raise
        assert op.estimator.n_seen == 100

    def test_operator_survives_pickle_roundtrip(self, model, rng):
        """The ProcessEngine ships operators to workers and their
        ``__dict__`` payloads back through multiprocessing queues; the
        state lock and listeners must never reach a pickler."""
        import pickle

        est = RobustIncrementalPCA(3, alpha=0.99, init_size=20)
        op = StreamingPCAOperator("pca-0", engine_id=0, estimator=est)
        op.add_snapshot_listener(lambda *a: None)
        op.estimator.update_block(model.sample(60, rng))
        clone = pickle.loads(pickle.dumps(op))
        assert clone.estimator.n_seen == 60
        # the revived lock is a real lock, usable immediately
        assert clone.published_state() is not None
        assert clone._snapshot_listeners == []
