"""Tests for the contamination models."""

import numpy as np
import pytest

from repro.data.outliers import (
    GrossOutlierInjector,
    MixtureContaminator,
    SpikeInjector,
    contaminate_block,
)


class TestGrossOutlierInjector:
    def test_rate_and_logging(self, rng):
        inj = GrossOutlierInjector(0.2, 10.0, rng)
        n_corrupted = 0
        for i in range(5000):
            _, bad = inj(np.zeros(8))
            n_corrupted += bad
        assert n_corrupted == len(inj.injected_steps)
        assert 0.17 < n_corrupted / 5000 < 0.23

    def test_steps_are_one_based_positions(self, rng):
        inj = GrossOutlierInjector(1.0 - 1e-12, 10.0, rng)
        inj(np.zeros(4))
        assert list(inj.steps) == [1]

    def test_corruption_magnitude(self, rng):
        inj = GrossOutlierInjector(0.999999, 10.0, rng)
        out, bad = inj(np.zeros(100))
        assert bad
        assert np.std(out) == pytest.approx(10.0, rel=0.3)

    def test_wrap_stream(self, rng):
        inj = GrossOutlierInjector(0.5, 10.0, rng)
        out = list(inj.wrap(np.zeros((100, 4))))
        assert len(out) == 100
        assert len(inj.injected_steps) > 10

    def test_zero_rate_never_corrupts(self, rng):
        inj = GrossOutlierInjector(0.0, 10.0, rng)
        for _ in range(100):
            _, bad = inj(np.ones(3))
            assert not bad

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="rate"):
            GrossOutlierInjector(1.0, 10.0, rng)
        with pytest.raises(ValueError, match="amplitude"):
            GrossOutlierInjector(0.1, 0.0, rng)


class TestSpikeInjector:
    def test_only_few_pixels_touched(self, rng):
        inj = SpikeInjector(0.999999, 50.0, rng, n_pixels=3)
        x = np.zeros(100)
        out, bad = inj(x)
        assert bad
        assert np.count_nonzero(out) == 3
        assert np.all(out[out != 0] >= 50.0)
        # Input not modified in place.
        assert np.all(x == 0)

    def test_pixels_capped_at_dim(self, rng):
        inj = SpikeInjector(0.999999, 5.0, rng, n_pixels=10)
        out, _ = inj(np.zeros(4))
        assert np.count_nonzero(out) == 4

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="n_pixels"):
            SpikeInjector(0.1, 5.0, rng, n_pixels=0)


class TestMixtureContaminator:
    def test_replaces_with_location(self, rng):
        loc = np.arange(5.0)
        inj = MixtureContaminator(0.999999, loc, rng)
        out, bad = inj(np.zeros(5))
        assert bad
        assert np.array_equal(out, loc)

    def test_jitter(self, rng):
        loc = np.zeros(50)
        inj = MixtureContaminator(0.999999, loc, rng, jitter=2.0)
        out, _ = inj(np.zeros(50))
        assert np.std(out) == pytest.approx(2.0, rel=0.4)

    def test_shape_mismatch(self, rng):
        inj = MixtureContaminator(0.999999, np.zeros(3), rng)
        with pytest.raises(ValueError, match="shape"):
            inj(np.zeros(4))


class TestContaminateBlock:
    def test_mask_and_rate(self, rng):
        x = np.zeros((2000, 6))
        out, mask = contaminate_block(x, 0.1, 5.0, rng)
        assert out.shape == x.shape
        assert 0.07 < mask.mean() < 0.13
        assert np.all(out[~mask] == 0)
        assert np.all(out[mask] != 0)
        # Original untouched.
        assert np.all(x == 0)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="block"):
            contaminate_block(np.zeros(5), 0.1, 5.0, rng)
        with pytest.raises(ValueError, match="rate"):
            contaminate_block(np.zeros((5, 2)), 1.5, 5.0, rng)
