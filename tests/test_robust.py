"""Tests for the robust incremental PCA — the paper's core algorithm."""

import numpy as np
import pytest

from repro.core import (
    IncrementalPCA,
    RobustEigenvalueEstimator,
    RobustIncrementalPCA,
    largest_principal_angle,
)
from repro.data import GrossOutlierInjector, PlantedSubspaceModel


@pytest.fixture
def contaminated(small_model, rng):
    clean = small_model.sample(4000, rng)
    injector = GrossOutlierInjector(0.05, 25.0, np.random.default_rng(99))
    stream = np.empty_like(clean)
    for i, x in enumerate(clean):
        stream[i], _ = injector(x)
    return stream, injector


class TestCleanData:
    def test_matches_classic_on_clean_stream(self, small_model, small_data):
        robust = RobustIncrementalPCA(3, alpha=0.999).partial_fit(small_data)
        classic = IncrementalPCA(3, alpha=0.999).partial_fit(small_data)
        angle = largest_principal_angle(
            robust.state.basis[:, :3], classic.state.basis
        )
        assert angle < 0.15
        # Both near the planted truth.
        assert largest_principal_angle(
            robust.state.basis[:, :3], small_model.basis
        ) < 0.1

    def test_scale_consistent_on_clean_data(self, small_model, small_data):
        robust = RobustIncrementalPCA(3, alpha=0.999).partial_fit(small_data)
        expected = (40 - 3) * small_model.noise_std**2
        # Calibration makes the M-scale match the classical scale.
        assert robust.scale_ == pytest.approx(expected, rel=0.35)

    def test_few_outliers_flagged_on_clean_data(self, small_data):
        robust = RobustIncrementalPCA(3, alpha=0.999).partial_fit(small_data)
        assert robust.n_outliers < 0.01 * len(small_data)


class TestContamination:
    def test_survives_gross_contamination(self, small_model, contaminated):
        stream, _ = contaminated
        robust = RobustIncrementalPCA(3, alpha=0.998).partial_fit(stream)
        angle = largest_principal_angle(
            robust.state.basis[:, :3], small_model.basis
        )
        assert angle < 0.15

    def test_classic_breaks_on_same_stream(self, small_model, contaminated):
        stream, _ = contaminated
        classic = IncrementalPCA(3, alpha=0.998).partial_fit(stream)
        angle = largest_principal_angle(classic.state.basis, small_model.basis)
        assert angle > 0.5

    def test_outliers_detected(self, contaminated):
        stream, injector = contaminated
        robust = RobustIncrementalPCA(3, alpha=0.998)
        flagged = []
        for i, x in enumerate(stream, start=1):
            r = robust.update(x)
            if r is not None and r.is_outlier:
                flagged.append(i)
        truth = set(int(s) for s in injector.steps)
        flagged_set = set(flagged)
        tp = len(truth & flagged_set)
        assert tp / len(truth) > 0.9  # recall over the whole stream
        # Precision is scored after the initial transient: the paper's
        # own remedy ("a procedure with α<1 is able to eliminate the
        # effect of the initial transients", §II-B) — the non-robust
        # warm start over-flags until the M-scale settles.
        settled = {s for s in flagged_set if s > 2000}
        settled_truth = {s for s in truth if s > 2000}
        assert settled, "no flags after the transient?"
        assert len(settled & settled_truth) / len(settled) > 0.95

    def test_outlier_updates_do_not_move_the_basis(self, small_model, rng):
        robust = RobustIncrementalPCA(3, alpha=0.999)
        robust.partial_fit(small_model.sample(1000, rng))
        basis_before = robust.state.basis.copy()
        junk = 40.0 * rng.standard_normal((20, 40))
        robust.partial_fit(junk)
        assert np.allclose(robust.state.basis, basis_before, atol=1e-9)
        assert robust.n_outliers >= 20

    def test_point_mass_contamination(self, small_model, rng):
        """Coherent point-mass contamination is *structure*, not noise.

        A tight far cluster carries genuine variance, so every PCA —
        including batch Maronna — devotes one component to it.  The
        robust property that must survive is that the *other* components
        still recover the signal subspace (scattered-junk estimators
        lose everything here; see the gross-contamination test for the
        classical baseline's failure).
        """
        from repro.core import principal_angles
        from repro.data import MixtureContaminator

        loc = 30.0 * np.ones(40)
        inj = MixtureContaminator(0.15, loc, rng, jitter=0.1)
        robust = RobustIncrementalPCA(4, alpha=0.998)
        for x in small_model.stream(4000, rng):
            xc, _ = inj(x)
            robust.update(xc)
        basis = robust.state.basis[:, :4]
        # The true 3-dim signal subspace is contained in the estimated
        # 4-dim basis (all three principal angles small)...
        angles = principal_angles(small_model.basis, basis)
        assert np.all(angles < 0.25)
        # ...and one estimated direction aligns with the contamination.
        unit_loc = loc / np.linalg.norm(loc)
        assert np.max(np.abs(unit_loc @ basis)) > 0.9


class TestRecursions:
    def test_running_sums_behaviour(self, small_data):
        alpha = 0.99
        robust = RobustIncrementalPCA(3, alpha=alpha, init_size=20)
        robust.partial_fit(small_data[:2000])
        st = robust.state
        # u converges to 1/(1-alpha) (footnote 1 of the paper).
        assert st.sum_count == pytest.approx(1.0 / (1.0 - alpha), rel=0.01)
        # v <= u always (weights bounded by... weight can exceed 1? For
        # bisquare W(0)=3/c2 which is small; v < u in practice).
        assert st.sum_weight > 0
        assert st.sum_weighted_r2 > 0

    def test_zero_weight_skips_covariance(self, small_model, rng):
        robust = RobustIncrementalPCA(3, alpha=0.999)
        robust.partial_fit(small_model.sample(500, rng))
        lam_before = robust.state.eigenvalues.copy()
        q_before = robust.state.sum_weighted_r2
        res = robust.update(50.0 * rng.standard_normal(40))
        assert res.weight == 0.0
        assert np.allclose(robust.state.eigenvalues, lam_before)
        # q decays by alpha only (no contribution from the outlier).
        assert robust.state.sum_weighted_r2 == pytest.approx(
            0.999 * q_before
        )

    def test_scale_stays_positive_and_finite(self, small_data):
        robust = RobustIncrementalPCA(3, alpha=0.995).partial_fit(small_data)
        assert np.isfinite(robust.scale_)
        assert robust.scale_ > 0


class TestSyncSupport:
    def test_gate_requires_enough_observations(self, small_model, rng):
        alpha = 0.99  # N = 100
        robust = RobustIncrementalPCA(3, alpha=alpha, init_size=20)
        robust.partial_fit(small_model.sample(100, rng))
        assert not robust.ready_to_sync(1.5)
        robust.partial_fit(small_model.sample(100, rng))
        assert robust.ready_to_sync(1.5)  # 200 > 150

    def test_infinite_window_never_syncs(self, small_model, rng):
        robust = RobustIncrementalPCA(3, alpha=1.0, init_size=20)
        robust.partial_fit(small_model.sample(500, rng))
        assert not robust.ready_to_sync()

    def test_public_state_truncates(self, small_model, rng):
        robust = RobustIncrementalPCA(3, extra_components=2, alpha=0.999)
        robust.partial_fit(small_model.sample(500, rng))
        assert robust.state.n_components == 5
        pub = robust.public_state()
        assert pub.n_components == 3
        # Copy, not a view.
        pub.basis[0, 0] += 1
        assert robust.state.basis[0, 0] != pub.basis[0, 0]

    def test_replace_state(self, small_model, rng):
        r1 = RobustIncrementalPCA(3, alpha=0.999)
        r2 = RobustIncrementalPCA(3, alpha=0.999)
        r1.partial_fit(small_model.sample(500, rng))
        r2.partial_fit(small_model.sample(500, rng))
        r1.replace_state(r2.state)
        assert np.allclose(r1.state.basis, r2.state.basis)
        with pytest.raises(ValueError, match="dimension mismatch"):
            r1.replace_state(
                RobustIncrementalPCA(2, init_size=2)
                .partial_fit(rng.standard_normal((5, 7)))
                .state
            )


class TestGapHandling:
    def test_gappy_stream_converges(self, small_model, rng):
        robust = RobustIncrementalPCA(
            3, extra_components=2, alpha=0.999, init_size=30
        )
        mask_rng = np.random.default_rng(7)
        for x in small_model.stream(3000, rng):
            x = x.copy()
            drop = mask_rng.random(40) < 0.15
            x[drop] = np.nan
            robust.update(x)
        angle = largest_principal_angle(
            robust.state.basis[:, :3], small_model.basis
        )
        assert angle < 0.25

    def test_fully_missing_vector_skipped(self, small_model, rng):
        robust = RobustIncrementalPCA(3, alpha=0.999)
        robust.partial_fit(small_model.sample(100, rng))
        n_seen = robust.n_seen
        assert robust.update(np.full(40, np.nan)) is None
        assert robust.n_seen == n_seen
        assert robust.n_skipped == 1

    def test_gaps_rejected_when_disabled(self, small_model, rng):
        robust = RobustIncrementalPCA(3, alpha=0.999, handle_gaps=False)
        robust.partial_fit(small_model.sample(100, rng))
        x = small_model.sample(1, rng)[0]
        x[0] = np.nan
        with pytest.raises(ValueError, match="handle_gaps"):
            robust.update(x)

    def test_n_filled_reported(self, small_model, rng):
        robust = RobustIncrementalPCA(3, alpha=0.999)
        robust.partial_fit(small_model.sample(100, rng))
        x = small_model.sample(1, rng)[0]
        x[:5] = np.nan
        res = robust.update(x)
        assert res.n_filled == 5

    def test_invalid_gap_mode(self):
        with pytest.raises(ValueError, match="gap_residual_mode"):
            RobustIncrementalPCA(3, gap_residual_mode="magic")


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(n_components=0), "n_components"),
            (dict(n_components=2, alpha=0.0), "alpha"),
            (dict(n_components=2, alpha=1.01), "alpha"),
            (dict(n_components=2, delta=0.0), "delta"),
            (dict(n_components=2, delta=1.0), "delta"),
            (dict(n_components=2, extra_components=-1), "extra_components"),
            (dict(n_components=2, init_size=1), "init_size"),
            (dict(n_components=2, min_observed_fraction=1.5),
             "min_observed_fraction"),
        ],
    )
    def test_bad_params(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RobustIncrementalPCA(**kwargs)

    def test_rho_property_before_init(self):
        robust = RobustIncrementalPCA(2)
        with pytest.raises(RuntimeError, match="calibrated"):
            _ = robust.rho

    def test_explicit_rho_object(self, small_model, rng):
        from repro.core import BisquareRho

        robust = RobustIncrementalPCA(3, rho=BisquareRho(c2=100.0))
        robust.partial_fit(small_model.sample(100, rng))
        assert robust.rho.c2 == 100.0


class TestRobustEigenvalueEstimator:
    def test_estimates_variance_along_direction(self, rng):
        d = 20
        direction = np.zeros(d)
        direction[0] = 1.0
        est = RobustEigenvalueEstimator(
            direction, mean=np.zeros(d), alpha=0.999
        )
        true_var = 4.0
        for _ in range(5000):
            x = rng.standard_normal(d)
            x[0] *= np.sqrt(true_var)
            est.update(x)
        assert est.eigenvalue == pytest.approx(true_var, rel=0.2)

    def test_robust_to_outliers_along_direction(self, rng):
        d = 10
        direction = np.eye(d)[0]
        est = RobustEigenvalueEstimator(direction, np.zeros(d), alpha=0.999)
        for i in range(10000):
            x = rng.standard_normal(d)
            if i % 50 == 25:
                x[0] = 100.0  # gross outlier along the direction
            est.update(x)
        # Classical variance along e would be ~1 + 0.02·100² = 201;
        # the M-scale stays at the clean value (small calibration bias).
        assert est.eigenvalue == pytest.approx(1.0, rel=0.25)

    def test_normalizes_direction(self, rng):
        est = RobustEigenvalueEstimator(np.array([0.0, 5.0]), np.zeros(2))
        assert np.linalg.norm(est.direction) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="nonzero"):
            RobustEigenvalueEstimator(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError, match="same shape"):
            RobustEigenvalueEstimator(np.ones(3), np.zeros(4))
        with pytest.raises(ValueError, match="alpha"):
            RobustEigenvalueEstimator(np.ones(3), np.zeros(3), alpha=2.0)


class TestRobustInit:
    def test_robust_init_resists_contaminated_warmup(self, small_model):
        """An outlier inside the warm-up buffer must not become an
        eigen-direction when initializing robustly."""
        rng = np.random.default_rng(55)
        batch = small_model.sample(40, rng)
        batch[3] = 30.0 * rng.standard_normal(40)  # poison the warm-up

        plain = RobustIncrementalPCA(3, extra_components=2, init_size=40)
        strong = RobustIncrementalPCA(
            3, extra_components=2, init_size=40, robust_init=True
        )
        plain.partial_fit(batch)
        strong.partial_fit(batch)

        junk = batch[3] - strong.state.mean
        junk /= np.linalg.norm(junk)
        # The plain init includes the outlier direction prominently...
        overlap_plain = np.max(np.abs(junk @ plain.state.basis))
        # ...the robust init gives it (near-)zero eigenvalue weight.
        lam_on_junk = float(
            (junk @ strong.state.basis) ** 2 @ strong.state.eigenvalues
        )
        lam_on_junk_plain = float(
            (junk @ plain.state.basis) ** 2 @ plain.state.eigenvalues
        )
        assert overlap_plain > 0.8
        # Inlier-variance level (signal leaks a little into the junk
        # direction), nowhere near the |junk|²-driven plain value.
        assert lam_on_junk < 10.0
        assert lam_on_junk < 0.05 * lam_on_junk_plain

    def test_robust_init_matches_plain_on_clean_warmup(self, small_model, rng):
        batch = small_model.sample(60, rng)
        a = RobustIncrementalPCA(3, init_size=60).partial_fit(batch)
        b = RobustIncrementalPCA(
            3, init_size=60, robust_init=True
        ).partial_fit(batch)
        assert largest_principal_angle(
            a.state.basis[:, :3], b.state.basis[:, :3]
        ) < 0.35

    def test_robust_init_degenerate_falls_back(self, rng):
        """Tiny warm-up (k-plane interpolates half the points): the
        exact-fit degeneracy guard must fall back to the plain init."""
        est = RobustIncrementalPCA(
            5, init_size=8, robust_init=True
        )
        est.partial_fit(rng.standard_normal((8, 40)))
        assert est.is_initialized
        assert np.isfinite(est.scale_)
        assert est.scale_ > 0
        # Keep updating without explosions.
        est.partial_fit(rng.standard_normal((200, 40)))
        assert np.all(est.eigenvalues_ < 100)
