"""Shutdown/stress suite for the supervised fault-tolerant runtime.

Runs the parallel PCA application under injected operator crashes,
delays, and full-queue backpressure, asserting the merged global
eigensystem stays within tolerance of the no-fault run; plus unit
coverage of the policies, watchdog, and fault injector.
"""

import time

import numpy as np
import pytest

from repro.core import RobustIncrementalPCA, largest_principal_angle
from repro.data import PlantedSubspaceModel, VectorStream
from repro.parallel import (
    ParallelStreamingPCA,
    build_parallel_pca_graph,
    engine_restart_supervisor,
)
from repro.streams import (
    CollectingSink,
    Functor,
    Graph,
    SynchronousEngine,
    ThreadedEngine,
    Union,
    VectorSource,
)
from repro.streams.operators import Sink
from repro.streams.profiling import supervision_report
from repro.streams.supervision import (
    FailFast,
    FaultInjector,
    InjectedFault,
    OperatorFailure,
    RestartFromCheckpoint,
    Retry,
    SkipTuple,
    StallDetected,
    Supervisor,
    Watchdog,
)
from repro.streams.tuples import StreamTuple


@pytest.fixture(scope="module")
def model():
    return PlantedSubspaceModel(
        dim=40, signal_variances=(25.0, 16.0, 9.0), noise_std=0.4, seed=5
    )


@pytest.fixture(scope="module")
def data(model):
    return model.sample(4000, np.random.default_rng(7))


def _build_app(data, n_engines=4, **kwargs):
    return build_parallel_pca_graph(
        VectorStream.from_array(data),
        n_engines,
        lambda i: RobustIncrementalPCA(3, alpha=0.995),
        split_seed=1,
        collect_diagnostics=False,
        **kwargs,
    )


@pytest.fixture(scope="module")
def no_fault_state(data):
    app = _build_app(data)
    SynchronousEngine(app.graph).run()
    return app.controller.global_state(3)


# ---------------------------------------------------------------------------
# Fault injector
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def _graph(self, n=20):
        g = Graph("inj")
        src = g.add(
            VectorSource("src", VectorStream.from_array(np.zeros((n, 2))))
        )
        ident = g.add(Functor("ident", lambda t: t))
        sink = g.add(CollectingSink("sink"))
        g.connect(src, ident)
        g.connect(ident, sink)
        return g, sink

    def test_crash_fires_once_and_aborts_fail_fast(self):
        g, _ = self._graph()
        inj = FaultInjector().crash("ident", at_tuple=5)
        inj.install(g)
        with pytest.raises(InjectedFault, match="ident"):
            SynchronousEngine(g).run()
        assert inj.log == [("ident", "crash", 5)]

    def test_drop_swallows_targeted_tuples(self):
        g, sink = self._graph(n=10)
        inj = FaultInjector().drop("ident", at_tuple=3, repeat=2)
        inj.install(g)
        SynchronousEngine(g).run()
        assert len(sink.tuples) == 8
        assert [k for _, k, _ in inj.log] == ["drop", "drop"]

    def test_delay_slows_but_delivers(self):
        g, sink = self._graph(n=5)
        FaultInjector().delay("ident", at_tuple=2, seconds=0.01).install(g)
        start = time.perf_counter()
        SynchronousEngine(g).run()
        assert time.perf_counter() - start >= 0.01
        assert len(sink.tuples) == 5

    def test_unknown_operator_rejected(self):
        g, _ = self._graph()
        with pytest.raises(ValueError, match="unknown operators"):
            FaultInjector().crash("nope", at_tuple=1).install(g)

    def test_plan_validation(self):
        with pytest.raises(ValueError, match="at_tuple"):
            FaultInjector().crash("x", at_tuple=0)
        with pytest.raises(ValueError, match="repeat"):
            FaultInjector().drop("x", at_tuple=1, repeat=0)
        with pytest.raises(ValueError, match="seconds"):
            FaultInjector().delay("x", at_tuple=1, seconds=-1)


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------


class TestPolicyValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            Retry(max_attempts=0)
        with pytest.raises(ValueError):
            Retry(backoff_s=-1)
        with pytest.raises(ValueError):
            SkipTuple(max_skips=0)
        with pytest.raises(ValueError):
            RestartFromCheckpoint(checkpoint_every=0)
        with pytest.raises(ValueError):
            RestartFromCheckpoint(resume="replay")
        with pytest.raises(ValueError):
            Watchdog(0)
        with pytest.raises(TypeError, match="FailurePolicy"):
            Supervisor(policies={"x": object()})


class TestRetryAndSkip:
    def _graph(self, fn, n=20):
        g = Graph("pol")
        src = g.add(
            VectorSource(
                "src",
                VectorStream.from_array(
                    np.arange(n, dtype=float).reshape(n, 1)
                ),
            )
        )
        op = g.add(Functor("flaky", fn))
        sink = g.add(CollectingSink("sink"))
        g.connect(src, op)
        g.connect(op, sink)
        return g, sink

    def test_retry_recovers_transient_crash(self):
        g, sink = self._graph(lambda t: t)
        FaultInjector().crash("flaky", at_tuple=4).install(g)
        sup = Supervisor(policies={"flaky": Retry(max_attempts=2, backoff_s=0)})
        stats = SynchronousEngine(g, supervisor=sup).run()
        # The injector fires once; the retry redelivers the same tuple.
        assert len(sink.tuples) == 20
        assert stats.failures["flaky"] == 1
        assert stats.retries["flaky"] == 1
        assert stats.total_recoveries() == 1
        assert "flaky" in supervision_report(stats)

    def test_retry_exhaustion_escalates(self):
        g, _ = self._graph(lambda t: t)
        FaultInjector().crash("flaky", at_tuple=4, repeat=10).install(g)
        sup = Supervisor(policies={"flaky": Retry(max_attempts=2, backoff_s=0)})
        with pytest.raises(OperatorFailure, match="retries exhausted"):
            SynchronousEngine(g, supervisor=sup).run()

    def test_skip_drops_poison_tuples(self):
        def explode_on_odd(t):
            if int(t["x"][0]) % 2:
                raise ValueError("poison")
            return t

        g, sink = self._graph(explode_on_odd)
        sup = Supervisor(policies={"flaky": SkipTuple()})
        stats = SynchronousEngine(g, supervisor=sup).run()
        assert len(sink.tuples) == 10
        assert stats.skipped_tuples["flaky"] == 10
        assert stats.failures["flaky"] == 10

    def test_skip_budget_escalates(self):
        g, _ = self._graph(lambda t: (_ for _ in ()).throw(ValueError("bad")))
        sup = Supervisor(policies={"flaky": SkipTuple(max_skips=3)})
        with pytest.raises(OperatorFailure, match="skip budget"):
            SynchronousEngine(g, supervisor=sup).run()

    def test_punctuation_failure_retried_not_skipped(self):
        class FlakyClose(Functor):
            def __init__(self):
                super().__init__("flaky", lambda t: t)
                self.close_attempts = 0

            def close(self):
                self.close_attempts += 1
                if self.close_attempts == 1:
                    raise RuntimeError("transient close failure")

        g = Graph("close")
        src = g.add(
            VectorSource("src", VectorStream.from_array(np.zeros((3, 1))))
        )
        op = FlakyClose()
        g.add(op)
        sink = g.add(CollectingSink("sink"))
        g.connect(src, op)
        g.connect(op, sink)
        sup = Supervisor(policies={"flaky": Retry(max_attempts=2, backoff_s=0)})
        SynchronousEngine(g, supervisor=sup).run()
        # close retried to success; punctuation propagated; sink closed.
        assert op.close_attempts == 2
        assert op.is_closed
        assert sink.is_closed

    def test_punctuation_never_silently_skipped(self):
        class BrokenClose(Functor):
            def __init__(self):
                super().__init__("broken", lambda t: t)

            def close(self):
                raise RuntimeError("permanent close failure")

        g = Graph("close2")
        src = g.add(
            VectorSource("src", VectorStream.from_array(np.zeros((3, 1))))
        )
        op = BrokenClose()
        g.add(op)
        sink = g.add(CollectingSink("sink"))
        g.connect(src, op)
        g.connect(op, sink)
        sup = Supervisor(policies={"broken": SkipTuple()})
        with pytest.raises(OperatorFailure, match="punctuation"):
            SynchronousEngine(g, supervisor=sup).run()


# ---------------------------------------------------------------------------
# Restart-from-checkpoint (acceptance)
# ---------------------------------------------------------------------------


class TestRestartFromCheckpoint:
    def test_crash_mid_stream_recovers_within_tolerance(
        self, model, data, no_fault_state
    ):
        """A PCA engine crashing mid-stream under restart-from-checkpoint
        completes the run with the global eigensystem close to no-fault."""
        app = _build_app(data)
        sup = engine_restart_supervisor(app, checkpoint_every=100)
        FaultInjector().crash("pca-1", at_tuple=500).install(app.graph)
        stats = SynchronousEngine(app.graph, supervisor=sup).run()

        state = app.controller.global_state(3)
        assert len(app.controller.final_states) == 4
        assert stats.restarts["pca-1"] == 1
        assert stats.failures["pca-1"] == 1
        assert largest_principal_angle(state.basis, model.basis) < 0.15
        assert (
            largest_principal_angle(state.basis, no_fault_state.basis) < 0.25
        )

    def test_repeated_crashes_threaded_runtime(self, model, data):
        app = _build_app(data)
        sup = engine_restart_supervisor(app, checkpoint_every=100)
        FaultInjector().crash("pca-2", at_tuple=300, repeat=1).crash(
            "pca-0", at_tuple=600, repeat=1
        ).install(app.graph)
        ThreadedEngine(app.graph, supervisor=sup).run(timeout_s=60)
        state = app.controller.global_state(3)
        assert len(app.controller.final_states) == 4
        assert largest_principal_angle(state.basis, model.basis) < 0.2

    def test_snapshots_persisted_to_store(self, data, tmp_path):
        app = _build_app(data, n_engines=2)
        sup = engine_restart_supervisor(
            app, directory=tmp_path, checkpoint_every=100
        )
        FaultInjector().crash("pca-0", at_tuple=800).install(app.graph)
        SynchronousEngine(app.graph, supervisor=sup).run()
        snapshots = list(tmp_path.rglob("*.npz"))
        assert snapshots, "expected on-disk eigensystem snapshots"
        assert (tmp_path / "pca-0").is_dir()

    def test_restart_without_hooks_escalates(self):
        g = Graph("nohooks")
        src = g.add(
            VectorSource("src", VectorStream.from_array(np.zeros((5, 1))))
        )
        op = g.add(
            Functor("f", lambda t: (_ for _ in ()).throw(ValueError("x")))
        )
        sink = g.add(CollectingSink("sink"))
        g.connect(src, op)
        g.connect(op, sink)
        sup = Supervisor(policies={"f": RestartFromCheckpoint()})
        with pytest.raises(OperatorFailure, match="snapshot_state"):
            SynchronousEngine(g, supervisor=sup).run()


# ---------------------------------------------------------------------------
# Watchdog / stall detection
# ---------------------------------------------------------------------------


class TestWatchdog:
    def test_backpressure_cycle_detected_quickly(self):
        """An amplifying cycle with tiny queues deadlocks on backpressure;
        the watchdog must report it long before the run timeout."""

        class Amplifier(Functor):
            def __init__(self):
                super().__init__("amp", None)

            def process(self, tup, port):
                self.submit(tup)
                self.submit(tup)

        g = Graph("cycle")
        src = g.add(
            VectorSource("src", VectorStream.from_array(np.zeros((10, 1))))
        )
        uni = g.add(Union("uni", 2))
        amp = Amplifier()
        g.add(amp)
        sink = g.add(CollectingSink("sink"))
        g.connect(src, uni, in_port=0)
        g.connect(uni, amp)
        g.connect(amp, uni, in_port=1)
        g.connect(amp, sink)

        start = time.perf_counter()
        with pytest.raises(StallDetected, match="backpressure"):
            ThreadedEngine(g, queue_size=4, stall_timeout_s=0.3).run(
                timeout_s=60
            )
        assert time.perf_counter() - start < 30

    def test_slow_but_healthy_run_not_flagged(self):
        class SlowSink(Sink):
            def __init__(self):
                super().__init__("slow")
                self.n = 0

            def consume(self, tup, port):
                time.sleep(0.005)
                self.n += 1

        g = Graph("slow")
        src = g.add(
            VectorSource("src", VectorStream.from_array(np.zeros((20, 1))))
        )
        sink = SlowSink()
        g.add(sink)
        g.connect(src, sink)
        ThreadedEngine(g, stall_timeout_s=1.0).run(timeout_s=30)
        assert sink.n == 20

    def test_watchdog_api(self):
        wd = Watchdog(0.05)
        assert wd.stalled_for() is None
        time.sleep(0.08)
        assert wd.stalled_for() is not None
        wd.poke()
        assert wd.stalled_for() is None


# ---------------------------------------------------------------------------
# Stress: parallel PCA under delays, backpressure, repeated shutdowns
# ---------------------------------------------------------------------------


class TestParallelStress:
    def test_delays_and_tiny_queues_lose_nothing(self, model, data):
        """Injected delays + queue_size=8 exercise backpressure end to
        end; the merged eigensystem must stay accurate and every engine's
        final state must arrive."""
        app = _build_app(data[:2500], n_engines=3)
        inj = (
            FaultInjector()
            .delay("pca-0", at_tuple=50, seconds=0.02, repeat=3)
            .delay("pca-2", at_tuple=200, seconds=0.02, repeat=2)
        )
        inj.install(app.graph)
        stats = ThreadedEngine(app.graph, queue_size=8).run(timeout_s=120)
        assert len(app.controller.final_states) == 3
        assert stats.tuples_in["split"] == 2500
        state = app.controller.global_state(3)
        assert largest_principal_angle(state.basis, model.basis) < 0.2

    def test_repeated_threaded_shutdown_collects_all_finals(self, model):
        """Shutdown-race stress at the application level: every engine's
        final state survives every iteration."""
        rng = np.random.default_rng(13)
        block = model.sample(800, rng)
        for _ in range(8):
            app = _build_app(block, n_engines=3)
            ThreadedEngine(app.graph).run(timeout_s=60)
            assert sorted(app.controller.final_states) == [0, 1, 2]

    def test_runner_facade_supervised_run(self, model, data):
        """ParallelStreamingPCA carries supervisor + stall watchdog."""
        runner = ParallelStreamingPCA(
            3,
            n_engines=2,
            alpha=0.995,
            runtime="threaded",
            split_seed=1,
            collect_diagnostics=False,
            supervisor=Supervisor(default=FailFast()),
            stall_timeout_s=30.0,
        )
        result = runner.run(VectorStream.from_array(data[:2000]))
        assert largest_principal_angle(
            result.global_state.basis, model.basis
        ) < 0.25
        assert result.run_stats.total_recoveries() == 0

    def test_supervision_report_fault_free(self, data):
        app = _build_app(data[:500], n_engines=2)
        stats = SynchronousEngine(
            app.graph, supervisor=Supervisor()
        ).run()
        assert "no failures" in supervision_report(stats)
