"""Edge cases and cross-family coverage that don't fit elsewhere."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Simulator
from repro.core import (
    Eigensystem,
    RobustIncrementalPCA,
    largest_principal_angle,
)
from repro.data import GrossOutlierInjector, PlantedSubspaceModel, VectorStream
from repro.streams import (
    CollectingSink,
    Graph,
    Split,
    SynchronousEngine,
    VectorSource,
)


class TestRhoFamiliesEndToEnd:
    @pytest.mark.parametrize("family", ["bisquare", "cauchy", "skipped"])
    def test_every_family_survives_contamination(self, family, small_model):
        rng = np.random.default_rng(123)
        inj = GrossOutlierInjector(0.04, 25.0, np.random.default_rng(7))
        est = RobustIncrementalPCA(3, alpha=0.998, rho=family)
        for x in inj.wrap(small_model.stream(4000, rng)):
            est.update(x)
        angle = largest_principal_angle(
            est.state.basis[:, :3], small_model.basis
        )
        assert angle < 0.25, f"{family} failed: {angle}"


class TestDegenerateShapes:
    def test_single_component_everything(self, rng):
        x = rng.standard_normal((500, 3)) * np.array([5.0, 0.5, 0.5])
        est = RobustIncrementalPCA(1, alpha=0.99, init_size=10)
        est.partial_fit(x)
        assert est.components_.shape == (1, 3)
        assert abs(est.components_[0, 0]) > 0.95

    def test_from_batch_more_components_than_rank(self, rng):
        x = rng.standard_normal((4, 10))
        st = Eigensystem.from_batch(x, 8)
        assert st.n_components <= 4
        st.validate()

    def test_dim_two_stream(self, rng):
        est = RobustIncrementalPCA(1, alpha=0.99, init_size=5)
        est.partial_fit(rng.standard_normal((200, 2)))
        assert est.state.dim == 2

    def test_split_single_target_is_passthrough(self, rng):
        x = rng.standard_normal((20, 2))
        g = Graph("one")
        src = g.add(VectorSource("src", VectorStream.from_array(x)))
        split = g.add(Split("split", 1))
        sink = g.add(CollectingSink("sink"))
        g.connect(src, split)
        g.connect(split, sink, out_port=0)
        SynchronousEngine(g).run()
        assert len(sink.tuples) == 20

    def test_unconnected_output_port_drops_tuples(self, rng):
        """Tuples emitted on a port nobody listens to simply vanish
        (legal: result ports are optional)."""
        x = rng.standard_normal((10, 2))
        g = Graph("drop")
        src = g.add(VectorSource("src", VectorStream.from_array(x)))
        split = g.add(Split("split", 2, strategy="round_robin"))
        sink = g.add(CollectingSink("sink"))
        g.connect(src, split)
        g.connect(split, sink, out_port=0)  # port 1 unconnected
        SynchronousEngine(g).run()
        assert len(sink.tuples) == 5


class TestKernelProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        delays=st.lists(
            st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=20
        )
    )
    def test_events_fire_in_time_order(self, delays):
        sim = Simulator()
        fired: list[float] = []

        def proc(d):
            yield sim.timeout(d)
            fired.append(sim.now)

        for d in delays:
            sim.process(proc(d))
        sim.run()
        assert fired == sorted(fired)
        assert fired == sorted(delays)

    @settings(max_examples=20, deadline=None)
    @given(
        n_workers=st.integers(1, 8),
        capacity=st.integers(1, 4),
        service=st.floats(0.1, 2.0),
    )
    def test_resource_conservation(self, n_workers, capacity, service):
        """Total busy time equals n_workers × service regardless of
        contention; completion time matches the FIFO schedule."""
        from repro.cluster import Resource

        sim = Simulator()
        res = Resource(sim, capacity)
        done: list[float] = []

        def worker():
            yield res.request()
            yield sim.timeout(service)
            res.release()
            done.append(sim.now)

        for _ in range(n_workers):
            sim.process(worker())
        sim.run()
        assert len(done) == n_workers
        waves = -(-n_workers // capacity)  # ceil division
        assert max(done) == pytest.approx(waves * service)


class TestEstimatorMisuse:
    def test_transform_before_init_raises(self, rng):
        est = RobustIncrementalPCA(2, init_size=10)
        est.update(rng.standard_normal(5))
        with pytest.raises(RuntimeError, match="not initialized"):
            est.transform(rng.standard_normal((3, 5)))

    def test_weight_of_matches_update_decision(self, small_model, rng):
        est = RobustIncrementalPCA(3, alpha=0.999)
        est.partial_fit(small_model.sample(1000, rng))
        clean = small_model.sample(1, rng)[0]
        junk = 40.0 * rng.standard_normal(40)
        assert est.weight_of(clean) > 0
        assert est.weight_of(junk) == 0.0
