"""End-to-end tests of the parallel streaming-PCA application."""

import numpy as np
import pytest

from repro.core import largest_principal_angle
from repro.data import (
    GrossOutlierInjector,
    PlantedSubspaceModel,
    VectorStream,
)
from repro.parallel import (
    ParallelStreamingPCA,
    build_parallel_pca_graph,
    partition_contiguous,
    partition_random,
    partition_round_robin,
)


@pytest.fixture(scope="module")
def model():
    return PlantedSubspaceModel(
        dim=50, signal_variances=(25.0, 16.0, 9.0), noise_std=0.4, seed=8
    )


@pytest.fixture(scope="module")
def data(model):
    return model.sample(6000, np.random.default_rng(3))


class TestParallelRunner:
    @pytest.mark.parametrize("runtime", ["synchronous", "threaded"])
    def test_global_solution_accurate(self, model, data, runtime):
        runner = ParallelStreamingPCA(
            3, n_engines=4, alpha=0.995, runtime=runtime, split_seed=1
        )
        result = runner.run(VectorStream.from_array(data))
        angle = largest_principal_angle(result.global_state.basis, model.basis)
        assert angle < 0.15
        assert result.eigenvalues.shape == (3,)
        assert result.components.shape == (3, 50)
        assert result.mean.shape == (50,)

    def test_engines_synchronized(self, model, data):
        runner = ParallelStreamingPCA(
            3, n_engines=4, alpha=0.995, strategy="ring", split_seed=1
        )
        result = runner.run(VectorStream.from_array(data))
        assert result.sync_stats.n_merge_commands > 0
        # Every engine individually close to the truth ("the resulting
        # eigensystem can be obtained from any node").
        for state in result.engine_states.values():
            assert largest_principal_angle(state.basis, model.basis) < 0.3

    @pytest.mark.parametrize("strategy", ["ring", "broadcast", "group", "p2p"])
    def test_all_strategies_work(self, model, data, strategy):
        runner = ParallelStreamingPCA(
            3, n_engines=4, alpha=0.995, strategy=strategy, split_seed=1,
            collect_diagnostics=False,
        )
        result = runner.run(VectorStream.from_array(data))
        assert largest_principal_angle(
            result.global_state.basis, model.basis
        ) < 0.2

    def test_single_engine_needs_no_sync(self, model, data):
        runner = ParallelStreamingPCA(3, n_engines=1, alpha=0.995)
        result = runner.run(VectorStream.from_array(data))
        assert result.sync_stats.n_merge_commands == 0
        assert largest_principal_angle(
            result.global_state.basis, model.basis
        ) < 0.15

    def test_alpha_one_never_syncs(self, model, data):
        runner = ParallelStreamingPCA(3, n_engines=3, alpha=1.0, split_seed=1)
        result = runner.run(VectorStream.from_array(data))
        assert result.sync_stats.n_ready == 0
        assert result.sync_stats.n_merge_commands == 0

    def test_outlier_seqs_reported(self, model):
        rng = np.random.default_rng(11)
        clean = model.sample(4000, rng)
        inj = GrossOutlierInjector(0.05, 30.0, np.random.default_rng(12))
        stream = np.vstack([inj(x)[0] for x in clean])
        runner = ParallelStreamingPCA(3, n_engines=4, alpha=0.995,
                                      split_seed=2)
        result = runner.run(VectorStream.from_array(stream))
        flagged = set(result.outlier_seqs().tolist())
        truth = set((inj.steps - 1).tolist())  # seq is 0-based
        assert truth and flagged
        tp = len(truth & flagged)
        assert tp / len(truth) > 0.85

    def test_engine_reports(self, model, data):
        runner = ParallelStreamingPCA(3, n_engines=3, alpha=0.995)
        result = runner.run(VectorStream.from_array(data))
        assert len(result.engine_reports) == 3
        total = sum(r["n_local"] for r in result.engine_reports)
        assert total == 6000

    def test_run_stats_counters(self, model, data):
        runner = ParallelStreamingPCA(3, n_engines=3, alpha=0.995)
        result = runner.run(VectorStream.from_array(data))
        assert result.run_stats.source_tuples["source"] == 6000
        assert result.run_stats.tuples_in["split"] == 6000

    def test_threaded_fusion_modes(self, model, data):
        for fusion in ("per-operator", "fused", "chains"):
            runner = ParallelStreamingPCA(
                3, n_engines=2, alpha=0.995, runtime="threaded",
                fusion=fusion, collect_diagnostics=False,
            )
            result = runner.run(VectorStream.from_array(data[:2000]))
            assert largest_principal_angle(
                result.global_state.basis, model.basis
            ) < 0.35

    def test_validation(self):
        with pytest.raises(ValueError, match="runtime"):
            ParallelStreamingPCA(3, runtime="mpi")
        with pytest.raises(ValueError, match="fusion"):
            ParallelStreamingPCA(3, fusion="magic")
        with pytest.raises(ValueError, match="n_engines"):
            build_parallel_pca_graph(
                VectorStream.from_array(np.zeros((5, 2))), 0, lambda i: None
            )

    def test_estimator_factory_api_check(self):
        class NotAnEstimator:
            pass

        with pytest.raises(TypeError, match="estimator API"):
            build_parallel_pca_graph(
                VectorStream.from_array(np.zeros((5, 2))),
                1,
                lambda i: NotAnEstimator(),
            )


class TestPartitionHelpers:
    def test_partition_random(self, rng):
        x = np.arange(100, dtype=float).reshape(50, 2)
        parts = partition_random(x, 3, rng)
        assert sum(p.shape[0] for p in parts) == 50
        merged = np.vstack([p for p in parts if p.size])
        assert np.array_equal(
            np.sort(merged[:, 0]), np.arange(0, 100, 2, dtype=float)
        )

    def test_partition_round_robin(self):
        x = np.arange(20, dtype=float).reshape(10, 2)
        parts = partition_round_robin(x, 3)
        assert [p.shape[0] for p in parts] == [4, 3, 3]
        assert np.array_equal(parts[0][:, 0], [0, 6, 12, 18])

    def test_partition_contiguous(self):
        x = np.arange(20, dtype=float).reshape(10, 2)
        parts = partition_contiguous(x, 3)
        assert sorted(p.shape[0] for p in parts) == [3, 3, 4]
        assert np.array_equal(np.vstack(parts), x)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            partition_random(np.zeros(5), 2, rng)
        with pytest.raises(ValueError):
            partition_round_robin(np.zeros((5, 2)), 0)
