"""Tests for the cluster-health telemetry generator."""

import numpy as np
import pytest

from repro.core import BatchPCA
from repro.data.sensors import SENSORS_PER_SERVER, ClusterTelemetryModel


class TestClusterTelemetryModel:
    def test_dimensions_and_names(self):
        model = ClusterTelemetryModel(n_servers=5)
        assert model.dim == 5 * len(SENSORS_PER_SERVER)
        names = model.sensor_names
        assert len(names) == model.dim
        assert names[0] == "server0.cpu_temp_C"
        assert names[-1] == f"server4.{SENSORS_PER_SERVER[-1][0]}"

    def test_stream_shapes(self, rng):
        model = ClusterTelemetryModel(n_servers=3)
        out = list(model.stream(20, rng))
        assert len(out) == 20
        assert all(v.shape == (model.dim,) for v in out)

    def test_healthy_stream_is_low_rank(self, rng):
        """A handful of latent factors explain most of the variance."""
        model = ClusterTelemetryModel(n_servers=10, fault_rate=0.0, seed=2)
        x = np.vstack(list(model.stream(3000, rng)))
        pca = BatchPCA(3).fit(x)
        y = x - pca.mean_
        total = float(np.mean(np.sum(y * y, axis=1)))
        explained = float(pca.eigenvalues_.sum())
        assert explained / total > 0.8

    def test_fault_injection_logged_and_visible(self, rng):
        model = ClusterTelemetryModel(n_servers=4, fault_rate=0.01, seed=3)
        x = np.vstack(list(model.stream(2000, rng)))
        assert len(model.faults) > 0
        steps = model.fault_steps()
        assert steps.size > 0
        ev = model.faults[0]
        # During a fan failure, the affected server's fan rpm collapses
        # relative to the healthy baseline.
        if ev.kind == "fan_failure":
            fan_idx = ev.server * len(SENSORS_PER_SERVER) + 1
            during = x[ev.step + 10 : ev.step + ev.duration - 1, fan_idx]
            healthy = np.delete(x[:, fan_idx], np.arange(
                ev.step - 1, min(ev.step + ev.duration, 2000)))
            if during.size:
                assert during.mean() < 0.6 * healthy.mean()

    def test_fault_free_when_rate_zero(self, rng):
        model = ClusterTelemetryModel(n_servers=3, fault_rate=0.0)
        list(model.stream(500, rng))
        assert model.faults == []
        assert model.fault_steps().size == 0

    def test_diurnal_cycle_present(self, rng):
        model = ClusterTelemetryModel(
            n_servers=2, diurnal_period=100, load_volatility=0.0,
            ambient_volatility=0.0, seed=4,
        )
        x = np.vstack(list(model.stream(400, rng)))
        cpu_temp = x[:, 0]
        # Correlate with the known sinusoid.
        t = np.arange(1, 401)
        ref = np.sin(2 * np.pi * t / 100)
        corr = np.corrcoef(cpu_temp, ref)[0, 1]
        assert corr > 0.5

    def test_validation(self):
        with pytest.raises(ValueError, match="n_servers"):
            ClusterTelemetryModel(n_servers=0)
