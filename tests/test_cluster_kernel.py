"""Tests for the discrete-event kernel (events, resources, stores)."""

import pytest

from repro.cluster.events import Simulator
from repro.cluster.resources import Resource, Store


class TestSimulatorKernel:
    def test_timeout_ordering(self):
        sim = Simulator()
        log = []

        def proc(delay, tag):
            yield sim.timeout(delay)
            log.append((sim.now, tag))

        sim.process(proc(2.0, "b"))
        sim.process(proc(1.0, "a"))
        sim.process(proc(3.0, "c"))
        sim.run()
        assert log == [(1.0, "a"), (2.0, "b"), (3.0, "c")]

    def test_fifo_tie_break(self):
        sim = Simulator()
        log = []

        def proc(tag):
            yield sim.timeout(1.0)
            log.append(tag)

        for tag in "abc":
            sim.process(proc(tag))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_run_until_stops_clock(self):
        sim = Simulator()
        log = []

        def proc():
            yield sim.timeout(10.0)
            log.append("late")

        sim.process(proc())
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert log == []
        sim.run(until=11.0)
        assert log == ["late"]

    def test_process_return_value(self):
        sim = Simulator()
        results = []

        def child():
            yield sim.timeout(1.0)
            return 42

        def parent():
            value = yield sim.process(child())
            results.append(value)

        sim.process(parent())
        sim.run()
        assert results == [42]

    def test_all_of(self):
        sim = Simulator()
        done = []

        def waiter():
            yield sim.all_of([sim.timeout(1.0), sim.timeout(3.0)])
            done.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert done == [3.0]

    def test_all_of_empty(self):
        sim = Simulator()
        done = []

        def waiter():
            yield sim.all_of([])
            done.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert done == [0.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.trigger()
        with pytest.raises(RuntimeError):
            ev.trigger()

    def test_yielding_non_event_is_error(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(TypeError, match="expected SimEvent"):
            sim.run()

    def test_event_counter(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()
        assert sim.n_events_processed > 0


class TestResource:
    def test_serializes_beyond_capacity(self):
        sim = Simulator()
        log = []

        def worker(res, tag):
            yield res.request()
            yield sim.timeout(1.0)
            res.release()
            log.append((sim.now, tag))

        res = Resource(sim, 2)
        for tag in "abcd":
            sim.process(worker(res, tag))
        sim.run()
        # 2 servers: a,b finish at t=1; c,d at t=2 (FIFO).
        assert log == [(1.0, "a"), (1.0, "b"), (2.0, "c"), (2.0, "d")]

    def test_queue_length(self):
        sim = Simulator()
        res = Resource(sim, 1)

        def holder():
            yield res.request()
            yield sim.timeout(5.0)
            res.release()

        def waiter():
            yield sim.timeout(0.1)
            yield res.request()
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=1.0)
        assert res.queue_length == 1
        sim.run()
        assert res.queue_length == 0

    def test_utilization(self):
        sim = Simulator()
        res = Resource(sim, 1)

        def worker():
            yield res.request()
            yield sim.timeout(4.0)
            res.release()

        sim.process(worker())
        sim.run(until=10.0)
        assert res.utilization(10.0) == pytest.approx(0.4)

    def test_release_without_acquire(self):
        sim = Simulator()
        res = Resource(sim, 1)
        with pytest.raises(RuntimeError, match="release without"):
            res.release()

    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, 0)


class TestStore:
    def test_put_get_fifo(self):
        sim = Simulator()
        store = Store(sim, capacity=10)
        got = []

        def producer():
            for i in range(3):
                yield store.put(i)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2]

    def test_bounded_put_blocks(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        times = []

        def producer():
            for i in range(3):
                yield store.put(i)
                times.append(sim.now)

        def slow_consumer():
            for _ in range(3):
                yield sim.timeout(1.0)
                yield store.get()

        sim.process(producer())
        sim.process(slow_consumer())
        sim.run()
        # First put immediate; subsequent puts wait for consumption.
        assert times[0] == 0.0
        assert times[1] >= 1.0
        assert times[2] >= 2.0

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        def producer():
            yield sim.timeout(2.0)
            yield store.put("x")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(2.0, "x")]

    def test_len(self):
        sim = Simulator()
        store = Store(sim)

        def producer():
            yield store.put(1)
            yield store.put(2)

        sim.process(producer())
        sim.run()
        assert len(store) == 2

    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Store(sim, capacity=0)
