"""Tests for the offline partition-and-merge (MapReduce-style) baseline."""

import numpy as np
import pytest

from repro.core import BatchPCA, largest_principal_angle
from repro.data import contaminate_block
from repro.parallel import mapreduce_pca


class TestMapReducePCA:
    def test_matches_single_batch_on_clean_data(self, small_data):
        mr = mapreduce_pca(small_data, 3, n_partitions=4, robust=False)
        full = BatchPCA(3).fit(small_data)
        assert largest_principal_angle(
            mr.state.basis, full.components_.T
        ) < 0.02
        assert np.allclose(mr.eigenvalues, full.eigenvalues_, rtol=0.02)
        assert len(mr.partition_states) == 4

    def test_robust_variant_survives_contamination(
        self, small_model, small_data, rng
    ):
        x, _ = contaminate_block(small_data, 0.08, 25.0, rng)
        mr = mapreduce_pca(x, 3, n_partitions=4, robust=True)
        assert largest_principal_angle(mr.state.basis, small_model.basis) < 0.1
        # Non-robust map phase breaks on the same data.
        mr_plain = mapreduce_pca(x, 3, n_partitions=4, robust=False)
        assert largest_principal_angle(
            mr_plain.state.basis, small_model.basis
        ) > 0.5

    def test_multiprocess_workers_agree_with_inline(self, small_data):
        inline = mapreduce_pca(
            small_data, 3, n_partitions=4, n_workers=1, robust=False
        )
        pooled = mapreduce_pca(
            small_data, 3, n_partitions=4, n_workers=2, robust=False
        )
        assert np.allclose(inline.eigenvalues, pooled.eigenvalues)
        assert largest_principal_angle(
            inline.state.basis, pooled.state.basis
        ) < 1e-8

    def test_extra_components_reduce_truncation_error(self, small_data):
        full = BatchPCA(3).fit(small_data)
        errs = []
        for extra in (0, 4):
            mr = mapreduce_pca(
                small_data, 3, n_partitions=8, robust=False,
                extra_components=extra,
            )
            errs.append(
                float(np.abs(mr.eigenvalues - full.eigenvalues_).sum())
            )
        assert errs[1] <= errs[0] + 1e-9

    def test_components_shape(self, small_data):
        mr = mapreduce_pca(small_data, 2, n_partitions=3, robust=False)
        assert mr.components.shape == (2, 40)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="\\(n, d\\)"):
            mapreduce_pca(np.zeros(5), 2)
        with pytest.raises(ValueError, match="n_partitions"):
            mapreduce_pca(np.zeros((10, 3)), 2, n_partitions=0)
        with pytest.raises(ValueError, match="n_workers"):
            mapreduce_pca(np.zeros((10, 3)), 2, n_workers=0)
        with pytest.raises(ValueError, match="not enough rows"):
            mapreduce_pca(np.zeros((1, 3)), 2, n_partitions=2)
