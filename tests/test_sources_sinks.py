"""Tests for stream sources, sinks, and the CSV/checkpoint IO they use."""

import numpy as np
import pytest

from repro.core import Eigensystem
from repro.data.streams import VectorStream
from repro.io.checkpoint import CheckpointStore
from repro.streams import (
    CallbackSink,
    CallbackSource,
    CheckpointSink,
    CollectingSink,
    CSVFileSource,
    CSVSink,
    DirectorySource,
    Graph,
    RateProbe,
    SynchronousEngine,
    VectorSource,
)
from repro.streams.tuples import StreamTuple


class TestVectorSource:
    def test_emits_observation_tuples(self):
        x = np.arange(6, dtype=float).reshape(3, 2)
        src = VectorSource("s", VectorStream.from_array(x))
        tuples = list(src.generate())
        assert len(tuples) == 3
        assert tuples[0]["seq"] == 0
        assert np.array_equal(tuples[2]["x"], x[2])
        assert src.dim == 2


class TestCSVSources:
    def test_file_roundtrip(self, tmp_path, rng):
        from repro.io.csvio import write_vectors_csv

        x = rng.standard_normal((5, 4))
        x[2, 1] = np.nan
        path = tmp_path / "data.csv"
        write_vectors_csv(path, x)
        src = CSVFileSource("csv", path)
        got = np.vstack([t["x"] for t in src.generate()])
        assert np.allclose(got, x, equal_nan=True)

    def test_multiple_files_sequential_seq(self, tmp_path, rng):
        from repro.io.csvio import write_vectors_csv

        a, b = rng.standard_normal((2, 3)), rng.standard_normal((3, 3))
        write_vectors_csv(tmp_path / "a.csv", a)
        write_vectors_csv(tmp_path / "b.csv", b)
        src = CSVFileSource("csv", [tmp_path / "a.csv", tmp_path / "b.csv"])
        tuples = list(src.generate())
        assert [t["seq"] for t in tuples] == [0, 1, 2, 3, 4]

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CSVFileSource("csv", tmp_path / "nope.csv")

    def test_directory_source(self, tmp_path, rng):
        from repro.io.csvio import write_vectors_csv

        write_vectors_csv(tmp_path / "b.csv", rng.standard_normal((2, 3)))
        write_vectors_csv(tmp_path / "a.csv", rng.standard_normal((2, 3)))
        src = DirectorySource("dir", tmp_path)
        assert [p.name for p in src.paths] == ["a.csv", "b.csv"]

    def test_directory_source_empty(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no \\*.csv"):
            DirectorySource("dir", tmp_path)

    def test_directory_source_not_a_dir(self, tmp_path):
        with pytest.raises(NotADirectoryError):
            DirectorySource("dir", tmp_path / "missing")


class TestCallbackSource:
    def test_stops_on_none(self):
        items = [np.zeros(2), np.ones(2), None, np.zeros(2)]
        it = iter(items)
        src = CallbackSource("cb", lambda: next(it))
        got = list(src.generate())
        assert len(got) == 2

    def test_max_tuples(self):
        src = CallbackSource("cb", lambda: np.zeros(2), max_tuples=4)
        assert len(list(src.generate())) == 4


class TestSinks:
    def test_collecting_sink_payloads(self):
        sink = CollectingSink("c")
        sink.bind(lambda t, p: None)
        sink._dispatch(StreamTuple.data(x=1, y="a"), 0)
        sink._dispatch(StreamTuple.data(x=2, y="b"), 0)
        assert sink.payloads("x") == [1, 2]

    def test_callback_sink(self):
        got = []
        sink = CallbackSink("cb", lambda t, p: got.append((t["x"], p)))
        sink.bind(lambda t, p: None)
        sink._dispatch(StreamTuple.data(x=7), 0)
        assert got == [(7, 0)]

    def test_csv_sink_writes_on_close(self, tmp_path, rng):
        from repro.io.csvio import read_vectors_csv

        x = rng.standard_normal((4, 3))
        g = Graph("csv")
        src = g.add(VectorSource("src", VectorStream.from_array(x)))
        path = tmp_path / "out.csv"
        sink = g.add(CSVSink("sink", str(path)))
        g.connect(src, sink)
        SynchronousEngine(g).run()
        got = np.vstack(list(read_vectors_csv(path)))
        assert np.allclose(got, x)

    def test_checkpoint_sink(self, tmp_path, rng):
        store = CheckpointStore(tmp_path, every=1)
        sink = CheckpointSink("ck", store)
        sink.bind(lambda t, p: None)
        basis, _ = np.linalg.qr(rng.standard_normal((6, 2)))
        state = Eigensystem(
            mean=np.zeros(6), basis=basis,
            eigenvalues=np.array([2.0, 1.0]), n_seen=100,
        )
        sink._dispatch(StreamTuple.data(state=state, engine=0, kind="snapshot"), 0)
        assert len(store.list()) == 1
        # Tuples without a state field are ignored.
        sink._dispatch(StreamTuple.data(other=1), 0)
        assert len(store.list()) == 1


class TestRateProbe:
    def test_rate_with_fake_clock(self):
        now = [0.0]
        probe = RateProbe("r", window_s=10.0, clock=lambda: now[0])
        probe.bind(lambda t, p: None)
        for i in range(11):
            probe._dispatch(StreamTuple.data(x=i), 0)
            now[0] += 0.1
        # 11 arrivals over 1.0s span => 10/s.
        assert probe.rate() == pytest.approx(10.0, rel=0.01)
        assert probe.overall_rate() == pytest.approx(10.0, rel=0.01)
        assert probe.n_arrivals == 11

    def test_window_trimming(self):
        now = [0.0]
        probe = RateProbe("r", window_s=1.0, clock=lambda: now[0])
        probe.bind(lambda t, p: None)
        # Slow arrivals, then fast burst: rate reflects the window only.
        for _ in range(3):
            probe._dispatch(StreamTuple.data(x=0), 0)
            now[0] += 5.0
        for _ in range(20):
            probe._dispatch(StreamTuple.data(x=0), 0)
            now[0] += 0.01
        assert probe.rate() == pytest.approx(100.0, rel=0.1)

    def test_empty_probe(self):
        probe = RateProbe("r")
        assert probe.rate() == 0.0
        assert probe.overall_rate() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="window_s"):
            RateProbe("r", window_s=0.0)
